//! `RemoteStore`: the [`ObjectStore`] client for a `qckptd` daemon.
//!
//! One handle owns one (lazily established, reused) TCP connection to
//! one of a **list** of daemon addresses (`QCHECK_REMOTE_ADDR=a,b`).
//! Transport failures — a dropped daemon connection, a mid-request
//! reset, a dead primary — are retried with **jittered exponential
//! backoff** over the address list: the client re-HELLOs the next
//! address and replays the in-flight request, which is safe because
//! every protocol operation is idempotent (content-addressed puts,
//! atomic metadata overwrites, convergent sweeps; see [`super::proto`]).
//! Server-reported errors are **never** retried: they mean the request
//! was received and judged, not lost.
//!
//! ## Fencing and leases (protocol v2)
//!
//! The handle remembers the highest primary **generation** it has seen
//! and carries it in every handshake. An address that refuses with a
//! stale-generation error has proven itself a demoted primary; it is
//! fenced out of the rotation for the life of the handle. A repository
//! writer additionally holds the namespace's server-side **writer
//! lease** ([`RemoteStore::acquire_writer_lease`]): granted in the
//! handshake, renewed by traffic, re-presented by token after a
//! reconnect, and released on drop — a second concurrent writer is
//! refused with a typed lease-held error instead of silently
//! interleaving saves.
//!
//! Large `put_batch` calls are split into sub-frames and **pipelined**:
//! all request frames are written back-to-back before the first response
//! is read, so a save's chunk upload costs one effective round trip of
//! latency instead of one per sub-batch.

use std::collections::BTreeSet;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::chunk::ChunkRef;
use crate::error::{Error, Result};
use crate::hash::{ContentHash, Sha256};
use crate::store::{BatchPutReport, GcReport, ObjectStore, StagedChunk, StoreStats};

use super::proto::{
    read_frame, valid_namespace, write_frame, Request, Response, HELLO_FLAG_WANT_LEASE,
    MAX_FRAME_LEN, PROTO_VERSION, PROTO_VERSION_MIN, STREAM_SEGMENT_BYTES,
};

/// Environment variable tuning the transport retry budget: the number of
/// *re*-attempts after the first failure (attempts = retries + 1).
pub const RETRIES_ENV: &str = "QCHECK_REMOTE_RETRIES";

/// Environment variable carrying the daemon auth token presented in the
/// handshake (required for privileged operations when the daemon is
/// configured with one).
pub const TOKEN_ENV: &str = "QCHECK_REMOTE_TOKEN";

/// Default transport retries after the first failure. Two retries give a
/// failover client one shot at the dead primary, one at the next address
/// and one spare — a deployment that fails three times in a row is down,
/// and the caller should see that, not a hang.
const DEFAULT_RETRIES: usize = 2;

/// Backoff base delay; attempt `n` waits roughly `base << (n-1)`.
const BACKOFF_BASE_MS: u64 = 25;

/// Backoff ceiling per attempt.
const BACKOFF_CAP_MS: u64 = 1000;

/// A `put_batch` is split into pipelined sub-frames of at most this many
/// payload bytes (well under [`super::proto::MAX_FRAME_LEN`]).
const PUT_BATCH_FRAME_BYTES: usize = 4 << 20;

/// Environment variable overriding the per-operation socket timeout
/// (seconds). The default balances "a wedged daemon must surface as an
/// error, not a silent training stall" against server-side operations
/// that legitimately take a while (a sweep rewriting large packs).
pub const TIMEOUT_ENV: &str = "QCHECK_REMOTE_TIMEOUT_SECS";

/// Default connect timeout.
const CONNECT_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

/// Default read/write timeout per socket operation.
const DEFAULT_IO_TIMEOUT_SECS: u64 = 60;

fn io_timeout() -> std::time::Duration {
    let secs = std::env::var(TIMEOUT_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&s| s > 0)
        .unwrap_or(DEFAULT_IO_TIMEOUT_SECS);
    std::time::Duration::from_secs(secs)
}

fn retry_budget() -> usize {
    std::env::var(RETRIES_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_RETRIES)
        .min(16)
}

/// Splits a `host:port[,host:port…]` list into its addresses.
fn parse_addr_list(spec: &str) -> Vec<String> {
    spec.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Jittered exponential backoff for transport retry `attempt` (1-based):
/// `base << (attempt-1)`, capped, scaled by a uniform factor in
/// [0.5, 1.5) so a fleet of clients whose primary just died does not
/// reconnect in lockstep.
fn backoff_delay(attempt: usize) -> Duration {
    let shift = (attempt.saturating_sub(1)).min(6) as u32;
    let base = BACKOFF_BASE_MS
        .saturating_mul(1 << shift)
        .min(BACKOFF_CAP_MS);
    // Cheap xorshift over wall-clock nanos + pid: not cryptographic,
    // just decorrelated between processes and attempts.
    let mut x = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()) | (d.as_secs() << 32))
        .unwrap_or(0x9E37_79B9)
        ^ u64::from(std::process::id())
        ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let factor = 0.5 + (x % 1024) as f64 / 1024.0;
    Duration::from_micros((base as f64 * 1000.0 * factor) as u64)
}

/// True for handshake refusals that are deterministic judgments — the
/// daemon received the Hello and said no. Retrying or failing over past
/// them would hide a misconfiguration (or, for stale-generation, hide
/// the fence the whole design depends on).
fn is_fatal_dial_error(e: &Error) -> bool {
    matches!(
        e,
        Error::Unauthorized(_)
            | Error::LeaseHeld(_)
            | Error::NotPrimary(_)
            | Error::InvalidConfig(_)
    )
}

/// One established connection.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Protocol version the handshake negotiated (the server echoes the
    /// lower dialect; v3 enables the streaming operations).
    version: u32,
}

/// Outcome of one attempt at a streaming operation, distinguished by
/// what it means for the connection and the retry loop: `Done` and
/// `Judged` leave the request/response framing aligned (the connection
/// is kept); `Fatal` means the stream died mid-flight *after* data
/// crossed the sink or source, so a replay would duplicate bytes — the
/// connection is dropped and the error surfaces without retry.
enum StreamAttempt<T> {
    Done(T),
    Judged(Error),
    Fatal(Error),
}

/// A parsed [`Response::Status`] (also printed by `qckptd status` and
/// surfaced in `bench_store` remote rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteStatus {
    /// Server protocol version.
    pub version: u32,
    /// Namespaces materialized on disk.
    pub namespaces: u64,
    /// Connections accepted since start.
    pub connections: u64,
    /// Server role byte (see [`super::proto::role_name`]).
    pub role: u8,
    /// Fencing generation.
    pub generation: u64,
    /// Total oplog entries across namespaces.
    pub oplog_entries: u64,
    /// Replication lag in entries (see [`Response::Status`]).
    pub repl_lag: u64,
}

/// Client handle to one namespace of a `qckptd` deployment (a primary
/// and any failover peers). Implements [`ObjectStore`], so a
/// [`crate::repo::CheckpointRepo`] built over it is a drop-in
/// replacement for a local repository — plus the shared metadata mirror
/// ([`ObjectStore::is_shared`]) that lets a *different* working
/// directory reconstruct the repository from the daemon alone.
pub struct RemoteStore {
    addrs: Vec<String>,
    /// Index of the address the live connection used last.
    active: AtomicUsize,
    /// Addresses proven demoted (stale generation); never redialed.
    fenced: Mutex<Vec<bool>>,
    namespace: String,
    auth: Option<String>,
    /// Request the namespace's writer lease in every handshake.
    want_lease: AtomicBool,
    /// Granted lease token, re-presented on reconnect (0 = none).
    lease_token: AtomicU64,
    /// Highest primary generation observed; sent as the handshake's
    /// fencing floor.
    max_generation: AtomicU64,
    conn: Mutex<Option<Conn>>,
    round_trips: AtomicU64,
    retries: usize,
}

impl std::fmt::Debug for RemoteStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteStore")
            .field("addrs", &self.addrs)
            .field("namespace", &self.namespace)
            .field("generation", &self.max_generation.load(Ordering::Relaxed))
            .field("round_trips", &self.round_trips.load(Ordering::Relaxed))
            .finish()
    }
}

impl RemoteStore {
    /// Connects to the deployment at `addr` — a `host:port`, or a
    /// comma-separated failover list (`primary:port,secondary:port`) —
    /// and performs the versioned handshake for `namespace`. An auth
    /// token is read from [`TOKEN_ENV`] when set.
    ///
    /// # Errors
    ///
    /// Fails when no address is reachable, the namespace is invalid, or
    /// the server speaks a different protocol version.
    pub fn connect(addr: impl Into<String>, namespace: impl Into<String>) -> Result<RemoteStore> {
        let auth = std::env::var(TOKEN_ENV).ok().filter(|t| !t.is_empty());
        Self::connect_opts(addr, namespace, auth)
    }

    /// [`RemoteStore::connect`] with an explicit auth token (bypassing
    /// [`TOKEN_ENV`]).
    ///
    /// # Errors
    ///
    /// As [`RemoteStore::connect`].
    pub fn connect_opts(
        addr: impl Into<String>,
        namespace: impl Into<String>,
        auth: Option<String>,
    ) -> Result<RemoteStore> {
        let spec = addr.into();
        let addrs = parse_addr_list(&spec);
        if addrs.is_empty() {
            return Err(Error::InvalidConfig(format!(
                "remote address list {spec:?} names no addresses"
            )));
        }
        let store = RemoteStore {
            fenced: Mutex::new(vec![false; addrs.len()]),
            addrs,
            active: AtomicUsize::new(0),
            namespace: namespace.into(),
            auth,
            want_lease: AtomicBool::new(false),
            lease_token: AtomicU64::new(0),
            max_generation: AtomicU64::new(0),
            conn: Mutex::new(None),
            round_trips: AtomicU64::new(0),
            retries: retry_budget(),
        };
        if !valid_namespace(&store.namespace) {
            return Err(Error::InvalidConfig(format!(
                "invalid remote namespace {:?} (1-64 chars of [A-Za-z0-9._-])",
                store.namespace
            )));
        }
        // Establish + handshake eagerly so misconfiguration fails at
        // open time, not at the first checkpoint.
        let mut guard = store.conn.lock().expect("conn lock poisoned");
        *guard = Some(store.dial()?);
        drop(guard);
        Ok(store)
    }

    /// The address of the daemon the live connection last used.
    pub fn addr(&self) -> &str {
        &self.addrs[self
            .active
            .load(Ordering::Relaxed)
            .min(self.addrs.len() - 1)]
    }

    /// The namespace this handle operates in.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// Protocol round trips performed so far (request/response pairs
    /// that crossed the wire, counting a pipelined `put_batch` burst as
    /// one per sub-frame). The benchmark's `protocol_round_trips`
    /// column.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Highest primary generation this handle has observed.
    pub fn observed_generation(&self) -> u64 {
        self.max_generation.load(Ordering::Relaxed)
    }

    /// Dials across the address list (skipping fenced entries) starting
    /// at the last-good address. A stale-generation refusal fences that
    /// address permanently and moves on; other deterministic refusals
    /// (wrong token, held lease, wrong version) fail fast.
    fn dial(&self) -> Result<Conn> {
        let n = self.addrs.len();
        let start = self.active.load(Ordering::Relaxed).min(n - 1);
        let mut last_err: Option<Error> = None;
        for k in 0..n {
            let i = (start + k) % n;
            if self.fenced.lock().expect("fence list poisoned")[i] {
                continue;
            }
            match self.dial_one(i) {
                Ok(conn) => {
                    self.active.store(i, Ordering::Relaxed);
                    return Ok(conn);
                }
                Err(e @ Error::StaleGeneration(_)) => {
                    self.fenced.lock().expect("fence list poisoned")[i] = true;
                    last_err = Some(e);
                }
                Err(e) if is_fatal_dial_error(&e) => return Err(e),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            Error::StaleGeneration(format!(
                "every address in {:?} is fenced (demoted); re-point at the promoted daemon",
                self.addrs
            ))
        }))
    }

    /// Dials one address (bounded connect + per-op socket timeouts — a
    /// wedged or black-holed daemon must fail the save, not hang the
    /// training loop) and performs the v2 handshake.
    fn dial_one(&self, index: usize) -> Result<Conn> {
        use std::net::ToSocketAddrs;
        let addr = &self.addrs[index];
        let sock_addr = addr
            .to_socket_addrs()
            .map_err(|e| Error::io(format!("resolving {addr}"), e))?
            .next()
            .ok_or_else(|| Error::InvalidConfig(format!("{addr:?} resolves to no address")))?;
        let stream = TcpStream::connect_timeout(&sock_addr, CONNECT_TIMEOUT)
            .map_err(|e| Error::io(format!("connecting to qckptd at {addr}"), e))?;
        let timeout = io_timeout();
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| Error::io("setting read timeout", e))?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(|e| Error::io("setting write timeout", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| Error::io("setting TCP_NODELAY", e))?;
        let mut conn = Conn {
            reader: BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| Error::io("cloning stream", e))?,
            ),
            writer: BufWriter::new(stream),
            version: PROTO_VERSION,
        };
        let flags = if self.want_lease.load(Ordering::Acquire) {
            HELLO_FLAG_WANT_LEASE
        } else {
            0
        };
        let hello = Request::Hello {
            version: PROTO_VERSION,
            namespace: self.namespace.clone(),
            auth: self.auth.clone().unwrap_or_default(),
            flags,
            lease_token: self.lease_token.load(Ordering::Acquire),
            min_generation: self.max_generation.load(Ordering::Acquire),
        };
        write_frame(&mut conn.writer, &hello.encode())?;
        conn.writer
            .flush()
            .map_err(|e| Error::io("flushing handshake", e))?;
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        crate::obs::ROUND_TRIPS.inc();
        match Response::decode(&read_frame(&mut conn.reader)?)?.into_result("handshake")? {
            Response::HelloOk {
                version,
                generation,
                lease,
                ..
            } if (PROTO_VERSION_MIN..=PROTO_VERSION).contains(&version) => {
                self.max_generation.fetch_max(generation, Ordering::AcqRel);
                if let Some(grant) = lease {
                    self.lease_token.store(grant.token, Ordering::Release);
                }
                // An older daemon echoes its own dialect; everything
                // but the v3 streaming ops (which fall back to the
                // buffered forms) works identically.
                conn.version = version;
                Ok(conn)
            }
            Response::HelloOk { version, .. } => Err(Error::protocol(
                "handshake",
                format!(
                    "server answered version {version}, \
                     expected {PROTO_VERSION_MIN} through {PROTO_VERSION}"
                ),
            )),
            other => Err(unexpected("handshake", &other)),
        }
    }

    /// Requests the namespace's writer lease (forcing a re-handshake so
    /// the grant arrives on this connection). Every subsequent reconnect
    /// re-presents the token, and traffic renews the TTL server-side.
    ///
    /// # Errors
    ///
    /// [`Error::LeaseHeld`] when another live writer holds it; transport
    /// errors when no daemon is reachable.
    pub fn acquire_writer_lease(&self) -> Result<()> {
        self.want_lease.store(true, Ordering::Release);
        let mut guard = self.conn.lock().expect("conn lock poisoned");
        *guard = None;
        match self.dial() {
            Ok(conn) => {
                *guard = Some(conn);
                Ok(())
            }
            Err(e) => {
                self.want_lease.store(false, Ordering::Release);
                Err(e)
            }
        }
    }

    /// Releases the writer lease (best-effort: an unreachable daemon
    /// expires it by TTL anyway).
    pub fn release_writer_lease(&self) {
        self.want_lease.store(false, Ordering::Release);
        if self.lease_token.load(Ordering::Acquire) == 0 {
            return;
        }
        let _ = self.request("releasing writer lease", Request::LeaseRelease);
        self.lease_token.store(0, Ordering::Release);
    }

    /// Sends `requests` pipelined on one connection and returns their
    /// responses, retrying the *whole* burst on a fresh connection after
    /// a transport failure (safe: idempotent ops — see module docs).
    fn exchange(&self, context: &str, requests: &[Request]) -> Result<Vec<Response>> {
        let bodies: Vec<Vec<u8>> = requests.iter().map(Request::encode).collect();
        self.exchange_bodies(context, &bodies)
    }

    /// [`RemoteStore::exchange`] over pre-encoded frame bodies — the
    /// save path encodes its `PutBatch` frames straight from borrowed
    /// chunk slices and hands them here.
    fn exchange_bodies(&self, context: &str, bodies: &[Vec<u8>]) -> Result<Vec<Response>> {
        let mut guard = self.conn.lock().expect("conn lock poisoned");
        let mut last_err: Option<Error> = None;
        for attempt in 0..=self.retries {
            if attempt > 0 {
                std::thread::sleep(backoff_delay(attempt));
            }
            let mut conn = match guard.take() {
                Some(conn) => conn,
                None => match self.dial() {
                    Ok(conn) => conn,
                    // Deterministic refusals (fenced everywhere, bad
                    // token, held lease) will not improve with retries.
                    Err(e) if is_fatal_dial_error(&e) => return Err(e),
                    Err(e @ Error::StaleGeneration(_)) => return Err(e),
                    Err(e) => {
                        last_err = Some(e);
                        continue;
                    }
                },
            };
            match Self::exchange_on(&mut conn, bodies) {
                Ok(responses) => {
                    self.round_trips
                        .fetch_add(bodies.len() as u64, Ordering::Relaxed);
                    crate::obs::ROUND_TRIPS.add(bodies.len() as u64);
                    *guard = Some(conn);
                    // Server-reported errors surface here, after the
                    // transport succeeded — they are NOT retried.
                    return responses
                        .into_iter()
                        .map(|r| r.into_result(context))
                        .collect();
                }
                Err(e) => {
                    // Transport or framing failure: drop the connection
                    // and retry from scratch (next attempt may dial a
                    // failover address).
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| Error::protocol(context.to_string(), "no attempts")))
    }

    /// Writes every request frame, flushes once, then reads every
    /// response — the pipelining primitive.
    fn exchange_on(conn: &mut Conn, bodies: &[Vec<u8>]) -> Result<Vec<Response>> {
        for body in bodies {
            write_frame(&mut conn.writer, body)?;
        }
        conn.writer
            .flush()
            .map_err(|e| Error::io("flushing request", e))?;
        let mut responses = Vec::with_capacity(bodies.len());
        for _ in bodies {
            responses.push(Response::decode(&read_frame(&mut conn.reader)?)?);
        }
        Ok(responses)
    }

    /// Single-request convenience wrapper.
    fn request(&self, context: &str, request: Request) -> Result<Response> {
        let mut responses = self.exchange(context, std::slice::from_ref(&request))?;
        Ok(responses.remove(0))
    }

    /// The live connection's negotiated protocol version (dialing if
    /// necessary). The streaming paths branch on it: a v2 daemon gets
    /// the buffered fallback instead of frames it cannot decode.
    fn conn_version(&self) -> Result<u32> {
        let mut guard = self.conn.lock().expect("conn lock poisoned");
        if let Some(conn) = guard.as_ref() {
            return Ok(conn.version);
        }
        let conn = self.dial()?;
        let version = conn.version;
        *guard = Some(conn);
        Ok(version)
    }

    /// Retry harness for the v3 streaming operations. Each attempt runs
    /// `f` on a live connection; `Err` from `f` is a transport failure
    /// *before* any payload moved and is retried on a fresh connection
    /// (safe: content-addressed streams are idempotent), while the
    /// [`StreamAttempt`] outcomes end the loop — see its docs.
    fn stream_attempt<T>(
        &self,
        context: &str,
        f: &mut dyn FnMut(&mut Conn) -> Result<StreamAttempt<T>>,
    ) -> Result<T> {
        let mut guard = self.conn.lock().expect("conn lock poisoned");
        let mut last_err: Option<Error> = None;
        for attempt in 0..=self.retries {
            if attempt > 0 {
                std::thread::sleep(backoff_delay(attempt));
            }
            let mut conn = match guard.take() {
                Some(conn) => conn,
                None => match self.dial() {
                    Ok(conn) => conn,
                    Err(e) if is_fatal_dial_error(&e) => return Err(e),
                    Err(e @ Error::StaleGeneration(_)) => return Err(e),
                    Err(e) => {
                        last_err = Some(e);
                        continue;
                    }
                },
            };
            if conn.version < 3 {
                let version = conn.version;
                *guard = Some(conn);
                return Err(Error::protocol(
                    context.to_string(),
                    format!("the daemon negotiated protocol v{version}; streaming needs v3"),
                ));
            }
            match f(&mut conn) {
                Ok(StreamAttempt::Done(value)) => {
                    *guard = Some(conn);
                    return Ok(value);
                }
                Ok(StreamAttempt::Judged(e)) => {
                    *guard = Some(conn);
                    return Err(e);
                }
                Ok(StreamAttempt::Fatal(e)) => return Err(e),
                Err(e) => {
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| Error::protocol(context.to_string(), "no attempts")))
    }

    /// Asks the daemon for its status line.
    ///
    /// # Errors
    ///
    /// Fails on transport or protocol errors.
    pub fn status(&self) -> Result<RemoteStatus> {
        match self.request("querying status", Request::Status)? {
            Response::Status {
                version,
                namespaces,
                connections,
                role,
                generation,
                oplog_entries,
                repl_lag,
            } => Ok(RemoteStatus {
                version,
                namespaces,
                connections,
                role,
                generation,
                oplog_entries,
                repl_lag,
            }),
            other => Err(unexpected("querying status", &other)),
        }
    }

    /// Fetches the daemon's metrics registry as a Prometheus-style text
    /// exposition (protocol v3; readable without a writer lease).
    ///
    /// # Errors
    ///
    /// Fails on transport or protocol errors, including against a
    /// server that only negotiated v2.
    pub fn metrics(&self) -> Result<String> {
        match self.request("querying metrics", Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected("querying metrics", &other)),
        }
    }

    /// Promotes the connected daemon to primary; returns the new
    /// generation (also adopted as this handle's fencing floor, so a
    /// later reconnect to the demoted primary is refused).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an unauthorized refusal.
    pub fn promote_daemon(&self) -> Result<u64> {
        match self.request("promoting daemon", Request::Promote)? {
            Response::Promoted { generation } => {
                self.max_generation.fetch_max(generation, Ordering::AcqRel);
                Ok(generation)
            }
            other => Err(unexpected("promoting daemon", &other)),
        }
    }

    /// Asks the daemon to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Fails on transport or protocol errors.
    pub fn shutdown_daemon(&self) -> Result<()> {
        match self.request("requesting shutdown", Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(unexpected("requesting shutdown", &other)),
        }
    }

    /// Round-trip liveness probe.
    ///
    /// # Errors
    ///
    /// Fails when the daemon is unreachable.
    pub fn ping(&self) -> Result<()> {
        match self.request("pinging", Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pinging", &other)),
        }
    }
}

impl Drop for RemoteStore {
    /// Best-effort lease release on an **existing** connection only — a
    /// run that ends by scope drop frees the namespace for the next
    /// writer immediately, while a killed process leaves the TTL to
    /// expire the lease. Never dials: drop must not block on a dead
    /// daemon.
    fn drop(&mut self) {
        if self.lease_token.load(Ordering::Acquire) == 0 {
            return;
        }
        if let Ok(mut guard) = self.conn.lock() {
            if let Some(conn) = guard.as_mut() {
                let release = Request::LeaseRelease.encode();
                if write_frame(&mut conn.writer, &release).is_ok() && conn.writer.flush().is_ok() {
                    let _ = read_frame(&mut conn.reader);
                }
            }
        }
    }
}

fn unexpected(context: &str, resp: &Response) -> Error {
    Error::protocol(context.to_string(), format!("unexpected response {resp:?}"))
}

impl ObjectStore for RemoteStore {
    fn put_batch(&self, chunks: &[StagedChunk<'_>], fsync: bool) -> Result<BatchPutReport> {
        // A chunk whose payload alone exceeds the frame cap can never
        // ride PUT_BATCH — both ends would refuse the frame. Refuse it
        // here with a pointer at the streaming path instead of letting
        // the encoder build a doomed quarter-gigabyte frame.
        if let Some(oversize) = chunks.iter().find(|c| c.data.len() > MAX_FRAME_LEN) {
            return Err(Error::protocol(
                "storing chunk batch",
                format!(
                    "chunk {} is {} bytes, above the {} byte frame cap — \
                     store payloads this large with put_stream (PUT_STREAM)",
                    oversize.reference.hash,
                    oversize.data.len(),
                    MAX_FRAME_LEN
                ),
            ));
        }
        // Split into pipelined sub-frames by payload volume, encoding
        // each frame body straight from the borrowed chunk slices (no
        // owned copy of the whole snapshot). Chunk boundaries never
        // split, and order is preserved, so the server observes the
        // same first-occurrence dedup semantics as the local backends
        // (frames on one connection apply in order).
        let mut bodies = Vec::new();
        let mut start = 0usize;
        let mut frame_bytes = 0usize;
        for (i, chunk) in chunks.iter().enumerate() {
            if i > start && frame_bytes + chunk.data.len() > PUT_BATCH_FRAME_BYTES {
                bodies.push(super::proto::encode_put_batch(fsync, &chunks[start..i]));
                start = i;
                frame_bytes = 0;
            }
            frame_bytes += chunk.data.len();
        }
        bodies.push(super::proto::encode_put_batch(fsync, &chunks[start..]));

        let responses = self.exchange_bodies("storing chunk batch", &bodies)?;
        let mut report = BatchPutReport::default();
        for resp in responses {
            match resp {
                Response::PutBatch(part) => {
                    report.fresh.extend(part.fresh);
                    report.renames += part.renames;
                    report.fsyncs += part.fsyncs;
                }
                other => return Err(unexpected("storing chunk batch", &other)),
            }
        }
        if report.fresh.len() != chunks.len() {
            return Err(Error::protocol(
                "storing chunk batch",
                format!(
                    "server acknowledged {} chunks, sent {}",
                    report.fresh.len(),
                    chunks.len()
                ),
            ));
        }
        Ok(report)
    }

    fn get(&self, reference: &ChunkRef) -> Result<Vec<u8>> {
        match self.request(
            "fetching chunk",
            Request::Get {
                reference: *reference,
            },
        )? {
            Response::Chunk(data) => {
                // End-to-end verification: never trust the wire (or the
                // server) over the content address.
                crate::store::verify_chunk(reference, &data)?;
                Ok(data)
            }
            other => Err(unexpected("fetching chunk", &other)),
        }
    }

    fn get_many(&self, refs: &[ChunkRef]) -> Result<Vec<Vec<u8>>> {
        if refs.is_empty() {
            return Ok(Vec::new());
        }
        // Pipelined: all Get frames go out before the first reply is
        // read, so resolving an N-chunk section costs one effective
        // round trip of latency, not N — this is what makes remote
        // recovery latency O(sections), not O(chunks).
        let requests: Vec<Request> = refs
            .iter()
            .map(|r| Request::Get { reference: *r })
            .collect();
        self.exchange("fetching chunk batch", &requests)?
            .into_iter()
            .zip(refs)
            .map(|(resp, reference)| match resp {
                Response::Chunk(data) => {
                    crate::store::verify_chunk(reference, &data)?;
                    Ok(data)
                }
                other => Err(unexpected("fetching chunk batch", &other)),
            })
            .collect()
    }

    fn get_stream(
        &self,
        reference: &ChunkRef,
        segment: usize,
        sink: &mut dyn FnMut(&[u8]) -> Result<()>,
    ) -> Result<()> {
        // A v2 daemon cannot speak the stream frames; fall back to the
        // buffered GET (already end-to-end verified).
        if self.conn_version()? < 3 {
            let data = self.get(reference)?;
            for part in data.chunks(segment.max(1)) {
                sink(part)?;
            }
            return Ok(());
        }
        let context = "fetching chunk stream";
        let reference = *reference;
        let mut fed_sink = false;
        self.stream_attempt(context, &mut |conn| {
            if fed_sink {
                // Unreachable by construction (every post-delivery exit
                // below is Done/Judged/Fatal), but never risk replaying
                // bytes into the sink.
                return Ok(StreamAttempt::Fatal(Error::protocol(
                    context.to_string(),
                    "stream restarted after delivering data",
                )));
            }
            write_frame(&mut conn.writer, &Request::GetStream { reference }.encode())?;
            conn.writer
                .flush()
                .map_err(|e| Error::io("flushing request", e))?;
            self.round_trips.fetch_add(1, Ordering::Relaxed);
            crate::obs::ROUND_TRIPS.inc();
            let resp = Response::decode(&read_frame(&mut conn.reader)?)?;
            let declared = match resp.into_result(context) {
                Ok(Response::StreamBegin { len }) => len,
                Ok(other) => return Err(unexpected(context, &other)),
                // Judged refusal (e.g. not found) answers the request
                // frame directly; nothing streamed, framing aligned.
                Err(judged) => return Ok(StreamAttempt::Judged(judged)),
            };
            if declared != u64::from(reference.len) {
                // Data frames are already in flight behind the bogus
                // header; the connection is unusable.
                return Ok(StreamAttempt::Fatal(Error::corrupt(
                    format!("chunk {}", reference.hash),
                    format!(
                        "stream declared {declared} bytes, reference says {}",
                        reference.len
                    ),
                )));
            }
            let mut hasher = Sha256::new();
            let mut got = 0u64;
            loop {
                let resp = match read_frame(&mut conn.reader).and_then(|f| Response::decode(&f)) {
                    Ok(resp) => resp,
                    // A replay would duplicate bytes into the sink.
                    Err(e) if fed_sink => return Ok(StreamAttempt::Fatal(e)),
                    Err(e) => return Err(e),
                };
                match resp.into_result(context) {
                    Ok(Response::StreamData(data)) => {
                        super::note_stream_buffer(data.len());
                        got += data.len() as u64;
                        if got > declared {
                            return Ok(StreamAttempt::Fatal(Error::corrupt(
                                format!("chunk {}", reference.hash),
                                format!("stream overran its declared length {declared}"),
                            )));
                        }
                        hasher.update(&data);
                        fed_sink = true;
                        if let Err(e) = sink(&data) {
                            // The caller's sink failed mid-stream; the
                            // connection is mid-flight and dropped.
                            return Ok(StreamAttempt::Fatal(e));
                        }
                    }
                    Ok(Response::StreamEnd { .. }) => break,
                    Ok(other) => return Ok(StreamAttempt::Fatal(unexpected(context, &other))),
                    // Terminal judged error (corruption the server found
                    // mid-read) replaces StreamEnd; framing is aligned.
                    Err(judged) => return Ok(StreamAttempt::Judged(judged)),
                }
            }
            // End-to-end verification: never trust the wire (or the
            // server) over the content address.
            if got != u64::from(reference.len) {
                return Ok(StreamAttempt::Judged(Error::corrupt(
                    format!("chunk {}", reference.hash),
                    format!("stream delivered {got} bytes, expected {}", reference.len),
                )));
            }
            let actual = hasher.finalize();
            if actual != reference.hash {
                return Ok(StreamAttempt::Judged(Error::corrupt(
                    format!("chunk {}", reference.hash),
                    format!("streamed content hashes to {actual}"),
                )));
            }
            Ok(StreamAttempt::Done(()))
        })
    }

    fn put_stream(
        &self,
        reference: &ChunkRef,
        source: &mut dyn FnMut() -> Result<Option<Vec<u8>>>,
        fsync: bool,
    ) -> Result<bool> {
        if self.conn_version()? < 3 {
            // Buffered fallback for a v2 daemon: assemble, verify, ride
            // PUT_BATCH (mirrors the trait's default implementation).
            let mut data = Vec::new();
            while let Some(seg) = source()? {
                data.extend_from_slice(&seg);
            }
            crate::store::verify_chunk(reference, &data)?;
            let report = self.put_batch(
                &[StagedChunk {
                    reference: *reference,
                    data: &data,
                }],
                fsync,
            )?;
            return Ok(report.fresh[0]);
        }
        let context = "storing chunk stream";
        let reference = *reference;
        let mut consumed_any = false;
        self.stream_attempt(context, &mut |conn| {
            if consumed_any {
                return Ok(StreamAttempt::Fatal(Error::protocol(
                    context.to_string(),
                    "stream restarted after consuming the source",
                )));
            }
            write_frame(
                &mut conn.writer,
                &Request::PutStreamBegin { reference, fsync }.encode(),
            )?;
            conn.writer
                .flush()
                .map_err(|e| Error::io("flushing request", e))?;
            self.round_trips.fetch_add(1, Ordering::Relaxed);
            crate::obs::ROUND_TRIPS.inc();
            let resp = Response::decode(&read_frame(&mut conn.reader)?)?;
            match resp.into_result(context) {
                // Proceed: the daemon wants the body.
                Ok(Response::Ok) => {}
                Ok(Response::StreamEnd { fresh }) => {
                    // Dedup hit: the daemon already holds the content.
                    // Drain the source anyway — a finished put_stream
                    // has always consumed it, streamed or not.
                    loop {
                        match source() {
                            Ok(Some(_)) => consumed_any = true,
                            Ok(None) => break,
                            Err(e) => return Ok(StreamAttempt::Fatal(e)),
                        }
                    }
                    return Ok(StreamAttempt::Done(fresh));
                }
                Ok(other) => return Err(unexpected(context, &other)),
                Err(judged) => return Ok(StreamAttempt::Judged(judged)),
            }
            loop {
                let seg = match source() {
                    Ok(seg) => seg,
                    // Source failures are the caller's, not the wire's,
                    // but the stream is open: drop the connection.
                    Err(e) => return Ok(StreamAttempt::Fatal(e)),
                };
                let Some(data) = seg else { break };
                consumed_any = true;
                // Re-chunk to the wire granularity: the decoder caps a
                // segment at MAX_STREAM_SEGMENT.
                for piece in data.chunks(STREAM_SEGMENT_BYTES) {
                    super::note_stream_buffer(piece.len());
                    let step = (|| -> Result<Response> {
                        write_frame(
                            &mut conn.writer,
                            &Request::PutStreamData(piece.to_vec()).encode(),
                        )?;
                        conn.writer
                            .flush()
                            .map_err(|e| Error::io("flushing segment", e))?;
                        self.round_trips.fetch_add(1, Ordering::Relaxed);
                        crate::obs::ROUND_TRIPS.inc();
                        Response::decode(&read_frame(&mut conn.reader)?)
                    })();
                    match step {
                        Ok(resp) => match resp.into_result(context) {
                            Ok(Response::Ok) => {}
                            Ok(other) => {
                                return Ok(StreamAttempt::Fatal(unexpected(context, &other)))
                            }
                            // The daemon refused a staged segment (store
                            // failure): judged, framing aligned.
                            Err(judged) => return Ok(StreamAttempt::Judged(judged)),
                        },
                        // Transport loss mid-body; the consumed source
                        // segments cannot be replayed.
                        Err(e) => return Ok(StreamAttempt::Fatal(e)),
                    }
                }
            }
            let step = (|| -> Result<Response> {
                write_frame(&mut conn.writer, &Request::PutStreamEnd.encode())?;
                conn.writer
                    .flush()
                    .map_err(|e| Error::io("flushing stream end", e))?;
                self.round_trips.fetch_add(1, Ordering::Relaxed);
                crate::obs::ROUND_TRIPS.inc();
                Response::decode(&read_frame(&mut conn.reader)?)
            })();
            match step {
                Ok(resp) => match resp.into_result(context) {
                    Ok(Response::StreamEnd { fresh }) => Ok(StreamAttempt::Done(fresh)),
                    Ok(other) => Ok(StreamAttempt::Fatal(unexpected(context, &other))),
                    // Content-address mismatch, judged at commit time.
                    Err(judged) => Ok(StreamAttempt::Judged(judged)),
                },
                Err(e) if consumed_any => Ok(StreamAttempt::Fatal(e)),
                // Empty payload: nothing consumed, safe to replay.
                Err(e) => Err(e),
            }
        })
    }

    fn contains(&self, hash: &ContentHash) -> bool {
        matches!(
            self.request(
                "probing existence",
                Request::Contains {
                    hashes: vec![*hash],
                },
            ),
            Ok(Response::Contains(bools)) if bools == [true]
        )
    }

    fn contains_all(&self, hashes: &[ContentHash]) -> bool {
        if hashes.is_empty() {
            return true;
        }
        matches!(
            self.request(
                "probing existence",
                Request::Contains {
                    hashes: hashes.to_vec(),
                },
            ),
            Ok(Response::Contains(bools)) if bools.len() == hashes.len() && bools.iter().all(|b| *b)
        )
    }

    fn list(&self) -> Result<Vec<ContentHash>> {
        match self.request("listing objects", Request::List)? {
            Response::Hashes(hashes) => Ok(hashes),
            other => Err(unexpected("listing objects", &other)),
        }
    }

    fn sweep(&self, reachable: &BTreeSet<ContentHash>) -> Result<GcReport> {
        match self.request(
            "sweeping",
            Request::Sweep {
                dry_run: false,
                reachable: reachable.iter().copied().collect(),
            },
        )? {
            Response::Gc(report) => Ok(report),
            other => Err(unexpected("sweeping", &other)),
        }
    }

    fn plan_sweep(&self, reachable: &BTreeSet<ContentHash>) -> Result<GcReport> {
        match self.request(
            "planning sweep",
            Request::Sweep {
                dry_run: true,
                reachable: reachable.iter().copied().collect(),
            },
        )? {
            Response::Gc(report) => Ok(report),
            other => Err(unexpected("planning sweep", &other)),
        }
    }

    fn stats(&self) -> Result<StoreStats> {
        match self.request("querying stats", Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("querying stats", &other)),
        }
    }

    fn clear_staging(&self) -> Result<usize> {
        match self.request("clearing staging", Request::ClearStaging)? {
            Response::Cleared(n) => Ok(n as usize),
            other => Err(unexpected("clearing staging", &other)),
        }
    }

    fn is_shared(&self) -> bool {
        true
    }

    fn acquire_writer_lease(&self) -> Result<()> {
        RemoteStore::acquire_writer_lease(self)
    }

    fn release_writer_lease(&self) {
        RemoteStore::release_writer_lease(self)
    }

    fn meta_put(&self, name: &str, bytes: &[u8]) -> Result<()> {
        match self.request(
            "publishing metadata",
            Request::MetaPut {
                name: name.to_string(),
                bytes: bytes.to_vec(),
            },
        )? {
            Response::Ok => Ok(()),
            other => Err(unexpected("publishing metadata", &other)),
        }
    }

    fn meta_get(&self, name: &str) -> Result<Option<Vec<u8>>> {
        match self.request(
            "fetching metadata",
            Request::MetaGet {
                name: name.to_string(),
            },
        )? {
            Response::Meta(opt) => Ok(opt),
            other => Err(unexpected("fetching metadata", &other)),
        }
    }

    fn meta_get_many(&self, names: &[String]) -> Result<Vec<Option<Vec<u8>>>> {
        if names.is_empty() {
            return Ok(Vec::new());
        }
        // Pipelined: all MetaGet frames go out before the first reply
        // is read, so syncing N manifests costs one effective round
        // trip of latency, not N.
        let requests: Vec<Request> = names
            .iter()
            .map(|n| Request::MetaGet { name: n.clone() })
            .collect();
        self.exchange("fetching metadata batch", &requests)?
            .into_iter()
            .map(|resp| match resp {
                Response::Meta(opt) => Ok(opt),
                other => Err(unexpected("fetching metadata batch", &other)),
            })
            .collect()
    }

    fn meta_list(&self, prefix: &str) -> Result<Vec<String>> {
        match self.request(
            "listing metadata",
            Request::MetaList {
                prefix: prefix.to_string(),
            },
        )? {
            Response::Names(names) => Ok(names),
            other => Err(unexpected("listing metadata", &other)),
        }
    }

    fn meta_delete(&self, name: &str) -> Result<()> {
        match self.request(
            "deleting metadata",
            Request::MetaDelete {
                name: name.to_string(),
            },
        )? {
            Response::Ok => Ok(()),
            other => Err(unexpected("deleting metadata", &other)),
        }
    }

    #[cfg(any(test, feature = "testing"))]
    fn corrupt_object(&self, hash: &ContentHash, offset: usize) -> Result<()> {
        match self.request(
            "corrupting object",
            Request::Corrupt {
                hash: *hash,
                offset: offset as u64,
            },
        )? {
            Response::Ok => Ok(()),
            other => Err(unexpected("corrupting object", &other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::server::spawn_daemon;
    use super::*;
    use crate::store::StoreKind;

    fn scratch(tag: &str) -> std::path::PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qcheck-client-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn addr_lists_parse_and_reject_empty() {
        assert_eq!(parse_addr_list("a:1, b:2 ,,c:3"), vec!["a:1", "b:2", "c:3"]);
        assert!(parse_addr_list(" , ").is_empty());
        assert!(matches!(
            RemoteStore::connect(",,", "ns"),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn backoff_is_exponential_capped_and_jittered() {
        for attempt in 1..=10 {
            let d = backoff_delay(attempt);
            let shift = (attempt - 1).min(6) as u32;
            let base = (BACKOFF_BASE_MS << shift).min(BACKOFF_CAP_MS);
            let lo = Duration::from_micros(base * 500);
            let hi = Duration::from_micros(base * 1500);
            assert!(
                d >= lo && d <= hi,
                "attempt {attempt}: {d:?} not in [{lo:?}, {hi:?}]"
            );
        }
        // The cap holds even for absurd attempt counts.
        assert!(backoff_delay(1000) <= Duration::from_micros(1500 * 1000));
    }

    /// Pinned contract: a server-*reported* error is a judgment, not a
    /// transport loss, and must never be retried. One logical request
    /// that the server answers with an error costs exactly one round
    /// trip, regardless of the retry budget.
    #[test]
    fn server_reported_errors_are_never_retried() {
        let root = scratch("no-retry");
        let daemon = spawn_daemon(&root, StoreKind::Pack).unwrap();
        let store = RemoteStore::connect(daemon.addr(), "judged").unwrap();
        assert!(store.retries > 0, "retry budget must exist for this test");
        let before = store.round_trips();
        let err = store.meta_put("../escape", b"x").unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)), "{err}");
        assert_eq!(
            store.round_trips() - before,
            1,
            "a judged request must cross the wire exactly once"
        );
        // The connection survives a judged error: the next request
        // reuses it (no extra handshake round trip).
        let before = store.round_trips();
        store.ping().unwrap();
        assert_eq!(store.round_trips() - before, 1);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn connect_fails_over_to_the_next_address() {
        let root = scratch("failover");
        let daemon = spawn_daemon(&root, StoreKind::Pack).unwrap();
        // First address is a black hole (reserved port, nothing bound);
        // the client must fail over to the live daemon at connect time.
        let spec = format!("127.0.0.1:1,{}", daemon.addr());
        let store = RemoteStore::connect(spec, "fo").unwrap();
        store.ping().unwrap();
        assert_eq!(store.addr(), daemon.addr());
        let _ = std::fs::remove_dir_all(root);
    }
}
