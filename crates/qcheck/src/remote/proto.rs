//! The `qckptd` wire protocol: length-prefixed, CRC-framed binary frames.
//!
//! ## Frame layout
//!
//! Every message in either direction is one frame:
//!
//! ```text
//! len   u32 le      body length in bytes (not counting len or crc)
//! body  len bytes   opcode u8 | opcode-specific payload
//! crc   u32 le      CRC32 (IEEE 802.3) of body
//! ```
//!
//! The CRC catches torn or bit-damaged frames cheaply; payload *content*
//! integrity is still end-to-end (every chunk read re-verifies length and
//! SHA-256 client-side, exactly as for the local backends). A frame that
//! fails its length bound or CRC is a protocol error and the connection
//! is dropped — there is no resynchronization inside a stream.
//!
//! ## Handshake
//!
//! The first client frame must be [`Request::Hello`] carrying the
//! protocol version and the client's *namespace* (the multi-tenant unit:
//! each namespace is an independent object store + metadata space on the
//! daemon). The server replies [`Response::HelloOk`] with its own
//! version, or an error frame when the version is unsupported — version
//! negotiation is strict equality for now; the version field exists so a
//! future daemon can speak several.
//!
//! ## Idempotency rules
//!
//! Every operation is safe to replay after a reconnect, which is what
//! lets the client retry transparently on transport failure:
//!
//! * `PutBatch` is content-addressed — re-sending a batch that (partly)
//!   committed re-reports the committed chunks as dedup hits and writes
//!   only what is missing;
//! * `MetaPut` overwrites atomically with the same bytes;
//! * `Get` / `Contains` / `List` / `Stats` are reads;
//! * `Sweep` / `ClearStaging` converge (a second run finds nothing).
//!
//! Server-reported errors ([`Response::Err`]) are **not** retried: they
//! mean the request was received and judged, not lost.

use std::io::{Read, Write};

use crate::chunk::ChunkRef;
use crate::codec::{Decoder, Encoder};
use crate::error::{Error, Result};
use crate::hash::{crc32, ContentHash};
use crate::store::{BatchPutReport, GcReport, StoreStats};

/// Protocol version spoken by this build. Strict-equality handshake.
pub const PROTO_VERSION: u32 = 1;

/// Upper bound on a single frame body. Bounds the allocation a garbage
/// length prefix can trigger, and therefore the largest single
/// `PutBatch` / `Sweep` payload; the client splits bigger batches into
/// pipelined sub-frames well below this.
pub const MAX_FRAME_LEN: usize = 256 << 20;

/// Namespace grammar: 1–64 chars of `[A-Za-z0-9._-]`. The namespace
/// names a directory component on the server, so the grammar is the
/// security boundary — no separators, no traversal.
pub fn valid_namespace(ns: &str) -> bool {
    !ns.is_empty()
        && ns.len() <= 64
        && ns
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
        && ns != "."
        && ns != ".."
}

/// Metadata-name grammar: relative slash-separated path whose components
/// each satisfy the namespace grammar (e.g. `manifests/ck-….qmf`,
/// `LATEST`). Same reasoning: these become file names under the
/// namespace's `meta/` directory.
pub fn valid_meta_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 256
        && !name.starts_with('/')
        && !name.ends_with('/')
        && name.split('/').all(valid_namespace)
}

/// One chunk of a `PutBatch` request (owned mirror of
/// [`crate::store::StagedChunk`], which borrows its payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireChunk {
    /// Content address + exact length.
    pub reference: ChunkRef,
    /// Payload bytes.
    pub data: Vec<u8>,
}

/// A client request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Versioned handshake; must be the first frame on a connection.
    Hello {
        /// Client protocol version.
        version: u32,
        /// Namespace the connection operates in.
        namespace: String,
    },
    /// Liveness check; returns [`Response::Pong`].
    Ping,
    /// Store a batch of chunks (the whole batch commits together when
    /// the server's layout allows it, mirroring local `put_batch`).
    PutBatch {
        /// fsync staged data before publishing.
        fsync: bool,
        /// The chunks, in order.
        chunks: Vec<WireChunk>,
    },
    /// Fetch one chunk.
    Get {
        /// Its reference (the server verifies before replying; the
        /// client verifies again on receipt).
        reference: ChunkRef,
    },
    /// Existence check for a set of hashes (serves both `contains` and
    /// the batched `contains_all` in one round trip).
    Contains {
        /// Hashes to probe.
        hashes: Vec<ContentHash>,
    },
    /// Enumerate all object hashes, ascending.
    List,
    /// Mark-and-sweep GC against a reachable set. `dry_run` computes the
    /// report without deleting anything (the `qckpt stats` preview).
    Sweep {
        /// Plan only, delete nothing.
        dry_run: bool,
        /// Reachable hashes.
        reachable: Vec<ContentHash>,
    },
    /// Aggregate object statistics.
    Stats,
    /// Remove orphaned server-side staging files for this namespace.
    ClearStaging,
    /// Atomically publish a small named metadata blob (manifests,
    /// `LATEST`) so a client in a fresh directory can reconstruct the
    /// repository.
    MetaPut {
        /// Name (see [`valid_meta_name`]).
        name: String,
        /// Contents.
        bytes: Vec<u8>,
    },
    /// Fetch a named metadata blob; absent is not an error.
    MetaGet {
        /// Name.
        name: String,
    },
    /// List metadata names under a prefix, ascending.
    MetaList {
        /// Name prefix (e.g. `manifests/`).
        prefix: String,
    },
    /// Delete a named metadata blob (retention); absent is not an error.
    MetaDelete {
        /// Name.
        name: String,
    },
    /// Daemon-level status (version, namespaces, connections served).
    Status,
    /// Ask the daemon to stop accepting connections and exit its accept
    /// loop once in-flight connections finish.
    Shutdown,
    /// Flip one byte of a stored object (failure-injection support for
    /// the backend-equivalence suites; the server refuses it unless
    /// built with the `testing` feature).
    Corrupt {
        /// Victim object.
        hash: ContentHash,
        /// Offset (mod object length).
        offset: u64,
    },
}

/// A server response frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// Server protocol version.
        version: u32,
    },
    /// Liveness reply.
    Pong,
    /// `PutBatch` outcome.
    PutBatch(BatchPutReport),
    /// `Get` payload.
    Chunk(Vec<u8>),
    /// `Contains` answers, in request order.
    Contains(Vec<bool>),
    /// `List` result.
    Hashes(Vec<ContentHash>),
    /// `Sweep` report.
    Gc(GcReport),
    /// `Stats` result.
    Stats(StoreStats),
    /// `ClearStaging` count.
    Cleared(u64),
    /// Generic acknowledgement (`MetaPut`, `MetaDelete`, `Shutdown`,
    /// `Corrupt`).
    Ok,
    /// `MetaGet` result; `None` when the name does not exist.
    Meta(Option<Vec<u8>>),
    /// `MetaList` result.
    Names(Vec<String>),
    /// Daemon status.
    Status {
        /// Server protocol version.
        version: u32,
        /// Namespaces materialized on disk.
        namespaces: u64,
        /// Connections accepted since start.
        connections: u64,
    },
    /// The request was received and failed; never retried by the client.
    Err {
        /// Coarse error class (see [`ErrCode`]).
        code: u8,
        /// Human-readable detail.
        message: String,
    },
}

/// Error classes carried by [`Response::Err`], mapped back onto
/// [`enum@Error`] client-side so remote failures are indistinguishable
/// from local ones where it matters (recovery treats `NotFound` /
/// `Corrupt` as "skip and fall back" in both worlds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrCode {
    /// Object or name absent.
    NotFound = 1,
    /// Stored data failed verification server-side.
    Corrupt = 2,
    /// Server-side I/O failure.
    Io = 3,
    /// Malformed or refused request.
    Invalid = 4,
    /// Anything else.
    Other = 5,
}

impl ErrCode {
    fn from_u8(v: u8) -> ErrCode {
        match v {
            1 => ErrCode::NotFound,
            2 => ErrCode::Corrupt,
            3 => ErrCode::Io,
            4 => ErrCode::Invalid,
            _ => ErrCode::Other,
        }
    }

    /// Classifies a server-side [`enum@Error`] for the wire.
    pub fn classify(e: &Error) -> (ErrCode, String) {
        let code = match e {
            Error::NotFound { .. } => ErrCode::NotFound,
            Error::Corrupt { .. } | Error::Decode { .. } => ErrCode::Corrupt,
            Error::Io { .. } => ErrCode::Io,
            Error::InvalidConfig(_) | Error::UnsupportedVersion { .. } => ErrCode::Invalid,
            _ => ErrCode::Other,
        };
        (code, e.to_string())
    }

    /// Reconstructs an [`enum@Error`] client-side.
    pub fn to_error(self, context: &str, message: String) -> Error {
        match self {
            ErrCode::NotFound => Error::NotFound { what: message },
            ErrCode::Corrupt => Error::corrupt(context.to_string(), message),
            ErrCode::Io => Error::io(
                format!("{context} (server-side)"),
                std::io::Error::other(message),
            ),
            ErrCode::Invalid => Error::InvalidConfig(message),
            ErrCode::Other => Error::protocol(context.to_string(), message),
        }
    }
}

// Opcode bytes. Requests < 0x80, responses ≥ 0x80.
const OP_HELLO: u8 = 1;
const OP_PING: u8 = 2;
const OP_PUT_BATCH: u8 = 3;
const OP_GET: u8 = 4;
const OP_CONTAINS: u8 = 5;
const OP_LIST: u8 = 6;
const OP_SWEEP: u8 = 7;
const OP_STATS: u8 = 8;
const OP_CLEAR_STAGING: u8 = 9;
const OP_META_PUT: u8 = 10;
const OP_META_GET: u8 = 11;
const OP_META_LIST: u8 = 12;
const OP_META_DELETE: u8 = 13;
const OP_STATUS: u8 = 14;
const OP_SHUTDOWN: u8 = 15;
const OP_CORRUPT: u8 = 16;

const RESP_HELLO_OK: u8 = 0x80;
const RESP_PONG: u8 = 0x81;
const RESP_PUT_BATCH: u8 = 0x82;
const RESP_CHUNK: u8 = 0x83;
const RESP_CONTAINS: u8 = 0x84;
const RESP_HASHES: u8 = 0x85;
const RESP_GC: u8 = 0x86;
const RESP_STATS: u8 = 0x87;
const RESP_CLEARED: u8 = 0x88;
const RESP_OK: u8 = 0x89;
const RESP_META: u8 = 0x8A;
const RESP_NAMES: u8 = 0x8B;
const RESP_STATUS: u8 = 0x8C;
const RESP_ERR: u8 = 0xFF;

fn put_hashes(enc: &mut Encoder, hashes: &[ContentHash]) {
    enc.put_varint(hashes.len() as u64);
    for h in hashes {
        enc.put_raw(&h.0);
    }
}

fn get_hashes(dec: &mut Decoder<'_>) -> Result<Vec<ContentHash>> {
    let n = dec.get_varint()? as usize;
    if n.checked_mul(32)
        .map(|b| b > dec.remaining())
        .unwrap_or(true)
    {
        return Err(Error::protocol(
            "decoding hash list",
            format!("count {n} exceeds frame"),
        ));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let raw = dec.get_raw(32)?;
        let mut h = [0u8; 32];
        h.copy_from_slice(raw);
        out.push(ContentHash(h));
    }
    Ok(out)
}

/// Encodes a `PutBatch` frame body directly from borrowed staged chunks
/// — byte-identical to encoding [`Request::PutBatch`] over owned
/// [`WireChunk`] copies, without materializing them. The client's save
/// path uses this so a checkpoint upload peaks at one extra frame body,
/// not a second copy of the whole snapshot.
pub fn encode_put_batch(fsync: bool, chunks: &[crate::store::StagedChunk<'_>]) -> Vec<u8> {
    let payload: usize = chunks.iter().map(|c| c.data.len()).sum();
    let mut enc = Encoder::with_capacity(payload + chunks.len() * 40 + 16);
    enc.put_u8(OP_PUT_BATCH)
        .put_u8(u8::from(fsync))
        .put_varint(chunks.len() as u64);
    for c in chunks {
        enc.put_raw(&c.reference.hash.0)
            .put_u32(c.reference.len)
            .put_raw(c.data);
    }
    enc.into_bytes()
}

impl Request {
    /// Serializes the request into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Request::Hello { version, namespace } => {
                enc.put_u8(OP_HELLO).put_u32(*version).put_str(namespace);
            }
            Request::Ping => {
                enc.put_u8(OP_PING);
            }
            Request::PutBatch { fsync, chunks } => {
                enc.put_u8(OP_PUT_BATCH)
                    .put_u8(u8::from(*fsync))
                    .put_varint(chunks.len() as u64);
                for c in chunks {
                    enc.put_raw(&c.reference.hash.0)
                        .put_u32(c.reference.len)
                        .put_raw(&c.data);
                }
            }
            Request::Get { reference } => {
                enc.put_u8(OP_GET)
                    .put_raw(&reference.hash.0)
                    .put_u32(reference.len);
            }
            Request::Contains { hashes } => {
                enc.put_u8(OP_CONTAINS);
                put_hashes(&mut enc, hashes);
            }
            Request::List => {
                enc.put_u8(OP_LIST);
            }
            Request::Sweep { dry_run, reachable } => {
                enc.put_u8(OP_SWEEP).put_u8(u8::from(*dry_run));
                put_hashes(&mut enc, reachable);
            }
            Request::Stats => {
                enc.put_u8(OP_STATS);
            }
            Request::ClearStaging => {
                enc.put_u8(OP_CLEAR_STAGING);
            }
            Request::MetaPut { name, bytes } => {
                enc.put_u8(OP_META_PUT).put_str(name).put_bytes(bytes);
            }
            Request::MetaGet { name } => {
                enc.put_u8(OP_META_GET).put_str(name);
            }
            Request::MetaList { prefix } => {
                enc.put_u8(OP_META_LIST).put_str(prefix);
            }
            Request::MetaDelete { name } => {
                enc.put_u8(OP_META_DELETE).put_str(name);
            }
            Request::Status => {
                enc.put_u8(OP_STATUS);
            }
            Request::Shutdown => {
                enc.put_u8(OP_SHUTDOWN);
            }
            Request::Corrupt { hash, offset } => {
                enc.put_u8(OP_CORRUPT).put_raw(&hash.0).put_varint(*offset);
            }
        }
        enc.into_bytes()
    }

    /// Parses a frame body into a request.
    ///
    /// # Errors
    ///
    /// Fails on unknown opcodes, truncation or trailing bytes.
    pub fn decode(body: &[u8]) -> Result<Request> {
        let mut dec = Decoder::new(body, "request frame");
        let op = dec.get_u8()?;
        let req = match op {
            OP_HELLO => Request::Hello {
                version: dec.get_u32()?,
                namespace: dec.get_str()?,
            },
            OP_PING => Request::Ping,
            OP_PUT_BATCH => {
                let fsync = dec.get_u8()? != 0;
                let n = dec.get_varint()? as usize;
                let mut chunks = Vec::new();
                for _ in 0..n {
                    let raw = dec.get_raw(32)?;
                    let mut h = [0u8; 32];
                    h.copy_from_slice(raw);
                    let len = dec.get_u32()?;
                    let data = dec.get_raw(len as usize)?.to_vec();
                    chunks.push(WireChunk {
                        reference: ChunkRef {
                            hash: ContentHash(h),
                            len,
                        },
                        data,
                    });
                }
                Request::PutBatch { fsync, chunks }
            }
            OP_GET => {
                let raw = dec.get_raw(32)?;
                let mut h = [0u8; 32];
                h.copy_from_slice(raw);
                Request::Get {
                    reference: ChunkRef {
                        hash: ContentHash(h),
                        len: dec.get_u32()?,
                    },
                }
            }
            OP_CONTAINS => Request::Contains {
                hashes: get_hashes(&mut dec)?,
            },
            OP_LIST => Request::List,
            OP_SWEEP => Request::Sweep {
                dry_run: dec.get_u8()? != 0,
                reachable: get_hashes(&mut dec)?,
            },
            OP_STATS => Request::Stats,
            OP_CLEAR_STAGING => Request::ClearStaging,
            OP_META_PUT => Request::MetaPut {
                name: dec.get_str()?,
                bytes: dec.get_bytes()?,
            },
            OP_META_GET => Request::MetaGet {
                name: dec.get_str()?,
            },
            OP_META_LIST => Request::MetaList {
                prefix: dec.get_str()?,
            },
            OP_META_DELETE => Request::MetaDelete {
                name: dec.get_str()?,
            },
            OP_STATUS => Request::Status,
            OP_SHUTDOWN => Request::Shutdown,
            OP_CORRUPT => {
                let raw = dec.get_raw(32)?;
                let mut h = [0u8; 32];
                h.copy_from_slice(raw);
                Request::Corrupt {
                    hash: ContentHash(h),
                    offset: dec.get_varint()?,
                }
            }
            other => {
                return Err(Error::protocol(
                    "decoding request",
                    format!("unknown opcode {other:#04x}"),
                ))
            }
        };
        dec.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes the response into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Response::HelloOk { version } => {
                enc.put_u8(RESP_HELLO_OK).put_u32(*version);
            }
            Response::Pong => {
                enc.put_u8(RESP_PONG);
            }
            Response::PutBatch(report) => {
                enc.put_u8(RESP_PUT_BATCH)
                    .put_varint(report.fresh.len() as u64);
                for f in &report.fresh {
                    enc.put_u8(u8::from(*f));
                }
                enc.put_u64(report.renames).put_u64(report.fsyncs);
            }
            Response::Chunk(data) => {
                enc.put_u8(RESP_CHUNK).put_bytes(data);
            }
            Response::Contains(bools) => {
                enc.put_u8(RESP_CONTAINS).put_varint(bools.len() as u64);
                for b in bools {
                    enc.put_u8(u8::from(*b));
                }
            }
            Response::Hashes(hashes) => {
                enc.put_u8(RESP_HASHES);
                put_hashes(&mut enc, hashes);
            }
            Response::Gc(r) => {
                enc.put_u8(RESP_GC)
                    .put_u64(r.live as u64)
                    .put_u64(r.deleted as u64)
                    .put_u64(r.reclaimed_bytes)
                    .put_u64(r.deferred as u64)
                    .put_u64(r.deferred_bytes);
            }
            Response::Stats(s) => {
                enc.put_u8(RESP_STATS)
                    .put_u64(s.object_count as u64)
                    .put_u64(s.total_bytes);
            }
            Response::Cleared(n) => {
                enc.put_u8(RESP_CLEARED).put_u64(*n);
            }
            Response::Ok => {
                enc.put_u8(RESP_OK);
            }
            Response::Meta(opt) => {
                enc.put_u8(RESP_META);
                match opt {
                    Some(bytes) => {
                        enc.put_u8(1).put_bytes(bytes);
                    }
                    None => {
                        enc.put_u8(0);
                    }
                }
            }
            Response::Names(names) => {
                enc.put_u8(RESP_NAMES).put_varint(names.len() as u64);
                for n in names {
                    enc.put_str(n);
                }
            }
            Response::Status {
                version,
                namespaces,
                connections,
            } => {
                enc.put_u8(RESP_STATUS)
                    .put_u32(*version)
                    .put_u64(*namespaces)
                    .put_u64(*connections);
            }
            Response::Err { code, message } => {
                enc.put_u8(RESP_ERR).put_u8(*code).put_str(message);
            }
        }
        enc.into_bytes()
    }

    /// Parses a frame body into a response.
    ///
    /// # Errors
    ///
    /// Fails on unknown opcodes, truncation or trailing bytes.
    pub fn decode(body: &[u8]) -> Result<Response> {
        let mut dec = Decoder::new(body, "response frame");
        let op = dec.get_u8()?;
        let resp = match op {
            RESP_HELLO_OK => Response::HelloOk {
                version: dec.get_u32()?,
            },
            RESP_PONG => Response::Pong,
            RESP_PUT_BATCH => {
                let n = dec.get_varint()? as usize;
                if n > dec.remaining() {
                    return Err(Error::protocol(
                        "decoding put-batch reply",
                        format!("fresh count {n} exceeds frame"),
                    ));
                }
                let mut fresh = Vec::with_capacity(n);
                for _ in 0..n {
                    fresh.push(dec.get_u8()? != 0);
                }
                Response::PutBatch(BatchPutReport {
                    fresh,
                    renames: dec.get_u64()?,
                    fsyncs: dec.get_u64()?,
                })
            }
            RESP_CHUNK => Response::Chunk(dec.get_bytes()?),
            RESP_CONTAINS => {
                let n = dec.get_varint()? as usize;
                if n > dec.remaining() {
                    return Err(Error::protocol(
                        "decoding contains reply",
                        format!("count {n} exceeds frame"),
                    ));
                }
                let mut bools = Vec::with_capacity(n);
                for _ in 0..n {
                    bools.push(dec.get_u8()? != 0);
                }
                Response::Contains(bools)
            }
            RESP_HASHES => Response::Hashes(get_hashes(&mut dec)?),
            RESP_GC => Response::Gc(GcReport {
                live: dec.get_u64()? as usize,
                deleted: dec.get_u64()? as usize,
                reclaimed_bytes: dec.get_u64()?,
                deferred: dec.get_u64()? as usize,
                deferred_bytes: dec.get_u64()?,
            }),
            RESP_STATS => Response::Stats(StoreStats {
                object_count: dec.get_u64()? as usize,
                total_bytes: dec.get_u64()?,
            }),
            RESP_CLEARED => Response::Cleared(dec.get_u64()?),
            RESP_OK => Response::Ok,
            RESP_META => {
                let present = dec.get_u8()? != 0;
                Response::Meta(if present {
                    Some(dec.get_bytes()?)
                } else {
                    None
                })
            }
            RESP_NAMES => {
                let n = dec.get_varint()? as usize;
                if n > dec.remaining() {
                    return Err(Error::protocol(
                        "decoding name list",
                        format!("count {n} exceeds frame"),
                    ));
                }
                let mut names = Vec::with_capacity(n);
                for _ in 0..n {
                    names.push(dec.get_str()?);
                }
                Response::Names(names)
            }
            RESP_STATUS => Response::Status {
                version: dec.get_u32()?,
                namespaces: dec.get_u64()?,
                connections: dec.get_u64()?,
            },
            RESP_ERR => Response::Err {
                code: dec.get_u8()?,
                message: dec.get_str()?,
            },
            other => {
                return Err(Error::protocol(
                    "decoding response",
                    format!("unknown opcode {other:#04x}"),
                ))
            }
        };
        dec.finish()?;
        Ok(resp)
    }

    /// Turns an error response into an [`enum@Error`]; passes everything
    /// else through.
    ///
    /// # Errors
    ///
    /// The reconstructed server-side error for [`Response::Err`].
    pub fn into_result(self, context: &str) -> Result<Response> {
        match self {
            Response::Err { code, message } => {
                Err(ErrCode::from_u8(code).to_error(context, message))
            }
            other => Ok(other),
        }
    }
}

/// Writes one frame (length prefix, body, CRC) to `w`.
///
/// # Errors
///
/// Fails on transport errors or an oversized body.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<()> {
    if body.len() > MAX_FRAME_LEN {
        return Err(Error::protocol(
            "writing frame",
            format!("body of {} B exceeds {} B cap", body.len(), MAX_FRAME_LEN),
        ));
    }
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(body).to_le_bytes());
    w.write_all(&out)
        .map_err(|e| Error::io("writing frame", e))?;
    Ok(())
}

/// Reads one frame body from `r`, verifying length bound and CRC.
///
/// # Errors
///
/// [`Error::Io`] on transport failure (including EOF mid-frame),
/// [`Error::Protocol`] on an oversized length or CRC mismatch.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)
        .map_err(|e| Error::io("reading frame length", e))?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(Error::protocol(
            "reading frame",
            format!("length {len} exceeds {MAX_FRAME_LEN} B cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|e| Error::io("reading frame body", e))?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)
        .map_err(|e| Error::io("reading frame crc", e))?;
    if crc32(&body) != u32::from_le_bytes(crc_bytes) {
        return Err(Error::protocol("reading frame", "crc mismatch"));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Sha256;

    fn round_trip_request(req: Request) {
        let body = req.encode();
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let body = resp.encode();
        assert_eq!(Response::decode(&body).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        let h = Sha256::digest(b"x");
        round_trip_request(Request::Hello {
            version: PROTO_VERSION,
            namespace: "run-1".into(),
        });
        round_trip_request(Request::Ping);
        round_trip_request(Request::PutBatch {
            fsync: true,
            chunks: vec![
                WireChunk {
                    reference: ChunkRef { hash: h, len: 1 },
                    data: vec![7],
                },
                WireChunk {
                    reference: ChunkRef {
                        hash: Sha256::digest(b""),
                        len: 0,
                    },
                    data: vec![],
                },
            ],
        });
        round_trip_request(Request::Get {
            reference: ChunkRef { hash: h, len: 9 },
        });
        round_trip_request(Request::Contains { hashes: vec![h, h] });
        round_trip_request(Request::List);
        round_trip_request(Request::Sweep {
            dry_run: true,
            reachable: vec![h],
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::ClearStaging);
        round_trip_request(Request::MetaPut {
            name: "manifests/a.qmf".into(),
            bytes: vec![1, 2, 3],
        });
        round_trip_request(Request::MetaGet {
            name: "LATEST".into(),
        });
        round_trip_request(Request::MetaList {
            prefix: "manifests/".into(),
        });
        round_trip_request(Request::MetaDelete { name: "x".into() });
        round_trip_request(Request::Status);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Corrupt {
            hash: h,
            offset: 1234,
        });
    }

    #[test]
    fn responses_round_trip() {
        let h = Sha256::digest(b"y");
        round_trip_response(Response::HelloOk {
            version: PROTO_VERSION,
        });
        round_trip_response(Response::Pong);
        round_trip_response(Response::PutBatch(BatchPutReport {
            fresh: vec![true, false],
            renames: 1,
            fsyncs: 0,
        }));
        round_trip_response(Response::Chunk(vec![1, 2, 3]));
        round_trip_response(Response::Contains(vec![true, false, true]));
        round_trip_response(Response::Hashes(vec![h]));
        round_trip_response(Response::Gc(GcReport {
            live: 1,
            deleted: 2,
            reclaimed_bytes: 3,
            deferred: 4,
            deferred_bytes: 5,
        }));
        round_trip_response(Response::Stats(StoreStats {
            object_count: 7,
            total_bytes: 99,
        }));
        round_trip_response(Response::Cleared(3));
        round_trip_response(Response::Ok);
        round_trip_response(Response::Meta(None));
        round_trip_response(Response::Meta(Some(vec![9])));
        round_trip_response(Response::Names(vec!["a".into(), "b".into()]));
        round_trip_response(Response::Status {
            version: 1,
            namespaces: 2,
            connections: 3,
        });
        round_trip_response(Response::Err {
            code: ErrCode::NotFound as u8,
            message: "nope".into(),
        });
    }

    #[test]
    fn borrowed_put_batch_encoding_matches_owned() {
        let blobs: Vec<Vec<u8>> = vec![vec![1; 100], vec![], vec![9; 7]];
        let staged: Vec<crate::store::StagedChunk<'_>> = blobs
            .iter()
            .map(|b| crate::store::StagedChunk {
                reference: ChunkRef {
                    hash: Sha256::digest(b),
                    len: b.len() as u32,
                },
                data: b,
            })
            .collect();
        let owned = Request::PutBatch {
            fsync: true,
            chunks: staged
                .iter()
                .map(|c| WireChunk {
                    reference: c.reference,
                    data: c.data.to_vec(),
                })
                .collect(),
        };
        assert_eq!(encode_put_batch(true, &staged), owned.encode());
    }

    #[test]
    fn frame_io_round_trips_and_detects_damage() {
        let body = Request::Ping.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &body).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), body);

        // Flip a body bit: CRC must catch it.
        let mut damaged = buf.clone();
        damaged[4] ^= 0x40;
        let mut cursor = &damaged[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(Error::Protocol { .. })
        ));

        // Truncate: transport error, not garbage.
        let mut cursor = &buf[..buf.len() - 1];
        assert!(matches!(read_frame(&mut cursor), Err(Error::Io { .. })));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(Error::Protocol { .. })
        ));
    }

    #[test]
    fn namespace_and_meta_name_grammar() {
        assert!(valid_namespace("run-1.a_B"));
        assert!(!valid_namespace(""));
        assert!(!valid_namespace("a/b"));
        assert!(!valid_namespace(".."));
        assert!(!valid_namespace(&"x".repeat(65)));
        assert!(valid_meta_name("LATEST"));
        assert!(valid_meta_name("manifests/ck-0001.qmf"));
        assert!(!valid_meta_name("/abs"));
        assert!(!valid_meta_name("a//b"));
        assert!(!valid_meta_name("a/../b"));
        assert!(!valid_meta_name("a/"));
    }

    #[test]
    fn err_codes_map_back_to_errors() {
        let e = ErrCode::NotFound.to_error("getting chunk", "chunk abc".into());
        assert!(matches!(e, Error::NotFound { .. }));
        assert!(e.is_integrity_failure());
        let e = ErrCode::Corrupt.to_error("getting chunk", "hash mismatch".into());
        assert!(matches!(e, Error::Corrupt { .. }));
        let e = ErrCode::Invalid.to_error("hello", "bad version".into());
        assert!(matches!(e, Error::InvalidConfig(_)));
    }
}
