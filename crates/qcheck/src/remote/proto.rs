//! The `qckptd` wire protocol: length-prefixed, CRC-framed binary frames.
//!
//! ## Frame layout
//!
//! Every message in either direction is one frame:
//!
//! ```text
//! len   u32 le      body length in bytes (not counting len or crc)
//! body  len bytes   opcode u8 | opcode-specific payload
//! crc   u32 le      CRC32 (IEEE 802.3) of body
//! ```
//!
//! The CRC catches torn or bit-damaged frames cheaply; payload *content*
//! integrity is still end-to-end (every chunk read re-verifies length and
//! SHA-256 client-side, exactly as for the local backends). A frame that
//! fails its length bound or CRC is a protocol error and the connection
//! is dropped — there is no resynchronization inside a stream.
//!
//! ## Handshake (v2/v3)
//!
//! The first client frame must be [`Request::Hello`] carrying the
//! protocol version and the client's *namespace* (the multi-tenant unit:
//! each namespace is an independent object store + metadata space on the
//! daemon). Since v2 the Hello additionally carries an optional **auth
//! token**, a flags byte (request a writer lease / open a replication
//! stream), a previously granted **lease token** to re-present after a
//! reconnect, and the highest primary **generation** the client has
//! observed — the fencing handle: a daemon whose generation is lower
//! refuses the handshake with a typed stale-generation error, which is
//! how a client that has already talked to a promoted secondary detects
//! a demoted primary. The server replies [`Response::HelloOk`] with the
//! **negotiated** version, its role, generation and any granted lease,
//! or an error frame. Since v3 the server accepts any client version in
//! `PROTO_VERSION_MIN..=PROTO_VERSION` and echoes the client's version
//! back (the v2 and v3 Hello bodies are identical; v3 only *adds*
//! opcodes) — a v2 client keeps working unchanged, while anything older
//! is refused with a clear error naming both versions (the v1 Hello
//! body is a prefix of the v2 body, so it still parses).
//!
//! ## Streaming (v3): `GET_STREAM` / `PUT_STREAM`
//!
//! `Get` and `PutBatch` carry a whole chunk in one frame, which caps a
//! transferable chunk at [`MAX_FRAME_LEN`] and forces both ends to
//! buffer the full payload. v3 adds a streaming path that moves a chunk
//! of any size in CRC-framed segments of at most
//! [`MAX_STREAM_SEGMENT`] bytes (the client sends
//! [`STREAM_SEGMENT_BYTES`]), with SHA-256 folded in incrementally on
//! both ends, so peak memory is O(segment):
//!
//! * **GET_STREAM** — one [`Request::GetStream`] is answered by
//!   [`Response::StreamBegin`], then N × [`Response::StreamData`], then
//!   [`Response::StreamEnd`]. The server hashes as it reads; on a
//!   corrupt object it sends [`Response::Err`] *instead of* the end
//!   marker and the client discards everything. The client re-verifies
//!   length and SHA incrementally as segments arrive.
//! * **PUT_STREAM** — strict lockstep: [`Request::PutStreamBegin`] is
//!   answered by [`Response::Ok`] (proceed) or [`Response::StreamEnd`]
//!   with `fresh: false` (dedup hit — the client skips the body);
//!   each [`Request::PutStreamData`] is acknowledged with
//!   [`Response::Ok`] after the segment reaches the staged object;
//!   [`Request::PutStreamEnd`] commits and is answered by
//!   [`Response::StreamEnd`]. The server verifies the accumulated
//!   length and SHA against the reference *before* the staged object is
//!   published; a mismatch answers the end frame with a typed corrupt
//!   error and nothing is committed.
//!
//! Replication rides the same machinery: [`Request::ReplChunkStream`]
//! is `GET_STREAM` with an explicit namespace, used by a tailing
//! secondary for chunks too large to batch into a `ReplChunks` reply.
//!
//! ## Replication (`REPL_*`)
//!
//! A secondary daemon tails its primary's per-namespace **oplog** (see
//! `qcheck::remote::repl`): `ReplStatus` discovers namespaces and their
//! oplog lengths, `ReplFetch` subscribes from an offset, `ReplChunks`
//! pulls chunk content the entries reference (content-addressed, so
//! re-sending is idempotent), and `ReplAck` reports the applied offset
//! back for lag accounting. `Promote` turns a secondary into a primary
//! under a bumped generation.
//!
//! ## Idempotency rules
//!
//! Every operation is safe to replay after a reconnect, which is what
//! lets the client retry transparently on transport failure:
//!
//! * `PutBatch` is content-addressed — re-sending a batch that (partly)
//!   committed re-reports the committed chunks as dedup hits and writes
//!   only what is missing;
//! * `MetaPut` overwrites atomically with the same bytes;
//! * `Get` / `Contains` / `List` / `Stats` are reads;
//! * `Sweep` / `ClearStaging` converge (a second run finds nothing).
//!
//! Server-reported errors ([`Response::Err`]) are **not** retried: they
//! mean the request was received and judged, not lost.

use std::io::{Read, Write};

use crate::chunk::ChunkRef;
use crate::codec::{Decoder, Encoder};
use crate::error::{Error, Result};
use crate::hash::{crc32, ContentHash};
use crate::store::{BatchPutReport, GcReport, StoreStats};

/// Protocol version spoken by this build.
pub const PROTO_VERSION: u32 = 3;

/// Oldest client version the server still accepts. The v2 and v3 Hello
/// bodies are identical (v3 only adds opcodes), so a v2 client
/// negotiates v2 and simply never sends a streaming op.
pub const PROTO_VERSION_MIN: u32 = 2;

/// Segment size the client uses on the v3 streaming path. Small enough
/// that both ends hold O(MiB), large enough that framing overhead
/// (12 B + one CRC pass per segment) is noise.
pub const STREAM_SEGMENT_BYTES: usize = 2 << 20;

/// Hard cap on a single streamed segment, enforced by the receiver on
/// both ends: bounds the per-segment allocation a peer can trigger
/// independently of [`MAX_FRAME_LEN`].
pub const MAX_STREAM_SEGMENT: usize = 4 << 20;

/// [`Request::Hello`] flag: the connection wants the namespace's writer
/// lease (granted in [`Response::HelloOk`], or the handshake fails with
/// a typed lease-held error).
pub const HELLO_FLAG_WANT_LEASE: u8 = 1;
/// [`Request::Hello`] flag: the connection is a replication stream (a
/// secondary tailing this daemon); `REPL_*` ops are only honored here.
pub const HELLO_FLAG_REPL: u8 = 1 << 1;

/// Daemon role: accepts writes, appends to the oplog.
pub const ROLE_PRIMARY: u8 = 0;
/// Daemon role: tails a primary, refuses client writes.
pub const ROLE_SECONDARY: u8 = 1;

/// Human name for a wire role byte.
pub fn role_name(role: u8) -> &'static str {
    match role {
        ROLE_PRIMARY => "primary",
        ROLE_SECONDARY => "secondary",
        _ => "unknown",
    }
}

/// Upper bound on a single frame body. Bounds the allocation a garbage
/// length prefix can trigger, and therefore the largest single
/// `PutBatch` / `Sweep` payload; the client splits bigger batches into
/// pipelined sub-frames well below this.
pub const MAX_FRAME_LEN: usize = 256 << 20;

/// Namespace grammar: 1–64 chars of `[A-Za-z0-9._-]`. The namespace
/// names a directory component on the server, so the grammar is the
/// security boundary — no separators, no traversal.
pub fn valid_namespace(ns: &str) -> bool {
    !ns.is_empty()
        && ns.len() <= 64
        && ns
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
        && ns != "."
        && ns != ".."
}

/// Metadata-name grammar: relative slash-separated path whose components
/// each satisfy the namespace grammar (e.g. `manifests/ck-….qmf`,
/// `LATEST`). Same reasoning: these become file names under the
/// namespace's `meta/` directory.
pub fn valid_meta_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 256
        && !name.starts_with('/')
        && !name.ends_with('/')
        && name.split('/').all(valid_namespace)
}

/// One chunk of a `PutBatch` request (owned mirror of
/// [`crate::store::StagedChunk`], which borrows its payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireChunk {
    /// Content address + exact length.
    pub reference: ChunkRef,
    /// Payload bytes.
    pub data: Vec<u8>,
}

/// One committed mutation in a namespace's append-only oplog — the unit
/// of replication. Chunk *content* is deliberately absent: it is
/// content-addressed, so a secondary pulls whatever a replicated
/// manifest references and is missing via [`Request::ReplChunks`].
#[derive(Clone, Debug, PartialEq)]
pub enum OplogOp {
    /// A metadata publish (manifest bytes, `LATEST` advance).
    MetaPut {
        /// Metadata name.
        name: String,
        /// Contents.
        bytes: Vec<u8>,
    },
    /// A retention delete.
    MetaDelete {
        /// Metadata name.
        name: String,
    },
    /// A (non-dry-run) mark-and-sweep against a reachable set.
    Sweep {
        /// Reachable hashes at sweep time.
        reachable: Vec<ContentHash>,
    },
}

/// An oplog entry as shipped over the wire (and stored on disk): the
/// op plus its zero-based offset in the log.
#[derive(Clone, Debug, PartialEq)]
pub struct OplogRecord {
    /// Position in the namespace's oplog.
    pub offset: u64,
    /// The committed mutation.
    pub op: OplogOp,
}

impl OplogOp {
    const TAG_META_PUT: u8 = 1;
    const TAG_META_DELETE: u8 = 2;
    const TAG_SWEEP: u8 = 3;

    /// Appends the op's encoding to `enc` (shared by the wire frames and
    /// the on-disk oplog records, so they stay byte-identical).
    pub fn encode_into(&self, enc: &mut Encoder) {
        match self {
            OplogOp::MetaPut { name, bytes } => {
                enc.put_u8(Self::TAG_META_PUT)
                    .put_str(name)
                    .put_bytes(bytes);
            }
            OplogOp::MetaDelete { name } => {
                enc.put_u8(Self::TAG_META_DELETE).put_str(name);
            }
            OplogOp::Sweep { reachable } => {
                enc.put_u8(Self::TAG_SWEEP);
                put_hashes(enc, reachable);
            }
        }
    }

    /// Decodes one op from `dec`.
    ///
    /// # Errors
    ///
    /// Fails on unknown tags or truncation.
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<OplogOp> {
        Ok(match dec.get_u8()? {
            Self::TAG_META_PUT => OplogOp::MetaPut {
                name: dec.get_str()?,
                bytes: dec.get_bytes()?,
            },
            Self::TAG_META_DELETE => OplogOp::MetaDelete {
                name: dec.get_str()?,
            },
            Self::TAG_SWEEP => OplogOp::Sweep {
                reachable: get_hashes(dec)?,
            },
            other => {
                return Err(Error::protocol(
                    "decoding oplog op",
                    format!("unknown tag {other}"),
                ))
            }
        })
    }
}

/// A writer lease granted in [`Response::HelloOk`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaseGrant {
    /// Opaque token; re-present it in the next Hello to keep the lease
    /// across reconnects.
    pub token: u64,
    /// Time-to-live; the lease renews on every request from its holder.
    pub ttl_ms: u64,
}

/// A client request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Versioned handshake; must be the first frame on a connection.
    /// The v1 body carried only `version` and `namespace`; v2 appends
    /// the auth/lease/fencing fields ([`Request::hello`] builds the
    /// plain v2 form).
    Hello {
        /// Client protocol version.
        version: u32,
        /// Namespace the connection operates in.
        namespace: String,
        /// Auth token; empty = none presented.
        auth: String,
        /// Flag bits ([`HELLO_FLAG_WANT_LEASE`], [`HELLO_FLAG_REPL`]).
        flags: u8,
        /// A previously granted lease token to re-present (0 = none).
        lease_token: u64,
        /// Highest primary generation this client has observed; a daemon
        /// whose generation is lower must refuse (it is demoted).
        min_generation: u64,
    },
    /// Liveness check; returns [`Response::Pong`].
    Ping,
    /// Store a batch of chunks (the whole batch commits together when
    /// the server's layout allows it, mirroring local `put_batch`).
    PutBatch {
        /// fsync staged data before publishing.
        fsync: bool,
        /// The chunks, in order.
        chunks: Vec<WireChunk>,
    },
    /// Fetch one chunk.
    Get {
        /// Its reference (the server verifies before replying; the
        /// client verifies again on receipt).
        reference: ChunkRef,
    },
    /// Existence check for a set of hashes (serves both `contains` and
    /// the batched `contains_all` in one round trip).
    Contains {
        /// Hashes to probe.
        hashes: Vec<ContentHash>,
    },
    /// Enumerate all object hashes, ascending.
    List,
    /// Mark-and-sweep GC against a reachable set. `dry_run` computes the
    /// report without deleting anything (the `qckpt stats` preview).
    Sweep {
        /// Plan only, delete nothing.
        dry_run: bool,
        /// Reachable hashes.
        reachable: Vec<ContentHash>,
    },
    /// Aggregate object statistics.
    Stats,
    /// Remove orphaned server-side staging files for this namespace.
    ClearStaging,
    /// Atomically publish a small named metadata blob (manifests,
    /// `LATEST`) so a client in a fresh directory can reconstruct the
    /// repository.
    MetaPut {
        /// Name (see [`valid_meta_name`]).
        name: String,
        /// Contents.
        bytes: Vec<u8>,
    },
    /// Fetch a named metadata blob; absent is not an error.
    MetaGet {
        /// Name.
        name: String,
    },
    /// List metadata names under a prefix, ascending.
    MetaList {
        /// Name prefix (e.g. `manifests/`).
        prefix: String,
    },
    /// Delete a named metadata blob (retention); absent is not an error.
    MetaDelete {
        /// Name.
        name: String,
    },
    /// Daemon-level status (version, namespaces, connections served).
    Status,
    /// Ask the daemon to stop accepting connections and exit its accept
    /// loop once in-flight connections finish.
    Shutdown,
    /// Flip one byte of a stored object (failure-injection support for
    /// the backend-equivalence suites; the server refuses it unless
    /// built with the `testing` feature).
    Corrupt {
        /// Victim object.
        hash: ContentHash,
        /// Offset (mod object length).
        offset: u64,
    },
    /// Replication: the daemon's generation, role and per-namespace
    /// oplog lengths (what a tailer polls to find new work; only
    /// honored on a [`HELLO_FLAG_REPL`] connection).
    ReplStatus,
    /// Replication: fetch oplog entries `[from, from+max)` for one
    /// namespace.
    ReplFetch {
        /// Namespace whose oplog to read.
        namespace: String,
        /// First offset wanted.
        from: u64,
        /// Upper bound on entries returned.
        max: u32,
    },
    /// Replication: pull chunk content by reference (the secondary asks
    /// only for what it is missing).
    ReplChunks {
        /// Namespace to read from.
        namespace: String,
        /// The wanted chunks.
        refs: Vec<ChunkRef>,
    },
    /// Replication: the secondary has durably applied the namespace's
    /// oplog up to (exclusive) `offset` — primary-side lag accounting.
    ReplAck {
        /// Namespace acknowledged.
        namespace: String,
        /// Applied length.
        offset: u64,
    },
    /// Promote this (secondary) daemon to primary under a bumped
    /// generation. Loopback-only unless an auth token is configured.
    Promote,
    /// Release the connection's writer lease (clean writer exit; an
    /// expired lease releases itself).
    LeaseRelease,
    /// v3: fetch one chunk as a stream ([`Response::StreamBegin`], then
    /// [`Response::StreamData`] segments, then [`Response::StreamEnd`])
    /// — the path for payloads too large to fit one `Get` frame.
    GetStream {
        /// Its reference; both ends verify incrementally.
        reference: ChunkRef,
    },
    /// v3: open a streamed upload of one chunk. Answered by
    /// [`Response::Ok`] (send the body) or [`Response::StreamEnd`] with
    /// `fresh: false` (dedup hit — skip the body).
    PutStreamBegin {
        /// Content address + exact length of the incoming stream.
        reference: ChunkRef,
        /// fsync the staged object before publishing.
        fsync: bool,
    },
    /// v3: one payload segment of an open streamed upload (at most
    /// [`MAX_STREAM_SEGMENT`] bytes); acknowledged with
    /// [`Response::Ok`] once staged.
    PutStreamData(Vec<u8>),
    /// v3: end of a streamed upload; the server verifies the
    /// accumulated length + SHA and commits, answering
    /// [`Response::StreamEnd`].
    PutStreamEnd,
    /// v3 replication: [`Request::GetStream`] with an explicit
    /// namespace — a tailing secondary pulling a chunk too large to
    /// batch into a `ReplChunks` reply. Only honored on a
    /// [`HELLO_FLAG_REPL`] connection.
    ReplChunkStream {
        /// Namespace to read from.
        namespace: String,
        /// The wanted chunk.
        reference: ChunkRef,
    },
    /// v3: fetch the daemon's metrics registry as one text-exposition
    /// frame ([`Response::Metrics`]). Read-only — served without a
    /// writer lease, like [`Request::Status`].
    Metrics,
}

/// A server response frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// Server protocol version.
        version: u32,
        /// Server role ([`ROLE_PRIMARY`] / [`ROLE_SECONDARY`]).
        role: u8,
        /// Server generation (fencing epoch).
        generation: u64,
        /// Writer lease granted to this connection, when requested.
        lease: Option<LeaseGrant>,
    },
    /// Liveness reply.
    Pong,
    /// `PutBatch` outcome.
    PutBatch(BatchPutReport),
    /// `Get` payload.
    Chunk(Vec<u8>),
    /// `Contains` answers, in request order.
    Contains(Vec<bool>),
    /// `List` result.
    Hashes(Vec<ContentHash>),
    /// `Sweep` report.
    Gc(GcReport),
    /// `Stats` result.
    Stats(StoreStats),
    /// `ClearStaging` count.
    Cleared(u64),
    /// Generic acknowledgement (`MetaPut`, `MetaDelete`, `Shutdown`,
    /// `Corrupt`).
    Ok,
    /// `MetaGet` result; `None` when the name does not exist.
    Meta(Option<Vec<u8>>),
    /// `MetaList` result.
    Names(Vec<String>),
    /// Daemon status.
    Status {
        /// Server protocol version.
        version: u32,
        /// Namespaces materialized on disk.
        namespaces: u64,
        /// Connections accepted since start.
        connections: u64,
        /// Server role ([`ROLE_PRIMARY`] / [`ROLE_SECONDARY`]).
        role: u8,
        /// Server generation (fencing epoch).
        generation: u64,
        /// Total oplog entries across namespaces (the daemon's offset).
        oplog_entries: u64,
        /// Replication lag in entries: on a secondary, how far it trails
        /// its primary; on a primary, how far its slowest acked tailer
        /// trails. 0 when fully caught up (or nothing tails).
        repl_lag: u64,
    },
    /// `ReplStatus` reply.
    ReplStatus {
        /// Daemon generation.
        generation: u64,
        /// Daemon role.
        role: u8,
        /// `(namespace, oplog length)` pairs, ascending by name.
        namespaces: Vec<(String, u64)>,
    },
    /// `ReplFetch` reply: the requested slice of the oplog.
    ReplEntries(Vec<OplogRecord>),
    /// `ReplChunks` reply, aligned with the request's `refs`; `None`
    /// where the primary no longer holds the chunk (swept while the
    /// secondary was behind — benign, the matching delete follows in
    /// the log).
    Chunks(Vec<Option<WireChunk>>),
    /// `Promote` reply: the new (bumped, persisted) generation.
    Promoted {
        /// Generation the daemon now serves under.
        generation: u64,
    },
    /// v3: a stream is about to follow; carries the total payload
    /// length (which the receiver checks against the reference).
    StreamBegin {
        /// Total payload bytes the stream will carry.
        len: u64,
    },
    /// v3: one payload segment of an open stream (at most
    /// [`MAX_STREAM_SEGMENT`] bytes).
    StreamData(Vec<u8>),
    /// v3: a stream completed and verified. For `PUT_STREAM`, `fresh`
    /// mirrors [`BatchPutReport::fresh`] (`false` = dedup hit); for
    /// `GET_STREAM` it is always `true`.
    StreamEnd {
        /// Whether a new object was physically written.
        fresh: bool,
    },
    /// `Metrics` payload: the daemon's qobs registry rendered as a
    /// stable-ordered Prometheus-style text exposition.
    Metrics(String),
    /// The request was received and failed; never retried by the client.
    Err {
        /// Coarse error class (see [`ErrCode`]).
        code: u8,
        /// Human-readable detail.
        message: String,
    },
}

/// Error classes carried by [`Response::Err`], mapped back onto
/// [`enum@Error`] client-side so remote failures are indistinguishable
/// from local ones where it matters (recovery treats `NotFound` /
/// `Corrupt` as "skip and fall back" in both worlds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrCode {
    /// Object or name absent.
    NotFound = 1,
    /// Stored data failed verification server-side.
    Corrupt = 2,
    /// Server-side I/O failure.
    Io = 3,
    /// Malformed or refused request.
    Invalid = 4,
    /// Anything else.
    Other = 5,
    /// Missing or wrong auth token.
    Unauthorized = 6,
    /// Generation fencing: the refusing side proved its peer (or
    /// itself) demoted.
    Stale = 7,
    /// The daemon is a secondary and refuses client writes.
    NotPrimary = 8,
    /// Another writer holds the namespace's lease.
    LeaseHeld = 9,
}

impl ErrCode {
    fn from_u8(v: u8) -> ErrCode {
        match v {
            1 => ErrCode::NotFound,
            2 => ErrCode::Corrupt,
            3 => ErrCode::Io,
            4 => ErrCode::Invalid,
            6 => ErrCode::Unauthorized,
            7 => ErrCode::Stale,
            8 => ErrCode::NotPrimary,
            9 => ErrCode::LeaseHeld,
            _ => ErrCode::Other,
        }
    }

    /// Classifies a server-side [`enum@Error`] for the wire.
    pub fn classify(e: &Error) -> (ErrCode, String) {
        let code = match e {
            Error::NotFound { .. } => ErrCode::NotFound,
            Error::Corrupt { .. } | Error::Decode { .. } => ErrCode::Corrupt,
            Error::Io { .. } => ErrCode::Io,
            Error::InvalidConfig(_) | Error::UnsupportedVersion { .. } => ErrCode::Invalid,
            Error::Unauthorized(_) => ErrCode::Unauthorized,
            Error::StaleGeneration(_) => ErrCode::Stale,
            Error::NotPrimary(_) => ErrCode::NotPrimary,
            Error::LeaseHeld(_) => ErrCode::LeaseHeld,
            _ => ErrCode::Other,
        };
        (code, e.to_string())
    }

    /// Reconstructs an [`enum@Error`] client-side.
    pub fn to_error(self, context: &str, message: String) -> Error {
        match self {
            ErrCode::NotFound => Error::NotFound { what: message },
            ErrCode::Corrupt => Error::corrupt(context.to_string(), message),
            ErrCode::Io => Error::io(
                format!("{context} (server-side)"),
                std::io::Error::other(message),
            ),
            ErrCode::Invalid => Error::InvalidConfig(message),
            ErrCode::Other => Error::protocol(context.to_string(), message),
            ErrCode::Unauthorized => Error::Unauthorized(message),
            ErrCode::Stale => Error::StaleGeneration(message),
            ErrCode::NotPrimary => Error::NotPrimary(message),
            ErrCode::LeaseHeld => Error::LeaseHeld(message),
        }
    }
}

// Opcode bytes. Requests < 0x80, responses ≥ 0x80.
const OP_HELLO: u8 = 1;
const OP_PING: u8 = 2;
const OP_PUT_BATCH: u8 = 3;
const OP_GET: u8 = 4;
const OP_CONTAINS: u8 = 5;
const OP_LIST: u8 = 6;
const OP_SWEEP: u8 = 7;
const OP_STATS: u8 = 8;
const OP_CLEAR_STAGING: u8 = 9;
const OP_META_PUT: u8 = 10;
const OP_META_GET: u8 = 11;
const OP_META_LIST: u8 = 12;
const OP_META_DELETE: u8 = 13;
const OP_STATUS: u8 = 14;
const OP_SHUTDOWN: u8 = 15;
const OP_CORRUPT: u8 = 16;
const OP_REPL_STATUS: u8 = 17;
const OP_REPL_FETCH: u8 = 18;
const OP_REPL_CHUNKS: u8 = 19;
const OP_REPL_ACK: u8 = 20;
const OP_PROMOTE: u8 = 21;
const OP_LEASE_RELEASE: u8 = 22;
// v3 streaming ops.
const OP_GET_STREAM: u8 = 23;
const OP_PUT_STREAM_BEGIN: u8 = 24;
const OP_PUT_STREAM_DATA: u8 = 25;
const OP_PUT_STREAM_END: u8 = 26;
const OP_REPL_CHUNK_STREAM: u8 = 27;
const OP_METRICS: u8 = 28;

const RESP_HELLO_OK: u8 = 0x80;
const RESP_PONG: u8 = 0x81;
const RESP_PUT_BATCH: u8 = 0x82;
const RESP_CHUNK: u8 = 0x83;
const RESP_CONTAINS: u8 = 0x84;
const RESP_HASHES: u8 = 0x85;
const RESP_GC: u8 = 0x86;
const RESP_STATS: u8 = 0x87;
const RESP_CLEARED: u8 = 0x88;
const RESP_OK: u8 = 0x89;
const RESP_META: u8 = 0x8A;
const RESP_NAMES: u8 = 0x8B;
const RESP_STATUS: u8 = 0x8C;
const RESP_REPL_STATUS: u8 = 0x8D;
const RESP_REPL_ENTRIES: u8 = 0x8E;
const RESP_CHUNKS: u8 = 0x8F;
const RESP_PROMOTED: u8 = 0x90;
// v3 streaming responses.
const RESP_STREAM_BEGIN: u8 = 0x91;
const RESP_STREAM_DATA: u8 = 0x92;
const RESP_STREAM_END: u8 = 0x93;
const RESP_METRICS: u8 = 0x94;
const RESP_ERR: u8 = 0xFF;

fn put_hashes(enc: &mut Encoder, hashes: &[ContentHash]) {
    enc.put_varint(hashes.len() as u64);
    for h in hashes {
        enc.put_raw(&h.0);
    }
}

fn get_hashes(dec: &mut Decoder<'_>) -> Result<Vec<ContentHash>> {
    let n = dec.get_varint()? as usize;
    if n.checked_mul(32)
        .map(|b| b > dec.remaining())
        .unwrap_or(true)
    {
        return Err(Error::protocol(
            "decoding hash list",
            format!("count {n} exceeds frame"),
        ));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let raw = dec.get_raw(32)?;
        let mut h = [0u8; 32];
        h.copy_from_slice(raw);
        out.push(ContentHash(h));
    }
    Ok(out)
}

/// Encodes a `PutBatch` frame body directly from borrowed staged chunks
/// — byte-identical to encoding [`Request::PutBatch`] over owned
/// [`WireChunk`] copies, without materializing them. The client's save
/// path uses this so a checkpoint upload peaks at one extra frame body,
/// not a second copy of the whole snapshot.
pub fn encode_put_batch(fsync: bool, chunks: &[crate::store::StagedChunk<'_>]) -> Vec<u8> {
    let payload: usize = chunks.iter().map(|c| c.data.len()).sum();
    let mut enc = Encoder::with_capacity(payload + chunks.len() * 40 + 16);
    enc.put_u8(OP_PUT_BATCH)
        .put_u8(u8::from(fsync))
        .put_varint(chunks.len() as u64);
    for c in chunks {
        enc.put_raw(&c.reference.hash.0)
            .put_u32(c.reference.len)
            .put_raw(c.data);
    }
    enc.into_bytes()
}

impl Request {
    /// The plain v2 handshake for `namespace`: no auth, no lease, no
    /// fencing floor.
    pub fn hello(namespace: impl Into<String>) -> Request {
        Request::Hello {
            version: PROTO_VERSION,
            namespace: namespace.into(),
            auth: String::new(),
            flags: 0,
            lease_token: 0,
            min_generation: 0,
        }
    }

    /// Serializes the request into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Request::Hello {
                version,
                namespace,
                auth,
                flags,
                lease_token,
                min_generation,
            } => {
                enc.put_u8(OP_HELLO).put_u32(*version).put_str(namespace);
                // The v1 body ends here; v2+ appends its fields, keeping
                // v1 a strict prefix so either side can parse both.
                if *version >= 2 {
                    enc.put_str(auth)
                        .put_u8(*flags)
                        .put_u64(*lease_token)
                        .put_u64(*min_generation);
                }
            }
            Request::Ping => {
                enc.put_u8(OP_PING);
            }
            Request::PutBatch { fsync, chunks } => {
                enc.put_u8(OP_PUT_BATCH)
                    .put_u8(u8::from(*fsync))
                    .put_varint(chunks.len() as u64);
                for c in chunks {
                    enc.put_raw(&c.reference.hash.0)
                        .put_u32(c.reference.len)
                        .put_raw(&c.data);
                }
            }
            Request::Get { reference } => {
                enc.put_u8(OP_GET)
                    .put_raw(&reference.hash.0)
                    .put_u32(reference.len);
            }
            Request::Contains { hashes } => {
                enc.put_u8(OP_CONTAINS);
                put_hashes(&mut enc, hashes);
            }
            Request::List => {
                enc.put_u8(OP_LIST);
            }
            Request::Sweep { dry_run, reachable } => {
                enc.put_u8(OP_SWEEP).put_u8(u8::from(*dry_run));
                put_hashes(&mut enc, reachable);
            }
            Request::Stats => {
                enc.put_u8(OP_STATS);
            }
            Request::ClearStaging => {
                enc.put_u8(OP_CLEAR_STAGING);
            }
            Request::MetaPut { name, bytes } => {
                enc.put_u8(OP_META_PUT).put_str(name).put_bytes(bytes);
            }
            Request::MetaGet { name } => {
                enc.put_u8(OP_META_GET).put_str(name);
            }
            Request::MetaList { prefix } => {
                enc.put_u8(OP_META_LIST).put_str(prefix);
            }
            Request::MetaDelete { name } => {
                enc.put_u8(OP_META_DELETE).put_str(name);
            }
            Request::Status => {
                enc.put_u8(OP_STATUS);
            }
            Request::Shutdown => {
                enc.put_u8(OP_SHUTDOWN);
            }
            Request::Corrupt { hash, offset } => {
                enc.put_u8(OP_CORRUPT).put_raw(&hash.0).put_varint(*offset);
            }
            Request::ReplStatus => {
                enc.put_u8(OP_REPL_STATUS);
            }
            Request::ReplFetch {
                namespace,
                from,
                max,
            } => {
                enc.put_u8(OP_REPL_FETCH)
                    .put_str(namespace)
                    .put_u64(*from)
                    .put_u32(*max);
            }
            Request::ReplChunks { namespace, refs } => {
                enc.put_u8(OP_REPL_CHUNKS)
                    .put_str(namespace)
                    .put_varint(refs.len() as u64);
                for r in refs {
                    enc.put_raw(&r.hash.0).put_u32(r.len);
                }
            }
            Request::ReplAck { namespace, offset } => {
                enc.put_u8(OP_REPL_ACK).put_str(namespace).put_u64(*offset);
            }
            Request::Promote => {
                enc.put_u8(OP_PROMOTE);
            }
            Request::LeaseRelease => {
                enc.put_u8(OP_LEASE_RELEASE);
            }
            Request::GetStream { reference } => {
                enc.put_u8(OP_GET_STREAM)
                    .put_raw(&reference.hash.0)
                    .put_u32(reference.len);
            }
            Request::PutStreamBegin { reference, fsync } => {
                enc.put_u8(OP_PUT_STREAM_BEGIN)
                    .put_raw(&reference.hash.0)
                    .put_u32(reference.len)
                    .put_u8(u8::from(*fsync));
            }
            Request::PutStreamData(data) => {
                enc.put_u8(OP_PUT_STREAM_DATA).put_bytes(data);
            }
            Request::PutStreamEnd => {
                enc.put_u8(OP_PUT_STREAM_END);
            }
            Request::ReplChunkStream {
                namespace,
                reference,
            } => {
                enc.put_u8(OP_REPL_CHUNK_STREAM)
                    .put_str(namespace)
                    .put_raw(&reference.hash.0)
                    .put_u32(reference.len);
            }
            Request::Metrics => {
                enc.put_u8(OP_METRICS);
            }
        }
        enc.into_bytes()
    }

    /// Parses a frame body into a request.
    ///
    /// # Errors
    ///
    /// Fails on unknown opcodes, truncation or trailing bytes.
    pub fn decode(body: &[u8]) -> Result<Request> {
        let mut dec = Decoder::new(body, "request frame");
        let op = dec.get_u8()?;
        let req = match op {
            OP_HELLO => {
                let version = dec.get_u32()?;
                let namespace = dec.get_str()?;
                // A v1 Hello body stops here; it must still decode so
                // the server can answer with a *clear* version error
                // instead of a framing failure.
                let (auth, flags, lease_token, min_generation) = if version >= 2 {
                    (
                        dec.get_str()?,
                        dec.get_u8()?,
                        dec.get_u64()?,
                        dec.get_u64()?,
                    )
                } else {
                    (String::new(), 0, 0, 0)
                };
                Request::Hello {
                    version,
                    namespace,
                    auth,
                    flags,
                    lease_token,
                    min_generation,
                }
            }
            OP_PING => Request::Ping,
            OP_PUT_BATCH => {
                let fsync = dec.get_u8()? != 0;
                let n = dec.get_varint()? as usize;
                let mut chunks = Vec::new();
                for _ in 0..n {
                    let raw = dec.get_raw(32)?;
                    let mut h = [0u8; 32];
                    h.copy_from_slice(raw);
                    let len = dec.get_u32()?;
                    let data = dec.get_raw(len as usize)?.to_vec();
                    chunks.push(WireChunk {
                        reference: ChunkRef {
                            hash: ContentHash(h),
                            len,
                        },
                        data,
                    });
                }
                Request::PutBatch { fsync, chunks }
            }
            OP_GET => {
                let raw = dec.get_raw(32)?;
                let mut h = [0u8; 32];
                h.copy_from_slice(raw);
                Request::Get {
                    reference: ChunkRef {
                        hash: ContentHash(h),
                        len: dec.get_u32()?,
                    },
                }
            }
            OP_CONTAINS => Request::Contains {
                hashes: get_hashes(&mut dec)?,
            },
            OP_LIST => Request::List,
            OP_SWEEP => Request::Sweep {
                dry_run: dec.get_u8()? != 0,
                reachable: get_hashes(&mut dec)?,
            },
            OP_STATS => Request::Stats,
            OP_CLEAR_STAGING => Request::ClearStaging,
            OP_META_PUT => Request::MetaPut {
                name: dec.get_str()?,
                bytes: dec.get_bytes()?,
            },
            OP_META_GET => Request::MetaGet {
                name: dec.get_str()?,
            },
            OP_META_LIST => Request::MetaList {
                prefix: dec.get_str()?,
            },
            OP_META_DELETE => Request::MetaDelete {
                name: dec.get_str()?,
            },
            OP_STATUS => Request::Status,
            OP_SHUTDOWN => Request::Shutdown,
            OP_CORRUPT => {
                let raw = dec.get_raw(32)?;
                let mut h = [0u8; 32];
                h.copy_from_slice(raw);
                Request::Corrupt {
                    hash: ContentHash(h),
                    offset: dec.get_varint()?,
                }
            }
            OP_REPL_STATUS => Request::ReplStatus,
            OP_REPL_FETCH => Request::ReplFetch {
                namespace: dec.get_str()?,
                from: dec.get_u64()?,
                max: dec.get_u32()?,
            },
            OP_REPL_CHUNKS => {
                let namespace = dec.get_str()?;
                let n = dec.get_varint()? as usize;
                if n.checked_mul(36)
                    .map(|b| b > dec.remaining())
                    .unwrap_or(true)
                {
                    return Err(Error::protocol(
                        "decoding chunk-ref list",
                        format!("count {n} exceeds frame"),
                    ));
                }
                let mut refs = Vec::with_capacity(n);
                for _ in 0..n {
                    let raw = dec.get_raw(32)?;
                    let mut h = [0u8; 32];
                    h.copy_from_slice(raw);
                    refs.push(ChunkRef {
                        hash: ContentHash(h),
                        len: dec.get_u32()?,
                    });
                }
                Request::ReplChunks { namespace, refs }
            }
            OP_REPL_ACK => Request::ReplAck {
                namespace: dec.get_str()?,
                offset: dec.get_u64()?,
            },
            OP_PROMOTE => Request::Promote,
            OP_LEASE_RELEASE => Request::LeaseRelease,
            OP_GET_STREAM => {
                let raw = dec.get_raw(32)?;
                let mut h = [0u8; 32];
                h.copy_from_slice(raw);
                Request::GetStream {
                    reference: ChunkRef {
                        hash: ContentHash(h),
                        len: dec.get_u32()?,
                    },
                }
            }
            OP_PUT_STREAM_BEGIN => {
                let raw = dec.get_raw(32)?;
                let mut h = [0u8; 32];
                h.copy_from_slice(raw);
                Request::PutStreamBegin {
                    reference: ChunkRef {
                        hash: ContentHash(h),
                        len: dec.get_u32()?,
                    },
                    fsync: dec.get_u8()? != 0,
                }
            }
            OP_PUT_STREAM_DATA => {
                let data = dec.get_bytes()?;
                if data.len() > MAX_STREAM_SEGMENT {
                    return Err(Error::protocol(
                        "decoding stream segment",
                        format!(
                            "segment of {} B exceeds {MAX_STREAM_SEGMENT} B cap",
                            data.len()
                        ),
                    ));
                }
                Request::PutStreamData(data)
            }
            OP_PUT_STREAM_END => Request::PutStreamEnd,
            OP_METRICS => Request::Metrics,
            OP_REPL_CHUNK_STREAM => {
                let namespace = dec.get_str()?;
                let raw = dec.get_raw(32)?;
                let mut h = [0u8; 32];
                h.copy_from_slice(raw);
                Request::ReplChunkStream {
                    namespace,
                    reference: ChunkRef {
                        hash: ContentHash(h),
                        len: dec.get_u32()?,
                    },
                }
            }
            other => {
                return Err(Error::protocol(
                    "decoding request",
                    format!("unknown opcode {other:#04x}"),
                ))
            }
        };
        dec.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes the response into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Response::HelloOk {
                version,
                role,
                generation,
                lease,
            } => {
                enc.put_u8(RESP_HELLO_OK)
                    .put_u32(*version)
                    .put_u8(*role)
                    .put_u64(*generation);
                match lease {
                    Some(grant) => {
                        enc.put_u8(1).put_u64(grant.token).put_u64(grant.ttl_ms);
                    }
                    None => {
                        enc.put_u8(0);
                    }
                }
            }
            Response::Pong => {
                enc.put_u8(RESP_PONG);
            }
            Response::PutBatch(report) => {
                enc.put_u8(RESP_PUT_BATCH)
                    .put_varint(report.fresh.len() as u64);
                for f in &report.fresh {
                    enc.put_u8(u8::from(*f));
                }
                enc.put_u64(report.renames).put_u64(report.fsyncs);
            }
            Response::Chunk(data) => {
                enc.put_u8(RESP_CHUNK).put_bytes(data);
            }
            Response::Contains(bools) => {
                enc.put_u8(RESP_CONTAINS).put_varint(bools.len() as u64);
                for b in bools {
                    enc.put_u8(u8::from(*b));
                }
            }
            Response::Hashes(hashes) => {
                enc.put_u8(RESP_HASHES);
                put_hashes(&mut enc, hashes);
            }
            Response::Gc(r) => {
                enc.put_u8(RESP_GC)
                    .put_u64(r.live as u64)
                    .put_u64(r.deleted as u64)
                    .put_u64(r.reclaimed_bytes)
                    .put_u64(r.deferred as u64)
                    .put_u64(r.deferred_bytes);
            }
            Response::Stats(s) => {
                enc.put_u8(RESP_STATS)
                    .put_u64(s.object_count as u64)
                    .put_u64(s.total_bytes);
            }
            Response::Cleared(n) => {
                enc.put_u8(RESP_CLEARED).put_u64(*n);
            }
            Response::Ok => {
                enc.put_u8(RESP_OK);
            }
            Response::Meta(opt) => {
                enc.put_u8(RESP_META);
                match opt {
                    Some(bytes) => {
                        enc.put_u8(1).put_bytes(bytes);
                    }
                    None => {
                        enc.put_u8(0);
                    }
                }
            }
            Response::Names(names) => {
                enc.put_u8(RESP_NAMES).put_varint(names.len() as u64);
                for n in names {
                    enc.put_str(n);
                }
            }
            Response::Status {
                version,
                namespaces,
                connections,
                role,
                generation,
                oplog_entries,
                repl_lag,
            } => {
                enc.put_u8(RESP_STATUS)
                    .put_u32(*version)
                    .put_u64(*namespaces)
                    .put_u64(*connections)
                    .put_u8(*role)
                    .put_u64(*generation)
                    .put_u64(*oplog_entries)
                    .put_u64(*repl_lag);
            }
            Response::ReplStatus {
                generation,
                role,
                namespaces,
            } => {
                enc.put_u8(RESP_REPL_STATUS)
                    .put_u64(*generation)
                    .put_u8(*role)
                    .put_varint(namespaces.len() as u64);
                for (name, len) in namespaces {
                    enc.put_str(name).put_u64(*len);
                }
            }
            Response::ReplEntries(records) => {
                enc.put_u8(RESP_REPL_ENTRIES)
                    .put_varint(records.len() as u64);
                for rec in records {
                    enc.put_u64(rec.offset);
                    rec.op.encode_into(&mut enc);
                }
            }
            Response::Chunks(chunks) => {
                enc.put_u8(RESP_CHUNKS).put_varint(chunks.len() as u64);
                for c in chunks {
                    match c {
                        Some(c) => {
                            enc.put_u8(1)
                                .put_raw(&c.reference.hash.0)
                                .put_u32(c.reference.len)
                                .put_raw(&c.data);
                        }
                        None => {
                            enc.put_u8(0);
                        }
                    }
                }
            }
            Response::Promoted { generation } => {
                enc.put_u8(RESP_PROMOTED).put_u64(*generation);
            }
            Response::StreamBegin { len } => {
                enc.put_u8(RESP_STREAM_BEGIN).put_u64(*len);
            }
            Response::StreamData(data) => {
                enc.put_u8(RESP_STREAM_DATA).put_bytes(data);
            }
            Response::StreamEnd { fresh } => {
                enc.put_u8(RESP_STREAM_END).put_u8(u8::from(*fresh));
            }
            Response::Metrics(text) => {
                enc.put_u8(RESP_METRICS).put_str(text);
            }
            Response::Err { code, message } => {
                enc.put_u8(RESP_ERR).put_u8(*code).put_str(message);
            }
        }
        enc.into_bytes()
    }

    /// Parses a frame body into a response.
    ///
    /// # Errors
    ///
    /// Fails on unknown opcodes, truncation or trailing bytes.
    pub fn decode(body: &[u8]) -> Result<Response> {
        let mut dec = Decoder::new(body, "response frame");
        let op = dec.get_u8()?;
        let resp = match op {
            RESP_HELLO_OK => {
                let version = dec.get_u32()?;
                let role = dec.get_u8()?;
                let generation = dec.get_u64()?;
                let lease = if dec.get_u8()? != 0 {
                    Some(LeaseGrant {
                        token: dec.get_u64()?,
                        ttl_ms: dec.get_u64()?,
                    })
                } else {
                    None
                };
                Response::HelloOk {
                    version,
                    role,
                    generation,
                    lease,
                }
            }
            RESP_PONG => Response::Pong,
            RESP_PUT_BATCH => {
                let n = dec.get_varint()? as usize;
                if n > dec.remaining() {
                    return Err(Error::protocol(
                        "decoding put-batch reply",
                        format!("fresh count {n} exceeds frame"),
                    ));
                }
                let mut fresh = Vec::with_capacity(n);
                for _ in 0..n {
                    fresh.push(dec.get_u8()? != 0);
                }
                Response::PutBatch(BatchPutReport {
                    fresh,
                    renames: dec.get_u64()?,
                    fsyncs: dec.get_u64()?,
                })
            }
            RESP_CHUNK => Response::Chunk(dec.get_bytes()?),
            RESP_CONTAINS => {
                let n = dec.get_varint()? as usize;
                if n > dec.remaining() {
                    return Err(Error::protocol(
                        "decoding contains reply",
                        format!("count {n} exceeds frame"),
                    ));
                }
                let mut bools = Vec::with_capacity(n);
                for _ in 0..n {
                    bools.push(dec.get_u8()? != 0);
                }
                Response::Contains(bools)
            }
            RESP_HASHES => Response::Hashes(get_hashes(&mut dec)?),
            RESP_GC => Response::Gc(GcReport {
                live: dec.get_u64()? as usize,
                deleted: dec.get_u64()? as usize,
                reclaimed_bytes: dec.get_u64()?,
                deferred: dec.get_u64()? as usize,
                deferred_bytes: dec.get_u64()?,
            }),
            RESP_STATS => Response::Stats(StoreStats {
                object_count: dec.get_u64()? as usize,
                total_bytes: dec.get_u64()?,
            }),
            RESP_CLEARED => Response::Cleared(dec.get_u64()?),
            RESP_OK => Response::Ok,
            RESP_META => {
                let present = dec.get_u8()? != 0;
                Response::Meta(if present {
                    Some(dec.get_bytes()?)
                } else {
                    None
                })
            }
            RESP_NAMES => {
                let n = dec.get_varint()? as usize;
                if n > dec.remaining() {
                    return Err(Error::protocol(
                        "decoding name list",
                        format!("count {n} exceeds frame"),
                    ));
                }
                let mut names = Vec::with_capacity(n);
                for _ in 0..n {
                    names.push(dec.get_str()?);
                }
                Response::Names(names)
            }
            RESP_STATUS => Response::Status {
                version: dec.get_u32()?,
                namespaces: dec.get_u64()?,
                connections: dec.get_u64()?,
                role: dec.get_u8()?,
                generation: dec.get_u64()?,
                oplog_entries: dec.get_u64()?,
                repl_lag: dec.get_u64()?,
            },
            RESP_REPL_STATUS => {
                let generation = dec.get_u64()?;
                let role = dec.get_u8()?;
                let n = dec.get_varint()? as usize;
                if n > dec.remaining() {
                    return Err(Error::protocol(
                        "decoding repl status",
                        format!("count {n} exceeds frame"),
                    ));
                }
                let mut namespaces = Vec::with_capacity(n);
                for _ in 0..n {
                    namespaces.push((dec.get_str()?, dec.get_u64()?));
                }
                Response::ReplStatus {
                    generation,
                    role,
                    namespaces,
                }
            }
            RESP_REPL_ENTRIES => {
                let n = dec.get_varint()? as usize;
                if n > dec.remaining() {
                    return Err(Error::protocol(
                        "decoding oplog entries",
                        format!("count {n} exceeds frame"),
                    ));
                }
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    records.push(OplogRecord {
                        offset: dec.get_u64()?,
                        op: OplogOp::decode_from(&mut dec)?,
                    });
                }
                Response::ReplEntries(records)
            }
            RESP_CHUNKS => {
                let n = dec.get_varint()? as usize;
                if n > dec.remaining() {
                    return Err(Error::protocol(
                        "decoding chunk batch",
                        format!("count {n} exceeds frame"),
                    ));
                }
                let mut chunks = Vec::with_capacity(n);
                for _ in 0..n {
                    if dec.get_u8()? == 0 {
                        chunks.push(None);
                        continue;
                    }
                    let raw = dec.get_raw(32)?;
                    let mut h = [0u8; 32];
                    h.copy_from_slice(raw);
                    let len = dec.get_u32()?;
                    let data = dec.get_raw(len as usize)?.to_vec();
                    chunks.push(Some(WireChunk {
                        reference: ChunkRef {
                            hash: ContentHash(h),
                            len,
                        },
                        data,
                    }));
                }
                Response::Chunks(chunks)
            }
            RESP_PROMOTED => Response::Promoted {
                generation: dec.get_u64()?,
            },
            RESP_STREAM_BEGIN => Response::StreamBegin {
                len: dec.get_u64()?,
            },
            RESP_STREAM_DATA => {
                let data = dec.get_bytes()?;
                if data.len() > MAX_STREAM_SEGMENT {
                    return Err(Error::protocol(
                        "decoding stream segment",
                        format!(
                            "segment of {} B exceeds {MAX_STREAM_SEGMENT} B cap",
                            data.len()
                        ),
                    ));
                }
                Response::StreamData(data)
            }
            RESP_STREAM_END => Response::StreamEnd {
                fresh: dec.get_u8()? != 0,
            },
            RESP_METRICS => Response::Metrics(dec.get_str()?),
            RESP_ERR => Response::Err {
                code: dec.get_u8()?,
                message: dec.get_str()?,
            },
            other => {
                return Err(Error::protocol(
                    "decoding response",
                    format!("unknown opcode {other:#04x}"),
                ))
            }
        };
        dec.finish()?;
        Ok(resp)
    }

    /// Turns an error response into an [`enum@Error`]; passes everything
    /// else through.
    ///
    /// # Errors
    ///
    /// The reconstructed server-side error for [`Response::Err`].
    pub fn into_result(self, context: &str) -> Result<Response> {
        match self {
            Response::Err { code, message } => {
                Err(ErrCode::from_u8(code).to_error(context, message))
            }
            other => Ok(other),
        }
    }
}

/// Writes one frame (length prefix, body, CRC) to `w`.
///
/// # Errors
///
/// Fails on transport errors or an oversized body.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<()> {
    if body.len() > MAX_FRAME_LEN {
        return Err(Error::protocol(
            "writing frame",
            format!("body of {} B exceeds {} B cap", body.len(), MAX_FRAME_LEN),
        ));
    }
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(body).to_le_bytes());
    w.write_all(&out)
        .map_err(|e| Error::io("writing frame", e))?;
    Ok(())
}

/// Reads one frame body from `r`, verifying length bound and CRC.
///
/// # Errors
///
/// [`Error::Io`] on transport failure (including EOF mid-frame),
/// [`Error::Protocol`] on an oversized length or CRC mismatch.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)
        .map_err(|e| Error::io("reading frame length", e))?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(Error::protocol(
            "reading frame",
            format!("length {len} exceeds {MAX_FRAME_LEN} B cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|e| Error::io("reading frame body", e))?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)
        .map_err(|e| Error::io("reading frame crc", e))?;
    if crc32(&body) != u32::from_le_bytes(crc_bytes) {
        return Err(Error::protocol("reading frame", "crc mismatch"));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Sha256;

    fn round_trip_request(req: Request) {
        let body = req.encode();
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let body = resp.encode();
        assert_eq!(Response::decode(&body).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        let h = Sha256::digest(b"x");
        round_trip_request(Request::hello("run-1"));
        round_trip_request(Request::Hello {
            version: PROTO_VERSION,
            namespace: "run-1".into(),
            auth: "sekrit".into(),
            flags: HELLO_FLAG_WANT_LEASE | HELLO_FLAG_REPL,
            lease_token: 0xDEAD_BEEF,
            min_generation: 7,
        });
        round_trip_request(Request::Ping);
        round_trip_request(Request::PutBatch {
            fsync: true,
            chunks: vec![
                WireChunk {
                    reference: ChunkRef { hash: h, len: 1 },
                    data: vec![7],
                },
                WireChunk {
                    reference: ChunkRef {
                        hash: Sha256::digest(b""),
                        len: 0,
                    },
                    data: vec![],
                },
            ],
        });
        round_trip_request(Request::Get {
            reference: ChunkRef { hash: h, len: 9 },
        });
        round_trip_request(Request::Contains { hashes: vec![h, h] });
        round_trip_request(Request::List);
        round_trip_request(Request::Sweep {
            dry_run: true,
            reachable: vec![h],
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::ClearStaging);
        round_trip_request(Request::MetaPut {
            name: "manifests/a.qmf".into(),
            bytes: vec![1, 2, 3],
        });
        round_trip_request(Request::MetaGet {
            name: "LATEST".into(),
        });
        round_trip_request(Request::MetaList {
            prefix: "manifests/".into(),
        });
        round_trip_request(Request::MetaDelete { name: "x".into() });
        round_trip_request(Request::Status);
        round_trip_request(Request::Metrics);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Corrupt {
            hash: h,
            offset: 1234,
        });
        round_trip_request(Request::ReplStatus);
        round_trip_request(Request::ReplFetch {
            namespace: "run-1".into(),
            from: 42,
            max: 64,
        });
        round_trip_request(Request::ReplChunks {
            namespace: "run-1".into(),
            refs: vec![ChunkRef { hash: h, len: 9 }],
        });
        round_trip_request(Request::ReplAck {
            namespace: "run-1".into(),
            offset: 43,
        });
        round_trip_request(Request::Promote);
        round_trip_request(Request::LeaseRelease);
        round_trip_request(Request::GetStream {
            reference: ChunkRef { hash: h, len: 9 },
        });
        round_trip_request(Request::PutStreamBegin {
            reference: ChunkRef {
                hash: h,
                len: 1 << 30,
            },
            fsync: true,
        });
        round_trip_request(Request::PutStreamData(vec![42; 1024]));
        round_trip_request(Request::PutStreamEnd);
        round_trip_request(Request::ReplChunkStream {
            namespace: "run-1".into(),
            reference: ChunkRef { hash: h, len: 9 },
        });
    }

    /// A streamed segment above the per-segment cap is refused at decode
    /// time on both directions — the receiver's allocation bound.
    #[test]
    fn oversized_stream_segments_are_rejected() {
        let req = Request::PutStreamData(vec![0; MAX_STREAM_SEGMENT + 1]);
        assert!(matches!(
            Request::decode(&req.encode()),
            Err(Error::Protocol { .. })
        ));
        let resp = Response::StreamData(vec![0; MAX_STREAM_SEGMENT + 1]);
        assert!(matches!(
            Response::decode(&resp.encode()),
            Err(Error::Protocol { .. })
        ));
    }

    /// A v1 Hello (version + namespace, nothing else) must still decode
    /// — the server needs the version number to refuse it with a clear
    /// error rather than a framing failure.
    #[test]
    fn v1_hello_still_decodes() {
        let v1 = Request::Hello {
            version: 1,
            namespace: "old-client".into(),
            auth: String::new(),
            flags: 0,
            lease_token: 0,
            min_generation: 0,
        };
        let body = v1.encode();
        // The v1 encoding is exactly opcode + u32 + varint-len string.
        assert_eq!(body.len(), 1 + 4 + 1 + "old-client".len());
        match Request::decode(&body).unwrap() {
            Request::Hello {
                version, namespace, ..
            } => {
                assert_eq!(version, 1);
                assert_eq!(namespace, "old-client");
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let h = Sha256::digest(b"y");
        round_trip_response(Response::HelloOk {
            version: PROTO_VERSION,
            role: ROLE_PRIMARY,
            generation: 3,
            lease: None,
        });
        round_trip_response(Response::HelloOk {
            version: PROTO_VERSION,
            role: ROLE_SECONDARY,
            generation: 9,
            lease: Some(LeaseGrant {
                token: 0xFEED,
                ttl_ms: 30_000,
            }),
        });
        round_trip_response(Response::Pong);
        round_trip_response(Response::PutBatch(BatchPutReport {
            fresh: vec![true, false],
            renames: 1,
            fsyncs: 0,
        }));
        round_trip_response(Response::Chunk(vec![1, 2, 3]));
        round_trip_response(Response::Contains(vec![true, false, true]));
        round_trip_response(Response::Hashes(vec![h]));
        round_trip_response(Response::Gc(GcReport {
            live: 1,
            deleted: 2,
            reclaimed_bytes: 3,
            deferred: 4,
            deferred_bytes: 5,
        }));
        round_trip_response(Response::Stats(StoreStats {
            object_count: 7,
            total_bytes: 99,
        }));
        round_trip_response(Response::Cleared(3));
        round_trip_response(Response::Ok);
        round_trip_response(Response::Meta(None));
        round_trip_response(Response::Meta(Some(vec![9])));
        round_trip_response(Response::Names(vec!["a".into(), "b".into()]));
        round_trip_response(Response::Metrics("# TYPE a counter\na 1\n".into()));
        round_trip_response(Response::Status {
            version: 1,
            namespaces: 2,
            connections: 3,
            role: ROLE_SECONDARY,
            generation: 4,
            oplog_entries: 5,
            repl_lag: 6,
        });
        round_trip_response(Response::ReplStatus {
            generation: 2,
            role: ROLE_PRIMARY,
            namespaces: vec![("a".into(), 10), ("b".into(), 0)],
        });
        round_trip_response(Response::ReplEntries(vec![
            OplogRecord {
                offset: 0,
                op: OplogOp::MetaPut {
                    name: "manifests/ck-1.qmf".into(),
                    bytes: vec![1, 2, 3],
                },
            },
            OplogRecord {
                offset: 1,
                op: OplogOp::MetaDelete {
                    name: "manifests/ck-0.qmf".into(),
                },
            },
            OplogRecord {
                offset: 2,
                op: OplogOp::Sweep { reachable: vec![h] },
            },
        ]));
        round_trip_response(Response::Chunks(vec![
            Some(WireChunk {
                reference: ChunkRef { hash: h, len: 3 },
                data: vec![7, 8, 9],
            }),
            None,
        ]));
        round_trip_response(Response::Promoted { generation: 11 });
        round_trip_response(Response::StreamBegin { len: 5 << 30 });
        round_trip_response(Response::StreamData(vec![7; 2048]));
        round_trip_response(Response::StreamEnd { fresh: true });
        round_trip_response(Response::StreamEnd { fresh: false });
        round_trip_response(Response::Err {
            code: ErrCode::NotFound as u8,
            message: "nope".into(),
        });
    }

    #[test]
    fn borrowed_put_batch_encoding_matches_owned() {
        let blobs: Vec<Vec<u8>> = vec![vec![1; 100], vec![], vec![9; 7]];
        let staged: Vec<crate::store::StagedChunk<'_>> = blobs
            .iter()
            .map(|b| crate::store::StagedChunk {
                reference: ChunkRef {
                    hash: Sha256::digest(b),
                    len: b.len() as u32,
                },
                data: b,
            })
            .collect();
        let owned = Request::PutBatch {
            fsync: true,
            chunks: staged
                .iter()
                .map(|c| WireChunk {
                    reference: c.reference,
                    data: c.data.to_vec(),
                })
                .collect(),
        };
        assert_eq!(encode_put_batch(true, &staged), owned.encode());
    }

    #[test]
    fn frame_io_round_trips_and_detects_damage() {
        let body = Request::Ping.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &body).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), body);

        // Flip a body bit: CRC must catch it.
        let mut damaged = buf.clone();
        damaged[4] ^= 0x40;
        let mut cursor = &damaged[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(Error::Protocol { .. })
        ));

        // Truncate: transport error, not garbage.
        let mut cursor = &buf[..buf.len() - 1];
        assert!(matches!(read_frame(&mut cursor), Err(Error::Io { .. })));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(Error::Protocol { .. })
        ));
    }

    #[test]
    fn namespace_and_meta_name_grammar() {
        assert!(valid_namespace("run-1.a_B"));
        assert!(!valid_namespace(""));
        assert!(!valid_namespace("a/b"));
        assert!(!valid_namespace(".."));
        assert!(!valid_namespace(&"x".repeat(65)));
        assert!(valid_meta_name("LATEST"));
        assert!(valid_meta_name("manifests/ck-0001.qmf"));
        assert!(!valid_meta_name("/abs"));
        assert!(!valid_meta_name("a//b"));
        assert!(!valid_meta_name("a/../b"));
        assert!(!valid_meta_name("a/"));
    }

    #[test]
    fn err_codes_map_back_to_errors() {
        let e = ErrCode::NotFound.to_error("getting chunk", "chunk abc".into());
        assert!(matches!(e, Error::NotFound { .. }));
        assert!(e.is_integrity_failure());
        let e = ErrCode::Corrupt.to_error("getting chunk", "hash mismatch".into());
        assert!(matches!(e, Error::Corrupt { .. }));
        let e = ErrCode::Invalid.to_error("hello", "bad version".into());
        assert!(matches!(e, Error::InvalidConfig(_)));
        // The v2 typed errors survive the wire round trip.
        for (err, code) in [
            (Error::Unauthorized("token".into()), ErrCode::Unauthorized),
            (Error::StaleGeneration("gen 1 < 2".into()), ErrCode::Stale),
            (Error::NotPrimary("tailing".into()), ErrCode::NotPrimary),
            (Error::LeaseHeld("ns by peer".into()), ErrCode::LeaseHeld),
        ] {
            let (wire, msg) = ErrCode::classify(&err);
            assert_eq!(wire, code);
            let back = code.to_error("ctx", msg);
            assert_eq!(
                std::mem::discriminant(&back),
                std::mem::discriminant(&err),
                "{back:?} vs {err:?}"
            );
        }
    }
}
