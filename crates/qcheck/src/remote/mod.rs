//! Remote checkpoint storage: the `qckptd` daemon and its client.
//!
//! The paper's argument is that QNN training on queued, preemptible
//! cloud hardware must checkpoint aggressively — which means checkpoints
//! must survive the *machine*, not just the process. This module makes
//! the object store a network service:
//!
//! * [`proto`] — the length-prefixed, CRC-framed binary wire protocol
//!   (versioned handshake, idempotent operations);
//! * [`Server`] / the `qckptd` binary — a multi-tenant daemon serving
//!   per-namespace object stores (reusing the local loose/pack layouts
//!   and their crash-safety machinery) plus a named-metadata space for
//!   manifests and the `LATEST` pointer;
//! * [`RemoteStore`] — an [`crate::store::ObjectStore`] client with
//!   connection reuse, pipelined `put_batch`, multi-address failover
//!   with jittered backoff, generation fencing, and server-side writer
//!   leases;
//! * [`repl`] — the per-namespace oplog and the secondary's tailer,
//!   which together replicate a primary onto a warm standby that can be
//!   promoted (`qckptd promote`) when the primary dies.
//!
//! Selected like any other backend: `QCHECK_STORE=remote` with
//! `QCHECK_REMOTE_ADDR=host:port` (and optionally `QCHECK_REMOTE_NS` to
//! pin the namespace), or explicitly via
//! [`crate::store::StoreKind::Remote`]. Because the daemon also holds
//! the repository metadata, a training job can be killed and resumed
//! from a *fresh working directory* against the same daemon — the repo
//! pulls manifests and `LATEST` down on open and recovery.

pub mod proto;
pub mod repl;

mod client;
mod server;

pub use client::{RemoteStatus, RemoteStore, RETRIES_ENV, TOKEN_ENV};
pub use repl::{ReplStop, ReplicateConfig, SyncReport};
pub use server::{
    spawn_daemon, spawn_secondary, DaemonHandle, Server, ServerConfig, DEFAULT_LEASE_TTL,
};

/// Environment variable naming the daemon address — a `host:port`, or a
/// comma-separated failover list (`primary:port,secondary:port`) — used
/// when `QCHECK_STORE=remote`.
pub const REMOTE_ADDR_ENV: &str = "QCHECK_REMOTE_ADDR";

/// Largest single stream-segment buffer (bytes) materialized by either
/// end of a v3 `GET_STREAM`/`PUT_STREAM` transfer in this process,
/// since the last [`reset_stream_peak_buffer`] (0 = no streaming yet).
/// Backed by the `qcheck_stream_peak_buffer_bytes` qobs gauge — one
/// source of truth for in-process daemon tests, `bench_store`, and a
/// daemon `METRICS` scrape. The O(segment) memory contract it pins:
/// streaming a payload far above [`proto::MAX_FRAME_LEN`] must never
/// buffer more than [`proto::MAX_STREAM_SEGMENT`] at once.
pub fn stream_peak_buffer() -> u64 {
    crate::obs::STREAM_PEAK.get().get().max(0) as u64
}

/// Resets the streaming peak-buffer watermark.
pub fn reset_stream_peak_buffer() {
    crate::obs::STREAM_PEAK.get().set(0);
}

/// Records one stream-segment buffer observation. Unlike the rest of
/// the instrumentation this records in every `QOBS` mode: the memory
/// contract above is asserted by tests that must hold with
/// observability off.
pub(crate) fn note_stream_buffer(len: usize) {
    crate::obs::STREAM_PEAK.get().set_max(len as i64);
}

/// Environment variable pinning the remote namespace. When unset, a
/// repository generates a random namespace on first open and persists
/// it in its `REMOTE_NS` marker file — resuming from a *different*
/// directory therefore requires either this variable or an explicit
/// [`RemoteStore::connect`].
pub const REMOTE_NS_ENV: &str = "QCHECK_REMOTE_NS";

/// Protocol-level fault injection for the crash-safety suites.
/// Test-only, like `ObjectStore::corrupt_object`.
#[cfg(any(test, feature = "testing"))]
pub mod fault {
    use std::io::Write as _;

    use crate::chunk::ChunkRef;
    use crate::error::{Error, Result};
    use crate::hash::Sha256;

    use super::proto;

    /// Simulates a client dying mid-`PUT_BATCH`: handshakes into
    /// `namespace`, writes the first half of a framed `PutBatch`
    /// carrying `payload`, and drops the connection. The server must
    /// treat the unfinished frame as if it never arrived.
    pub fn die_mid_put_batch(addr: &str, namespace: &str, payload: Vec<u8>) -> Result<()> {
        let mut stream = std::net::TcpStream::connect(addr)
            .map_err(|e| Error::io(format!("connecting to {addr}"), e))?;
        let hello = proto::Request::hello(namespace);
        proto::write_frame(&mut stream, &hello.encode())?;
        match proto::Response::decode(&proto::read_frame(&mut stream)?)?.into_result("handshake")? {
            proto::Response::HelloOk { .. } => {}
            other => {
                return Err(Error::protocol(
                    "handshake",
                    format!("unexpected response {other:?}"),
                ))
            }
        }
        let put = proto::Request::PutBatch {
            fsync: false,
            chunks: vec![proto::WireChunk {
                reference: ChunkRef {
                    hash: Sha256::digest(&payload),
                    len: payload.len() as u32,
                },
                data: payload,
            }],
        };
        let mut framed = Vec::new();
        proto::write_frame(&mut framed, &put.encode())?;
        stream
            .write_all(&framed[..framed.len() / 2])
            .map_err(|e| Error::io("writing half frame", e))?;
        // Dropping the stream here is the "death": the frame never
        // completes.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{ObjectStore, StoreKind};

    fn scratch(tag: &str) -> std::path::PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qcheck-remote-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn put_get_round_trip_over_the_wire() {
        let root = scratch("round-trip");
        let daemon = spawn_daemon(&root, StoreKind::Pack).unwrap();
        let store = RemoteStore::connect(daemon.addr(), "t1").unwrap();
        let (r, fresh) = store.put(b"remote payload").unwrap();
        assert!(fresh);
        assert_eq!(store.get(&r).unwrap(), b"remote payload");
        assert!(store.contains(&r.hash));
        assert!(store.contains_all(&[r.hash]));
        let (_, fresh2) = store.put(b"remote payload").unwrap();
        assert!(!fresh2, "second put must dedup server-side");
        assert_eq!(store.stats().unwrap().object_count, 1);
        assert_eq!(store.list().unwrap(), vec![r.hash]);
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn namespaces_are_isolated() {
        let root = scratch("ns-isolation");
        let daemon = spawn_daemon(&root, StoreKind::Loose).unwrap();
        let a = RemoteStore::connect(daemon.addr(), "tenant-a").unwrap();
        let b = RemoteStore::connect(daemon.addr(), "tenant-b").unwrap();
        let (ra, _) = a.put(b"shared bytes").unwrap();
        assert!(!b.contains(&ra.hash), "namespaces must not leak objects");
        // A full sweep of B must not touch A's object.
        b.sweep(&std::collections::BTreeSet::new()).unwrap();
        assert_eq!(a.get(&ra).unwrap(), b"shared bytes");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn meta_round_trip_and_listing() {
        let root = scratch("meta");
        let daemon = spawn_daemon(&root, StoreKind::Pack).unwrap();
        let store = RemoteStore::connect(daemon.addr(), "meta-t").unwrap();
        assert!(store.is_shared());
        assert_eq!(store.meta_get("LATEST").unwrap(), None);
        store.meta_put("LATEST", b"ck-1\n").unwrap();
        store.meta_put("manifests/ck-1.qmf", b"m1").unwrap();
        store.meta_put("manifests/ck-2.qmf", b"m2").unwrap();
        assert_eq!(store.meta_get("LATEST").unwrap().unwrap(), b"ck-1\n");
        assert_eq!(
            store.meta_list("manifests/").unwrap(),
            vec!["manifests/ck-1.qmf", "manifests/ck-2.qmf"]
        );
        // Overwrite is atomic-last-wins; delete converges.
        store.meta_put("LATEST", b"ck-2\n").unwrap();
        assert_eq!(store.meta_get("LATEST").unwrap().unwrap(), b"ck-2\n");
        store.meta_delete("manifests/ck-1.qmf").unwrap();
        store.meta_delete("manifests/ck-1.qmf").unwrap();
        assert_eq!(
            store.meta_list("manifests/").unwrap(),
            vec!["manifests/ck-2.qmf"]
        );
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn traversal_names_are_refused() {
        let root = scratch("traversal");
        let daemon = spawn_daemon(&root, StoreKind::Loose).unwrap();
        let store = RemoteStore::connect(daemon.addr(), "sec").unwrap();
        for name in ["../escape", "/abs", "a/../b", ""] {
            assert!(
                store.meta_put(name, b"x").is_err(),
                "name {name:?} must be refused"
            );
        }
        assert!(RemoteStore::connect(daemon.addr(), "../up").is_err());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn version_mismatch_is_refused() {
        use std::io::Write as _;
        let root = scratch("version");
        let daemon = spawn_daemon(&root, StoreKind::Loose).unwrap();
        let mut stream = std::net::TcpStream::connect(daemon.addr()).unwrap();
        let hello = proto::Request::Hello {
            version: proto::PROTO_VERSION + 1,
            namespace: "v".into(),
            auth: String::new(),
            flags: 0,
            lease_token: 0,
            min_generation: 0,
        };
        proto::write_frame(&mut stream, &hello.encode()).unwrap();
        stream.flush().unwrap();
        let resp = proto::Response::decode(&proto::read_frame(&mut stream).unwrap()).unwrap();
        assert!(matches!(resp, proto::Response::Err { .. }), "{resp:?}");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn client_replays_after_injected_connection_drops() {
        let root = scratch("drops");
        let mut config = ServerConfig::new(&root);
        config.store_kind = StoreKind::Pack;
        // Every connection dies after 2 requests: a multi-op workload
        // only succeeds if the client transparently reconnects and
        // replays.
        config.drop_after_requests = Some(2);
        let daemon = Server::bind("127.0.0.1:0", config).unwrap().spawn();
        let store = RemoteStore::connect(daemon.addr(), "flaky").unwrap();
        let mut refs = Vec::new();
        for i in 0..8u8 {
            let (r, fresh) = store.put(&[i; 100]).unwrap();
            assert!(fresh);
            refs.push(r);
        }
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(store.get(r).unwrap(), vec![i as u8; 100]);
        }
        assert_eq!(store.stats().unwrap().object_count, 8);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn daemon_shutdown_is_graceful_and_observable() {
        let root = scratch("shutdown");
        let daemon = spawn_daemon(&root, StoreKind::Pack).unwrap();
        let addr = daemon.addr();
        let store = RemoteStore::connect(&addr, "ctl").unwrap();
        store.ping().unwrap();
        let status = store.status().unwrap();
        assert_eq!(status.version, proto::PROTO_VERSION);
        assert!(status.connections >= 1);
        assert_eq!(status.role, proto::ROLE_PRIMARY);
        assert!(status.generation >= 1);
        store.shutdown_daemon().unwrap();
        daemon.shutdown(); // joins the accept loop
                           // New connections must now fail (give the OS a moment to tear
                           // the listener down).
        let refused = (0..50).any(|_| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            RemoteStore::connect(&addr, "late").is_err()
        });
        assert!(refused, "listener must stop accepting after shutdown");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn mid_put_batch_death_leaves_store_clean() {
        let root = scratch("half-frame");
        let daemon = spawn_daemon(&root, StoreKind::Pack).unwrap();
        let store = RemoteStore::connect(daemon.addr(), "crashy").unwrap();
        let (r0, _) = store.put(b"pre-existing").unwrap();

        // A raw client handshakes, then dies halfway through a PutBatch
        // frame.
        fault::die_mid_put_batch(&daemon.addr(), "crashy", vec![7u8; 4096]).unwrap();

        // The dead client's bytes never became a request: no new object,
        // nothing staged, and the surviving client sees a clean store.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(store.stats().unwrap().object_count, 1);
        assert_eq!(store.list().unwrap(), vec![r0.hash]);
        assert_eq!(store.clear_staging().unwrap(), 0);
        assert_eq!(store.get(&r0).unwrap(), b"pre-existing");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn lying_content_address_is_refused_server_side() {
        let root = scratch("liar");
        let daemon = spawn_daemon(&root, StoreKind::Pack).unwrap();
        let store = RemoteStore::connect(daemon.addr(), "liar").unwrap();
        let bogus = crate::store::StagedChunk {
            reference: crate::chunk::ChunkRef {
                hash: crate::hash::Sha256::digest(b"what I claim"),
                len: 12,
            },
            data: b"what I send!",
        };
        let err = store.put_batch(&[bogus], false).unwrap_err();
        assert!(matches!(err, crate::error::Error::Corrupt { .. }), "{err}");
        assert_eq!(store.stats().unwrap().object_count, 0);
        let _ = std::fs::remove_dir_all(root);
    }
}
