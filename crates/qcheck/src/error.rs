//! Error types for the checkpointing library.

use std::fmt;
use std::path::PathBuf;

/// Every fallible `qcheck` operation returns this error.
#[derive(Debug)]
pub enum Error {
    /// Underlying filesystem failure.
    Io {
        /// The operation being attempted (human-readable).
        context: String,
        /// The source error.
        source: std::io::Error,
    },
    /// Stored data failed an integrity check.
    Corrupt {
        /// What was being read.
        what: String,
        /// Why it is considered corrupt.
        detail: String,
    },
    /// A decoder ran off the end of its input or met a bad tag.
    Decode {
        /// What was being decoded.
        what: String,
        /// Byte offset of the failure.
        offset: usize,
        /// Problem description.
        detail: String,
    },
    /// The on-disk format version is not supported by this build.
    UnsupportedVersion {
        /// Version found on disk.
        found: u32,
        /// Version this build writes.
        supported: u32,
    },
    /// A referenced checkpoint, chunk or section does not exist.
    NotFound {
        /// What was looked up.
        what: String,
    },
    /// No valid checkpoint could be recovered from the repository.
    NoValidCheckpoint {
        /// Number of manifests that were examined and rejected.
        rejected: usize,
    },
    /// Invalid configuration or argument.
    InvalidConfig(String),
    /// A delta chain exceeded the configured maximum length or was cyclic.
    ChainTooLong {
        /// Observed length.
        length: usize,
        /// Configured limit.
        limit: usize,
    },
    /// The repository is locked by another writer.
    Locked(PathBuf),
    /// A remote-store conversation broke down: framing, handshake or an
    /// unexpected reply. Distinct from [`Error::Io`] (the transport
    /// failed) and [`Error::Corrupt`] (stored data failed verification):
    /// this means the two endpoints disagreed about the protocol.
    Protocol {
        /// The exchange being attempted.
        context: String,
        /// What went wrong.
        detail: String,
    },
    /// A failure-injection plan deliberately aborted the operation
    /// (testing / evaluation only; never produced in normal operation).
    SimulatedCrash {
        /// Which crash point fired.
        at: String,
    },
    /// The daemon requires an auth token this client did not (correctly)
    /// present.
    Unauthorized(String),
    /// Generation fencing tripped: one side of the conversation has
    /// observed a newer primary generation than the other, proving the
    /// lower side is (talking to) a demoted primary.
    StaleGeneration(String),
    /// A writer lease for the namespace is held by someone else.
    LeaseHeld(String),
    /// The daemon is a replication secondary and refuses writes.
    NotPrimary(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { context, source } => write!(f, "i/o failure while {context}: {source}"),
            Error::Corrupt { what, detail } => write!(f, "corrupt {what}: {detail}"),
            Error::Decode {
                what,
                offset,
                detail,
            } => write!(f, "decode failure in {what} at byte {offset}: {detail}"),
            Error::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (supported: {supported})"
                )
            }
            Error::NotFound { what } => write!(f, "not found: {what}"),
            Error::NoValidCheckpoint { rejected } => {
                write!(
                    f,
                    "no valid checkpoint found ({rejected} manifests rejected)"
                )
            }
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::ChainTooLong { length, limit } => {
                write!(f, "delta chain of length {length} exceeds limit {limit}")
            }
            Error::Locked(path) => write!(f, "repository locked: {}", path.display()),
            Error::Protocol { context, detail } => {
                write!(f, "remote protocol failure while {context}: {detail}")
            }
            Error::SimulatedCrash { at } => write!(f, "simulated crash at {at}"),
            Error::Unauthorized(what) => write!(f, "unauthorized: {what}"),
            Error::StaleGeneration(detail) => write!(f, "stale generation: {detail}"),
            Error::LeaseHeld(detail) => write!(f, "writer lease held: {detail}"),
            Error::NotPrimary(detail) => write!(f, "daemon is not the primary: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl Error {
    /// Wraps an I/O error with context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Error::Io {
            context: context.into(),
            source,
        }
    }

    /// Builds a corruption error.
    pub fn corrupt(what: impl Into<String>, detail: impl Into<String>) -> Self {
        Error::Corrupt {
            what: what.into(),
            detail: detail.into(),
        }
    }

    /// Builds a remote-protocol error.
    pub fn protocol(context: impl Into<String>, detail: impl Into<String>) -> Self {
        Error::Protocol {
            context: context.into(),
            detail: detail.into(),
        }
    }

    /// True when the error indicates data damage (as opposed to e.g.
    /// configuration problems) — recovery treats these as "skip and fall
    /// back".
    pub fn is_integrity_failure(&self) -> bool {
        matches!(
            self,
            Error::Corrupt { .. } | Error::Decode { .. } | Error::NotFound { .. }
        )
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::corrupt("manifest", "crc mismatch");
        assert_eq!(e.to_string(), "corrupt manifest: crc mismatch");
        let e = Error::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("9"));
        let e = Error::ChainTooLong {
            length: 12,
            limit: 8,
        };
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn io_errors_carry_source() {
        use std::error::Error as _;
        let e = Error::io("writing manifest", std::io::Error::other("disk full"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("writing manifest"));
    }

    #[test]
    fn integrity_classification() {
        assert!(Error::corrupt("x", "y").is_integrity_failure());
        assert!(Error::NotFound { what: "c".into() }.is_integrity_failure());
        assert!(!Error::InvalidConfig("z".into()).is_integrity_failure());
    }
}
