//! Checkpoint manifests: the on-disk metadata record.
//!
//! A manifest names a checkpoint, records whether it is full or a delta
//! against a base checkpoint, and lists every section with its codec,
//! integrity hashes and chunk references. The binary layout is framed by a
//! magic string and a trailing CRC32 so that torn writes are rejected before
//! any deeper parsing happens; the SHA-256 hashes inside protect against
//! silent bit rot in the payload chunks.

use serde::{Deserialize, Serialize};

use crate::chunk::ChunkRef;
use crate::codec::{Decoder, Encoder};
use crate::compress::Compression;
use crate::error::{Error, Result};
use crate::hash::{crc32, ContentHash};

/// Magic bytes opening every manifest file.
pub const MANIFEST_MAGIC: &[u8; 6] = b"QCKPT\0";
/// Format version written by this build. Version 2 changed `snapshot_sha`
/// from a flat hash over all section bytes to the root hash over the
/// per-section digests; version-1 manifests are rejected as unsupported
/// rather than misdiagnosed as corrupt. No read-compat path exists for v1
/// because no buildable release ever wrote it (the v1 constant predates
/// the workspace's first successful build); if that ever changes, gate the
/// root-hash verification on the decoded version instead.
pub const FORMAT_VERSION: u32 = 2;

/// Identifier of a checkpoint, also its manifest file stem.
///
/// Shape: `ckpt-{step:010}-{seq:06}`; ordering by string equals ordering by
/// `(step, seq)`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CheckpointId(pub String);

impl CheckpointId {
    /// Builds an id from a step and a per-repo sequence number.
    pub fn new(step: u64, seq: u64) -> Self {
        CheckpointId(format!("ckpt-{step:010}-{seq:06}"))
    }

    /// The id string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Manifest file name for this id.
    pub fn file_name(&self) -> String {
        format!("{}.qmf", self.0)
    }
}

impl std::fmt::Display for CheckpointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Whether a checkpoint stores full sections or patches against a base.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckpointKind {
    /// Self-contained checkpoint.
    Full,
    /// Delta against `base`; resolving requires the base (recursively).
    Delta {
        /// The base checkpoint id.
        base: CheckpointId,
    },
}

/// How a section's payload is stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PayloadKind {
    /// Chunks hold the (compressed) full section bytes.
    Full,
    /// Chunks hold a (compressed) [`crate::delta::BlockPatch`] against the
    /// base checkpoint's same-named section.
    DeltaPatch,
    /// Chunks hold the byte-wise XOR of the section against the base
    /// checkpoint's same-named, same-length section (dense-update deltas:
    /// only the differing bytes survive and the zero-elide codec removes
    /// the rest).
    XorBase,
}

/// Per-section manifest entry.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SectionEntry {
    /// Section name (see [`crate::snapshot`]).
    pub name: String,
    /// Compression codec applied to the stored payload.
    pub codec: Compression,
    /// Full payload or delta patch.
    pub payload_kind: PayloadKind,
    /// Length of the stored payload before compression (section bytes for
    /// `Full`, encoded patch bytes for `DeltaPatch`).
    pub stored_len: u64,
    /// Length of the *resolved* section bytes.
    pub section_len: u64,
    /// SHA-256 of the resolved section bytes (end-to-end integrity across
    /// delta chains).
    pub section_sha: ContentHash,
    /// Ordered chunk references holding the compressed payload.
    pub chunks: Vec<ChunkRef>,
}

/// A checkpoint manifest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Checkpoint id.
    pub id: CheckpointId,
    /// Optimizer step captured.
    pub step: u64,
    /// Full or delta.
    pub kind: CheckpointKind,
    /// Delta-chain length: 0 for full checkpoints, base + 1 for deltas.
    pub chain_len: u32,
    /// Capture wall-clock, milliseconds since the Unix epoch.
    pub created_unix_ms: u64,
    /// Snapshot root hash: SHA-256 over the per-section digests
    /// concatenated in order. Each section digest is verified against the
    /// resolved bytes, so the root binds the full snapshot while letting
    /// the expensive data hashing run once, per-section and in parallel.
    pub snapshot_sha: ContentHash,
    /// Sections in serialization order.
    pub sections: Vec<SectionEntry>,
}

impl Manifest {
    /// Serializes to the framed binary format (magic + version + payload +
    /// CRC32).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_raw(MANIFEST_MAGIC);
        e.put_u32(FORMAT_VERSION);
        e.put_str(self.id.as_str());
        e.put_u64(self.step);
        match &self.kind {
            CheckpointKind::Full => {
                e.put_u8(0);
            }
            CheckpointKind::Delta { base } => {
                e.put_u8(1);
                e.put_str(base.as_str());
            }
        }
        e.put_u32(self.chain_len);
        e.put_u64(self.created_unix_ms);
        e.put_raw(&self.snapshot_sha.0);
        e.put_varint(self.sections.len() as u64);
        for s in &self.sections {
            e.put_str(&s.name);
            e.put_u8(s.codec.tag());
            e.put_u8(match s.payload_kind {
                PayloadKind::Full => 0,
                PayloadKind::DeltaPatch => 1,
                PayloadKind::XorBase => 2,
            });
            e.put_u64(s.stored_len);
            e.put_u64(s.section_len);
            e.put_raw(&s.section_sha.0);
            e.put_varint(s.chunks.len() as u64);
            for c in &s.chunks {
                e.put_raw(&c.hash.0);
                e.put_u32(c.len);
            }
        }
        let crc = crc32(e.as_bytes());
        e.put_u32(crc);
        e.into_bytes()
    }

    /// Parses and verifies a framed manifest.
    ///
    /// # Errors
    ///
    /// Fails on bad magic, unsupported version, CRC mismatch (torn write /
    /// bit rot) or structural decode errors.
    pub fn decode(data: &[u8]) -> Result<Manifest> {
        if data.len() < MANIFEST_MAGIC.len() + 4 + 4 {
            return Err(Error::corrupt("manifest", "file too short"));
        }
        let (body, crc_bytes) = data.split_at(data.len() - 4);
        let stored_crc =
            u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
        let actual_crc = crc32(body);
        if stored_crc != actual_crc {
            return Err(Error::corrupt(
                "manifest",
                format!("crc mismatch: stored {stored_crc:08x}, actual {actual_crc:08x}"),
            ));
        }
        let mut d = Decoder::new(body, "manifest");
        let magic = d.get_raw(MANIFEST_MAGIC.len())?;
        if magic != MANIFEST_MAGIC {
            return Err(Error::corrupt("manifest", "bad magic"));
        }
        let version = d.get_u32()?;
        if version != FORMAT_VERSION {
            return Err(Error::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let id = CheckpointId(d.get_str()?);
        let step = d.get_u64()?;
        let kind = match d.get_u8()? {
            0 => CheckpointKind::Full,
            1 => CheckpointKind::Delta {
                base: CheckpointId(d.get_str()?),
            },
            other => {
                return Err(Error::corrupt(
                    "manifest",
                    format!("unknown checkpoint kind {other}"),
                ))
            }
        };
        let chain_len = d.get_u32()?;
        let created_unix_ms = d.get_u64()?;
        let mut sha = [0u8; 32];
        sha.copy_from_slice(d.get_raw(32)?);
        let snapshot_sha = ContentHash(sha);
        let n_sections = d.get_varint()? as usize;
        let mut sections = Vec::with_capacity(n_sections.min(1 << 16));
        for _ in 0..n_sections {
            let name = d.get_str()?;
            let codec = Compression::from_tag(d.get_u8()?)?;
            let payload_kind = match d.get_u8()? {
                0 => PayloadKind::Full,
                1 => PayloadKind::DeltaPatch,
                2 => PayloadKind::XorBase,
                other => {
                    return Err(Error::corrupt(
                        "manifest",
                        format!("unknown payload kind {other}"),
                    ))
                }
            };
            let stored_len = d.get_u64()?;
            let section_len = d.get_u64()?;
            let mut ssha = [0u8; 32];
            ssha.copy_from_slice(d.get_raw(32)?);
            let n_chunks = d.get_varint()? as usize;
            let mut chunks = Vec::with_capacity(n_chunks.min(1 << 20));
            for _ in 0..n_chunks {
                let mut ch = [0u8; 32];
                ch.copy_from_slice(d.get_raw(32)?);
                chunks.push(ChunkRef {
                    hash: ContentHash(ch),
                    len: d.get_u32()?,
                });
            }
            sections.push(SectionEntry {
                name,
                codec,
                payload_kind,
                stored_len,
                section_len,
                section_sha: ContentHash(ssha),
                chunks,
            });
        }
        d.finish()?;
        Ok(Manifest {
            id,
            step,
            kind,
            chain_len,
            created_unix_ms,
            snapshot_sha,
            sections,
        })
    }

    /// All chunk references across all sections.
    pub fn chunk_refs(&self) -> impl Iterator<Item = &ChunkRef> {
        self.sections.iter().flat_map(|s| s.chunks.iter())
    }

    /// Total stored (compressed) payload bytes referenced by this manifest.
    pub fn stored_bytes(&self) -> u64 {
        self.chunk_refs().map(|c| c.len as u64).sum()
    }

    /// Total resolved (logical) snapshot bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.sections.iter().map(|s| s.section_len).sum()
    }

    /// Whether this is a delta checkpoint.
    pub fn is_delta(&self) -> bool {
        matches!(self.kind, CheckpointKind::Delta { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Sha256;

    fn sample_manifest() -> Manifest {
        Manifest {
            id: CheckpointId::new(412, 7),
            step: 412,
            kind: CheckpointKind::Delta {
                base: CheckpointId::new(400, 6),
            },
            chain_len: 3,
            created_unix_ms: 1_765_000_000_000,
            snapshot_sha: Sha256::digest(b"whole snapshot"),
            sections: vec![
                SectionEntry {
                    name: "params".into(),
                    codec: Compression::XorF64,
                    payload_kind: PayloadKind::DeltaPatch,
                    stored_len: 900,
                    section_len: 8192,
                    section_sha: Sha256::digest(b"params bytes"),
                    chunks: vec![
                        ChunkRef {
                            hash: Sha256::digest(b"chunk0"),
                            len: 512,
                        },
                        ChunkRef {
                            hash: Sha256::digest(b"chunk1"),
                            len: 388,
                        },
                    ],
                },
                SectionEntry {
                    name: "meta".into(),
                    codec: Compression::None,
                    payload_kind: PayloadKind::Full,
                    stored_len: 64,
                    section_len: 64,
                    section_sha: Sha256::digest(b"meta bytes"),
                    chunks: vec![ChunkRef {
                        hash: Sha256::digest(b"meta chunk"),
                        len: 64,
                    }],
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = sample_manifest();
        let bytes = m.encode();
        let back = Manifest::decode(&bytes).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn ids_order_like_steps() {
        let a = CheckpointId::new(5, 0);
        let b = CheckpointId::new(40, 0);
        let c = CheckpointId::new(40, 1);
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a.file_name(), "ckpt-0000000005-000000.qmf");
    }

    #[test]
    fn crc_detects_any_single_bitflip() {
        let bytes = sample_manifest().encode();
        for i in (0..bytes.len()).step_by(37) {
            let mut broken = bytes.clone();
            broken[i] ^= 0x40;
            assert!(
                Manifest::decode(&broken).is_err(),
                "bit flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = sample_manifest().encode();
        for cut in [0, 1, 5, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(Manifest::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_manifest().encode();
        bytes[0] = b'X';
        let err = Manifest::decode(&bytes).unwrap_err();
        // CRC catches it first (magic is under the CRC), either way: corrupt.
        assert!(err.is_integrity_failure());
    }

    #[test]
    fn future_version_is_rejected_with_clear_error() {
        let mut m = sample_manifest();
        m.sections.clear();
        let mut bytes = m.encode();
        // Patch the version field (bytes 6..10) and re-frame the CRC.
        bytes.truncate(bytes.len() - 4);
        bytes[6..10].copy_from_slice(&99u32.to_le_bytes());
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        match Manifest::decode(&bytes) {
            Err(Error::UnsupportedVersion {
                found: 99,
                supported,
            }) => {
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn aggregates() {
        let m = sample_manifest();
        assert_eq!(m.stored_bytes(), 512 + 388 + 64);
        assert_eq!(m.logical_bytes(), 8192 + 64);
        assert_eq!(m.chunk_refs().count(), 3);
        assert!(m.is_delta());
    }

    #[test]
    fn full_manifest_round_trip() {
        let mut m = sample_manifest();
        m.kind = CheckpointKind::Full;
        m.chain_len = 0;
        let back = Manifest::decode(&m.encode()).unwrap();
        assert!(!back.is_delta());
        assert_eq!(back.chain_len, 0);
    }

    #[test]
    fn empty_sections_round_trip() {
        let mut m = sample_manifest();
        m.sections.clear();
        let back = Manifest::decode(&m.encode()).unwrap();
        assert!(back.sections.is_empty());
    }

    #[test]
    fn determinism() {
        assert_eq!(sample_manifest().encode(), sample_manifest().encode());
    }
}
