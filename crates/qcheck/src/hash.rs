//! Content hashing: SHA-256 (content addressing) and CRC32 (frame checks).
//!
//! Implemented in-repo — no hashing crates are in the dependency budget —
//! and validated against published test vectors. SHA-256 addresses chunks in
//! the object store; CRC32 (IEEE 802.3) frames manifests so that torn writes
//! are detected cheaply before the full SHA check runs.
//!
//! ## Hardware backend
//!
//! Whole 64-byte blocks route through [`qsimd::sha256_compress_blocks`],
//! which uses the SHA-NI extensions when the CPU has them (and
//! `QSIM_SIMD` is not forcing `scalar`) and otherwise declines, leaving
//! the portable compression loop below as the oracle. The buffering and
//! length bookkeeping are backend-independent, so a stream may resume
//! across the scalar/hardware seam at any block boundary and still
//! produce the same digest — `tests/hash_accel.rs` pins that property.
//! This keeps `qcheck` itself `unsafe`-free: every intrinsic lives in the
//! `qsimd` shim crate.

use std::fmt;

use serde::{Deserialize, Serialize};

/// SHA-256 round constants.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use qcheck::hash::Sha256;
///
/// let digest = Sha256::digest(b"abc");
/// assert_eq!(
///     digest.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buffer: [0; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// One-shot digest of a byte slice.
    pub fn digest(data: &[u8]) -> ContentHash {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Digests many independent buffers, fanning out across `threads`
    /// scoped worker threads. Output order matches input order, so the
    /// result is identical to mapping [`Sha256::digest`] serially — this is
    /// the primitive behind parallel chunk hashing in the checkpoint
    /// encode path.
    pub fn digest_many(buffers: Vec<&[u8]>, threads: usize) -> Vec<ContentHash> {
        qpar::map_threads(threads, buffers, Sha256::digest)
    }

    /// Feeds bytes into the hasher.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress_blocks(&block);
                self.buffer_len = 0;
            }
        }
        let whole = data.len() - data.len() % 64;
        if whole > 0 {
            self.compress_blocks(&data[..whole]);
            data = &data[whole..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Consumes the hasher and returns the digest.
    pub fn finalize(mut self) -> ContentHash {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zeros until 8 bytes remain in the block.
        self.update_padding(0x80);
        while self.buffer_len != 56 {
            self.update_padding(0x00);
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&bit_len.to_be_bytes());
        for b in len_bytes {
            self.update_padding(b);
        }
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        ContentHash(out)
    }

    fn update_padding(&mut self, byte: u8) {
        self.buffer[self.buffer_len] = byte;
        self.buffer_len += 1;
        if self.buffer_len == 64 {
            let block = self.buffer;
            self.compress_blocks(&block);
            self.buffer_len = 0;
        }
    }

    /// Compresses a run of whole 64-byte blocks, preferring the hardware
    /// backend. The portable [`Sha256::compress`] loop below stays the
    /// oracle; `qsimd` declines (returns `false`) when SHA extensions are
    /// missing or `QSIM_SIMD=scalar` forces the reference path.
    fn compress_blocks(&mut self, blocks: &[u8]) {
        debug_assert_eq!(blocks.len() % 64, 0);
        if qsimd::sha256_compress_blocks(&mut self.state, blocks) {
            return;
        }
        let mut block = [0u8; 64];
        for chunk in blocks.chunks_exact(64) {
            block.copy_from_slice(chunk);
            self.compress(&block);
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, wi) in w.iter_mut().take(16).enumerate() {
            *wi = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        // One round with the working variables renamed in place of the
        // textbook rotate-all-eight shuffle: the register rotation is
        // expressed through the caller's argument order, which keeps every
        // round a straight dependency chain the optimizer can schedule.
        macro_rules! round {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $i:expr) => {
                let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
                let ch = ($e & $f) ^ ((!$e) & $g);
                let t1 = $h
                    .wrapping_add(s1)
                    .wrapping_add(ch)
                    .wrapping_add(K[$i])
                    .wrapping_add(w[$i]);
                let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
                let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
                $d = $d.wrapping_add(t1);
                $h = t1.wrapping_add(s0.wrapping_add(maj));
            };
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for base in (0..64).step_by(8) {
            round!(a, b, c, d, e, f, g, h, base);
            round!(h, a, b, c, d, e, f, g, base + 1);
            round!(g, h, a, b, c, d, e, f, base + 2);
            round!(f, g, h, a, b, c, d, e, base + 3);
            round!(e, f, g, h, a, b, c, d, base + 4);
            round!(d, e, f, g, h, a, b, c, base + 5);
            round!(c, d, e, f, g, h, a, b, base + 6);
            round!(b, c, d, e, f, g, h, a, base + 7);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// A SHA-256 digest used as a content address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContentHash(pub [u8; 32]);

impl ContentHash {
    /// Lowercase hex rendering (64 characters).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
        }
        s
    }

    /// Parses a 64-character hex string.
    ///
    /// # Errors
    ///
    /// Returns `None` on wrong length or non-hex characters.
    pub fn from_hex(s: &str) -> Option<ContentHash> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        let bytes = s.as_bytes();
        for (i, o) in out.iter_mut().enumerate() {
            let hi = (bytes[i * 2] as char).to_digit(16)?;
            let lo = (bytes[i * 2 + 1] as char).to_digit(16)?;
            *o = ((hi << 4) | lo) as u8;
        }
        Some(ContentHash(out))
    }

    /// Two-character prefix used for object-store fan-out directories.
    pub fn dir_prefix(&self) -> String {
        self.to_hex()[..2].to_string()
    }

    /// Remainder of the hex name after the directory prefix.
    pub fn file_suffix(&self) -> String {
        self.to_hex()[2..].to_string()
    }
}

impl fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ContentHash({})", &self.to_hex()[..12])
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental CRC32: feed `state` from a previous call (start with
/// `0xFFFF_FFFF` and xor the final state with `0xFFFF_FFFF`).
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state ^= b as u32;
        for _ in 0..8 {
            let mask = (state & 1).wrapping_neg();
            state = (state >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_empty_vector() {
        assert_eq!(
            Sha256::digest(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc_vector() {
        assert_eq!(
            Sha256::digest(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_vector() {
        assert_eq!(
            Sha256::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            Sha256::digest(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_streaming_matches_oneshot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Sha256::digest(&data);
        for chunk_size in [1usize, 3, 63, 64, 65, 1000] {
            let mut h = Sha256::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let h = Sha256::digest(b"round trip");
        let hex = h.to_hex();
        assert_eq!(ContentHash::from_hex(&hex), Some(h));
        assert_eq!(ContentHash::from_hex("zz"), None);
        assert_eq!(ContentHash::from_hex(&hex[..60]), None);
        let mut bad = hex.clone();
        bad.replace_range(0..1, "g");
        assert_eq!(ContentHash::from_hex(&bad), None);
    }

    #[test]
    fn dir_layout_helpers() {
        let h = Sha256::digest(b"x");
        assert_eq!(h.dir_prefix().len(), 2);
        assert_eq!(h.file_suffix().len(), 62);
        assert_eq!(format!("{}{}", h.dir_prefix(), h.file_suffix()), h.to_hex());
    }

    #[test]
    fn crc32_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_incremental_matches() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let whole = crc32(data);
        let mut st = 0xFFFF_FFFFu32;
        st = crc32_update(st, &data[..10]);
        st = crc32_update(st, &data[10..]);
        assert_eq!(st ^ 0xFFFF_FFFF, whole);
    }

    #[test]
    fn different_inputs_different_digests() {
        assert_ne!(Sha256::digest(b"a"), Sha256::digest(b"b"));
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn display_and_debug() {
        let h = Sha256::digest(b"abc");
        assert_eq!(h.to_string().len(), 64);
        assert!(format!("{h:?}").starts_with("ContentHash(ba7816bf"));
    }
}
