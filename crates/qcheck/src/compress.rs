//! Section compression codecs.
//!
//! Three codecs are implemented, all in-repo:
//!
//! * [`Compression::None`] — identity.
//! * [`Compression::Rle`] — byte-level run-length encoding; wins on
//!   low-entropy sections (zeroed optimizer moments at step 0, padding).
//! * [`Compression::XorF64`] — Gorilla-style: interpret the payload as a
//!   stream of little-endian f64 words, XOR each with its predecessor and
//!   emit only the non-zero middle bytes. Adjacent parameters (and a
//!   parameter vs its value one step ago, via delta checkpoints) share sign,
//!   exponent and leading mantissa bits late in training, so the XOR stream
//!   is sparse — this is the codec behind experiment R-T3.
//!
//! Every codec is self-framing and validates on decompression.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// Compression codec identifier, recorded per-section in the manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Compression {
    /// Identity codec.
    None,
    /// Byte-level run-length encoding.
    Rle,
    /// XOR-of-consecutive-f64 with zero-byte elision.
    XorF64,
    /// Zero-byte elision on raw 8-byte words (no predecessor XOR). The
    /// codec for XOR-against-base delta payloads, whose words are already
    /// sparse: only the bytes that differ from the base survive the XOR.
    ZeroElideF64,
}

impl Compression {
    /// Stable numeric tag used in the on-disk format.
    pub fn tag(&self) -> u8 {
        match self {
            Compression::None => 0,
            Compression::Rle => 1,
            Compression::XorF64 => 2,
            Compression::ZeroElideF64 => 3,
        }
    }

    /// Parses a numeric tag.
    ///
    /// # Errors
    ///
    /// Returns a decode error on unknown tags.
    pub fn from_tag(tag: u8) -> Result<Self> {
        match tag {
            0 => Ok(Compression::None),
            1 => Ok(Compression::Rle),
            2 => Ok(Compression::XorF64),
            3 => Ok(Compression::ZeroElideF64),
            other => Err(Error::Decode {
                what: "compression tag".into(),
                offset: 0,
                detail: format!("unknown codec tag {other}"),
            }),
        }
    }

    /// Compresses `data` with this codec.
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        match self {
            Compression::None => data.to_vec(),
            Compression::Rle => rle_compress(data),
            Compression::XorF64 => word_compress(data, true),
            Compression::ZeroElideF64 => word_compress(data, false),
        }
    }

    /// Decompresses a payload produced by [`Compression::compress`].
    ///
    /// # Errors
    ///
    /// Returns a decode error on malformed input.
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u8>> {
        match self {
            Compression::None => Ok(data.to_vec()),
            Compression::Rle => rle_decompress(data),
            Compression::XorF64 => word_decompress(data, true),
            Compression::ZeroElideF64 => word_decompress(data, false),
        }
    }

    /// All codecs, for sweep experiments.
    pub fn all() -> [Compression; 4] {
        [
            Compression::None,
            Compression::Rle,
            Compression::XorF64,
            Compression::ZeroElideF64,
        ]
    }
}

impl std::fmt::Display for Compression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Compression::None => write!(f, "none"),
            Compression::Rle => write!(f, "rle"),
            Compression::XorF64 => write!(f, "xor-f64"),
            Compression::ZeroElideF64 => write!(f, "zero-elide-f64"),
        }
    }
}

// ---------------------------------------------------------------------------
// RLE
// ---------------------------------------------------------------------------

/// Byte-level RLE with a two-mode framing:
/// `[0x00, count, byte]` encodes a run of `count` (1–255) equal bytes;
/// `[0x01, count, b0..bn]` encodes a literal span of `count` bytes.
/// Input length is prefixed as LEB128 for validation.
fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    // varint length prefix
    let mut v = data.len() as u64;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
    let mut i = 0usize;
    let mut literal: Vec<u8> = Vec::new();
    let flush_literal = |out: &mut Vec<u8>, lit: &mut Vec<u8>| {
        for chunk in lit.chunks(255) {
            out.push(0x01);
            out.push(chunk.len() as u8);
            out.extend_from_slice(chunk);
        }
        lit.clear();
    };
    while i < data.len() {
        // Measure the run starting at i.
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 255 {
            run += 1;
        }
        if run >= 4 {
            flush_literal(&mut out, &mut literal);
            out.push(0x00);
            out.push(run as u8);
            out.push(b);
            i += run;
        } else {
            literal.extend_from_slice(&data[i..i + run]);
            i += run;
        }
    }
    flush_literal(&mut out, &mut literal);
    out
}

fn rle_decompress(data: &[u8]) -> Result<Vec<u8>> {
    let fail = |offset: usize, detail: &str| Error::Decode {
        what: "rle payload".into(),
        offset,
        detail: detail.into(),
    };
    let mut pos = 0usize;
    // varint length
    let mut expected = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(pos).ok_or_else(|| fail(pos, "truncated length"))?;
        pos += 1;
        if shift >= 64 {
            return Err(fail(pos, "length varint overflow"));
        }
        expected |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    let expected = expected as usize;
    let mut out = Vec::with_capacity(expected);
    while pos < data.len() {
        let mode = data[pos];
        pos += 1;
        match mode {
            0x00 => {
                let count = *data
                    .get(pos)
                    .ok_or_else(|| fail(pos, "truncated run count"))?
                    as usize;
                let byte = *data
                    .get(pos + 1)
                    .ok_or_else(|| fail(pos, "truncated run byte"))?;
                pos += 2;
                if count == 0 {
                    return Err(fail(pos, "zero-length run"));
                }
                out.resize(out.len() + count, byte);
            }
            0x01 => {
                let count = *data
                    .get(pos)
                    .ok_or_else(|| fail(pos, "truncated literal count"))?
                    as usize;
                pos += 1;
                if count == 0 {
                    return Err(fail(pos, "zero-length literal"));
                }
                if pos + count > data.len() {
                    return Err(fail(pos, "truncated literal bytes"));
                }
                out.extend_from_slice(&data[pos..pos + count]);
                pos += count;
            }
            other => return Err(fail(pos, &format!("unknown rle mode byte {other:#x}"))),
        }
        if out.len() > expected {
            return Err(fail(pos, "output exceeds declared length"));
        }
    }
    if out.len() != expected {
        return Err(fail(
            pos,
            &format!("declared {expected} bytes, produced {}", out.len()),
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// XOR-f64
// ---------------------------------------------------------------------------

/// Word-codec framing (shared by `XorF64` and `ZeroElideF64`):
/// `varint(total_len)` then, per 8-byte word: a control byte
/// `(lead_zero_bytes << 4) | meaningful_byte_count`, followed by the
/// meaningful bytes of the coded word (`word_i XOR word_{i-1}` when
/// `predecessor_xor` is set, the raw word otherwise — bytes taken
/// little-endian from the first non-zero to the last non-zero). A fully
/// zero coded word emits the single control byte `0x00`. Trailing bytes
/// that do not fill a word are stored raw.
fn word_compress(data: &[u8], predecessor_xor: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut v = data.len() as u64;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
    let words = data.len() / 8;
    let mut prev = 0u64;
    for w in 0..words {
        let mut b = [0u8; 8];
        b.copy_from_slice(&data[w * 8..w * 8 + 8]);
        let cur = u64::from_le_bytes(b);
        let xor = if predecessor_xor { cur ^ prev } else { cur };
        prev = cur;
        if xor == 0 {
            out.push(0x00);
            continue;
        }
        let xb = xor.to_le_bytes();
        let first = xb.iter().position(|&x| x != 0).expect("nonzero");
        let last = xb.iter().rposition(|&x| x != 0).expect("nonzero");
        let count = last - first + 1;
        out.push(((first as u8) << 4) | count as u8);
        out.extend_from_slice(&xb[first..=last]);
    }
    // Trailing partial word, raw.
    out.extend_from_slice(&data[words * 8..]);
    out
}

fn word_decompress(data: &[u8], predecessor_xor: bool) -> Result<Vec<u8>> {
    let fail = |offset: usize, detail: &str| Error::Decode {
        what: "word-codec payload".into(),
        offset,
        detail: detail.into(),
    };
    let mut pos = 0usize;
    let mut expected = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(pos).ok_or_else(|| fail(pos, "truncated length"))?;
        pos += 1;
        if shift >= 64 {
            return Err(fail(pos, "length varint overflow"));
        }
        expected |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    let expected = expected as usize;
    let words = expected / 8;
    let tail = expected % 8;
    let mut out = Vec::with_capacity(expected);
    let mut prev = 0u64;
    for w in 0..words {
        let ctrl = *data
            .get(pos)
            .ok_or_else(|| fail(pos, &format!("truncated control byte for word {w}")))?;
        pos += 1;
        let base = if predecessor_xor { prev } else { 0 };
        let cur = if ctrl == 0 {
            base
        } else {
            let first = (ctrl >> 4) as usize;
            let count = (ctrl & 0x0f) as usize;
            if count == 0 || first + count > 8 {
                return Err(fail(pos, &format!("invalid control byte {ctrl:#x}")));
            }
            if pos + count > data.len() {
                return Err(fail(pos, "truncated coded bytes"));
            }
            let mut xb = [0u8; 8];
            xb[first..first + count].copy_from_slice(&data[pos..pos + count]);
            pos += count;
            base ^ u64::from_le_bytes(xb)
        };
        prev = cur;
        out.extend_from_slice(&cur.to_le_bytes());
    }
    if pos + tail != data.len() {
        return Err(fail(
            pos,
            &format!("expected {tail} trailing bytes, found {}", data.len() - pos),
        ));
    }
    out.extend_from_slice(&data[pos..]);
    Ok(out)
}

/// Compresses many independent `(codec, payload)` pairs on `threads`
/// scoped worker threads, preserving input order. Each output is
/// byte-identical to `codec.compress(payload)` run serially.
///
/// Standalone fan-out primitive (benches, external pipelines). The save
/// path in [`crate::repo`] parallelizes at the section level too, but
/// inline — its per-section work also includes delta-candidate selection,
/// not just one codec call.
pub fn compress_sections(jobs: Vec<(Compression, &[u8])>, threads: usize) -> Vec<Vec<u8>> {
    qpar::map_threads(threads, jobs, |(codec, data)| codec.compress(data))
}

/// Compression outcome statistics, for the evaluation tables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompressionStats {
    /// Input size in bytes.
    pub raw_bytes: usize,
    /// Output size in bytes.
    pub compressed_bytes: usize,
}

impl CompressionStats {
    /// Measures a codec on a payload (round-trip validated).
    ///
    /// # Panics
    ///
    /// Panics if the round trip fails — that is a codec bug, not an input
    /// condition.
    pub fn measure(codec: Compression, data: &[u8]) -> CompressionStats {
        let compressed = codec.compress(data);
        let back = codec.decompress(&compressed).expect("codec round trip");
        assert_eq!(back, data, "codec round trip mismatch");
        CompressionStats {
            raw_bytes: data.len(),
            compressed_bytes: compressed.len(),
        }
    }

    /// `raw / compressed`; >1 means the codec saved space.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            return 1.0;
        }
        self.raw_bytes as f64 / self.compressed_bytes as f64
    }
}

/// Packs a f64 slice into little-endian bytes (helper for callers measuring
/// parameter-stream compression).
pub fn f64s_to_bytes(xs: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * 8);
    for x in xs {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    out
}

/// Unpacks little-endian bytes into f64s.
///
/// # Errors
///
/// Fails when the byte count is not a multiple of 8.
pub fn bytes_to_f64s(bytes: &[u8]) -> Result<Vec<f64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(Error::Decode {
            what: "f64 byte stream".into(),
            offset: bytes.len(),
            detail: format!("length {} not a multiple of 8", bytes.len()),
        });
    }
    let mut out = Vec::with_capacity(bytes.len() / 8);
    for w in bytes.chunks_exact(8) {
        let mut b = [0u8; 8];
        b.copy_from_slice(w);
        out.push(f64::from_bits(u64::from_le_bytes(b)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(codec: Compression, data: &[u8]) {
        let c = codec.compress(data);
        let d = codec.decompress(&c).unwrap();
        assert_eq!(d, data, "{codec} failed on {} bytes", data.len());
    }

    #[test]
    fn all_codecs_round_trip_edge_cases() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![1, 2, 3],
            vec![0; 1000],
            vec![0xFF; 257],
            (0..=255u8).collect(),
            (0..2048u32).map(|i| (i * 31 % 251) as u8).collect(),
            vec![7; 3],
        ];
        for codec in Compression::all() {
            for case in &cases {
                round_trip(codec, case);
            }
        }
    }

    #[test]
    fn rle_compresses_runs() {
        let data = vec![0u8; 4096];
        let c = Compression::Rle.compress(&data);
        assert!(c.len() < 100, "rle on zeros: {} bytes", c.len());
    }

    #[test]
    fn rle_handles_incompressible_data() {
        let data: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        round_trip(Compression::Rle, &data);
        // Overhead stays bounded (≤ ~1 byte per 255-byte literal + header).
        let c = Compression::Rle.compress(&data);
        assert!(c.len() < data.len() + data.len() / 64 + 16);
    }

    #[test]
    fn xor_f64_wins_on_slowly_varying_parameters() {
        // A parameter vector late in training: values clustered, tiny updates
        // (neighbours agree on sign, exponent and the top mantissa bytes).
        // Centre at 0.6, not 0.5: straddling a power of two flips the
        // exponent bits and defeats XOR locality.
        let params: Vec<f64> = (0..512).map(|i| 0.6 + 1e-13 * (i as f64).sin()).collect();
        let bytes = f64s_to_bytes(&params);
        let xor = Compression::XorF64.compress(&bytes);
        assert!(
            xor.len() < bytes.len() / 2,
            "xor-f64 {} vs raw {}",
            xor.len(),
            bytes.len()
        );
        round_trip(Compression::XorF64, &bytes);
    }

    #[test]
    fn xor_f64_on_identical_values_is_tiny() {
        let params = vec![0.123456789f64; 1024];
        let bytes = f64s_to_bytes(&params);
        let xor = Compression::XorF64.compress(&bytes);
        // First word costs ≤ 9 bytes, every repeat costs 1 control byte.
        assert!(xor.len() <= 16 + 1024, "{}", xor.len());
        round_trip(Compression::XorF64, &bytes);
    }

    #[test]
    fn xor_f64_handles_non_word_tail() {
        let mut bytes = f64s_to_bytes(&[1.0, 2.0, 3.0]);
        bytes.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
        round_trip(Compression::XorF64, &bytes);
    }

    #[test]
    fn xor_f64_preserves_nan_and_inf_bits() {
        let xs = vec![
            f64::NAN,
            f64::from_bits(0x7ff8_0000_dead_beef),
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            0.0,
        ];
        let bytes = f64s_to_bytes(&xs);
        let c = Compression::XorF64.compress(&bytes);
        let d = Compression::XorF64.decompress(&c).unwrap();
        assert_eq!(d, bytes);
    }

    #[test]
    fn corrupted_payloads_are_rejected_not_garbage() {
        let data: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        for codec in [Compression::Rle, Compression::XorF64] {
            let mut c = codec.compress(&data);
            // Truncate.
            c.truncate(c.len() / 2);
            match codec.decompress(&c) {
                Err(e) => assert!(e.is_integrity_failure(), "{codec}"),
                Ok(d) => assert_ne!(d, data, "{codec} silently accepted truncation"),
            }
        }
    }

    #[test]
    fn rle_rejects_bad_mode_byte() {
        let mut c = Compression::Rle.compress(&[1, 2, 3, 4, 5]);
        // Find a mode byte (first byte after the varint length) and break it.
        c[1] = 0x7E;
        assert!(Compression::Rle.decompress(&c).is_err());
    }

    #[test]
    fn tags_round_trip() {
        for codec in Compression::all() {
            assert_eq!(Compression::from_tag(codec.tag()).unwrap(), codec);
        }
        assert!(Compression::from_tag(200).is_err());
    }

    #[test]
    fn stats_ratio() {
        let zeros = vec![0u8; 8192];
        let s = CompressionStats::measure(Compression::Rle, &zeros);
        assert!(s.ratio() > 50.0);
        let s = CompressionStats::measure(Compression::None, &zeros);
        assert!((s.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f64_byte_helpers() {
        let xs = vec![1.5, -2.25, 0.0];
        let bytes = f64s_to_bytes(&xs);
        assert_eq!(bytes.len(), 24);
        assert_eq!(bytes_to_f64s(&bytes).unwrap(), xs);
        assert!(bytes_to_f64s(&bytes[..23]).is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(Compression::XorF64.to_string(), "xor-f64");
        assert_eq!(Compression::Rle.to_string(), "rle");
        assert_eq!(Compression::None.to_string(), "none");
    }
}
