//! Failure injection for crash-consistency and corruption experiments.
//!
//! Two families of faults are modelled:
//!
//! * **Crash points** ([`CrashPoint`]) — the writer process dies at a chosen
//!   stage of the commit protocol. Under the atomic protocol every crash
//!   point must leave the repository recoverable to the *previous*
//!   checkpoint; under the naive in-place protocol some points corrupt it
//!   (experiment R-F8).
//! * **Storage faults** ([`StorageFault`]) — bytes rot, files truncate, or
//!   whole files vanish after a successful commit. These must always be
//!   *detected* (integrity errors, never silently wrong data) and recovery
//!   must fall back to an older intact checkpoint.

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// Stage of the commit protocol at which the simulated crash fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashPoint {
    /// After chunk objects are written but before the manifest exists.
    AfterChunkWrites,
    /// Mid-way through writing the manifest file; `keep_fraction_pct` percent
    /// of the manifest bytes reach the target file before the crash.
    MidManifestWrite {
        /// Percentage (0–100) of manifest bytes persisted.
        keep_fraction_pct: u8,
    },
    /// Manifest fully written, crash before the `LATEST` pointer moves.
    BeforeLatestSwing,
    /// Mid-way through writing the `LATEST` pointer (torn pointer).
    MidLatestWrite,
    /// Retention only: after tombstone records land durably in the local
    /// manifest log but before the deletes are mirrored to a shared
    /// backend — the interleaving that used to resurrect retired
    /// checkpoints on the next fresh-directory sync. Not part of
    /// [`CrashPoint::all`]; exercised by the retention crash tests.
    AfterRetireLocal,
}

impl CrashPoint {
    /// All crash points exercised by the evaluation, including torn writes.
    pub fn all() -> Vec<CrashPoint> {
        vec![
            CrashPoint::AfterChunkWrites,
            CrashPoint::MidManifestWrite {
                keep_fraction_pct: 25,
            },
            CrashPoint::MidManifestWrite {
                keep_fraction_pct: 75,
            },
            CrashPoint::BeforeLatestSwing,
            CrashPoint::MidLatestWrite,
        ]
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashPoint::AfterChunkWrites => write!(f, "after-chunk-writes"),
            CrashPoint::MidManifestWrite { keep_fraction_pct } => {
                write!(f, "mid-manifest-write({keep_fraction_pct}%)")
            }
            CrashPoint::BeforeLatestSwing => write!(f, "before-latest-swing"),
            CrashPoint::MidLatestWrite => write!(f, "mid-latest-write"),
            CrashPoint::AfterRetireLocal => write!(f, "after-retire-local"),
        }
    }
}

/// Post-commit storage faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageFault {
    /// Flip one bit in the file at (offset mod len).
    BitFlip {
        /// Byte offset seed.
        offset: u64,
    },
    /// Truncate the file to the given percentage of its length.
    Truncate {
        /// Percentage (0–100) of bytes kept.
        keep_pct: u8,
    },
    /// Delete the file entirely.
    Delete,
}

impl std::fmt::Display for StorageFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageFault::BitFlip { offset } => write!(f, "bit-flip@{offset}"),
            StorageFault::Truncate { keep_pct } => write!(f, "truncate({keep_pct}%)"),
            StorageFault::Delete => write!(f, "delete"),
        }
    }
}

/// Applies a storage fault to an arbitrary file.
///
/// # Errors
///
/// Fails when the target does not exist or cannot be rewritten.
pub fn inject_fault(path: &Path, fault: StorageFault) -> Result<()> {
    match fault {
        StorageFault::BitFlip { offset } => {
            let mut data =
                fs::read(path).map_err(|e| Error::io(format!("reading {}", path.display()), e))?;
            if data.is_empty() {
                return Err(Error::corrupt("fault target", "empty file"));
            }
            let i = (offset as usize) % data.len();
            data[i] ^= 0x01;
            fs::write(path, data)
                .map_err(|e| Error::io(format!("writing {}", path.display()), e))?;
        }
        StorageFault::Truncate { keep_pct } => {
            let data =
                fs::read(path).map_err(|e| Error::io(format!("reading {}", path.display()), e))?;
            let keep = data.len() * (keep_pct.min(100) as usize) / 100;
            fs::write(path, &data[..keep])
                .map_err(|e| Error::io(format!("writing {}", path.display()), e))?;
        }
        StorageFault::Delete => {
            fs::remove_file(path)
                .map_err(|e| Error::io(format!("deleting {}", path.display()), e))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(content: &[u8]) -> std::path::PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qcheck-fault-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        fs::write(&p, content).unwrap();
        p
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let p = temp_file(&[0u8; 64]);
        inject_fault(&p, StorageFault::BitFlip { offset: 130 }).unwrap();
        let data = fs::read(&p).unwrap();
        let ones: u32 = data.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
        assert_eq!(data[130 % 64], 1);
        let _ = fs::remove_file(p);
    }

    #[test]
    fn truncate_keeps_fraction() {
        let p = temp_file(&[7u8; 100]);
        inject_fault(&p, StorageFault::Truncate { keep_pct: 40 }).unwrap();
        assert_eq!(fs::read(&p).unwrap().len(), 40);
        let _ = fs::remove_file(p);
    }

    #[test]
    fn delete_removes_file() {
        let p = temp_file(b"x");
        inject_fault(&p, StorageFault::Delete).unwrap();
        assert!(!p.exists());
    }

    #[test]
    fn fault_on_missing_file_is_error() {
        let p = std::env::temp_dir().join("qcheck-fault-definitely-missing");
        assert!(inject_fault(&p, StorageFault::Delete).is_err());
        assert!(inject_fault(&p, StorageFault::BitFlip { offset: 0 }).is_err());
    }

    #[test]
    fn crash_points_display() {
        for cp in CrashPoint::all() {
            assert!(!cp.to_string().is_empty());
        }
        assert_eq!(
            CrashPoint::MidManifestWrite {
                keep_fraction_pct: 25
            }
            .to_string(),
            "mid-manifest-write(25%)"
        );
    }
}
