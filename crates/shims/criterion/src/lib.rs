//! Offline shim for the subset of `criterion` 0.5 the workspace's benches
//! use. Unlike the serde shim this one really measures: each benchmark is
//! warmed up, then timed in batches until a wall-clock budget is spent, and
//! the median per-iteration time is reported on stdout.
//!
//! Environment knobs:
//!
//! * `QCHECK_BENCH_QUICK=1` — shrink warmup/measurement budgets ~20× for
//!   smoke runs (also honored by the `qcheck-bench` experiment harness).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn quick() -> bool {
    std::env::var("QCHECK_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), None, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput used in the report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Hint for the number of samples (the shim maps it onto its time
    /// budget; very small values shrink the budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, self.throughput, self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.throughput, self.sample_size, &mut f);
        self
    }

    /// Ends the group (report lines are emitted eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Declared throughput of one benchmark iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing context handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    warmup: Duration,
    measure: Duration,
}

impl Bencher {
    /// Times `f`, recording per-iteration samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup and first calibration: count iterations in the warmup window.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Batch size targeting ~30 samples over the measurement budget.
        let budget = self.measure.as_secs_f64();
        let batch = ((budget / 30.0 / per_iter.max(1e-9)).ceil() as u64).max(1);
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure || self.samples_ns.is_empty() {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
    }
}

/// Formats a nanosecond figure with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_benchmark(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let (warm_ms, measure_ms) = if quick() { (10, 40) } else { (150, 900) };
    // A tiny declared sample size signals an expensive benchmark.
    let scale = match sample_size {
        Some(n) if n <= 10 => 0.5,
        _ => 1.0,
    };
    let mut b = Bencher {
        samples_ns: Vec::new(),
        warmup: Duration::from_millis((warm_ms as f64 * scale) as u64),
        measure: Duration::from_millis((measure_ms as f64 * scale) as u64),
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{label:<40} time:   [no samples]");
        return;
    }
    b.samples_ns.sort_by(|a, c| a.total_cmp(c));
    let median = b.samples_ns[b.samples_ns.len() / 2];
    let lo = b.samples_ns[0];
    let hi = b.samples_ns[b.samples_ns.len() - 1];
    let mut line = format!(
        "{label:<40} time:   [{} {} {}]",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi)
    );
    if let Some(tp) = throughput {
        let per_sec = match tp {
            Throughput::Bytes(n) => {
                format!("{:.1} MiB/s", n as f64 / (median / 1e9) / (1 << 20) as f64)
            }
            Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 / (median / 1e9)),
        };
        line.push_str(&format!("  thrpt: {per_sec}"));
    }
    println!("{line}");
}

/// Median per-iteration nanoseconds for a closure — programmatic entry point
/// used by the `qcheck-bench` binary to emit machine-readable timings.
pub fn measure_median_ns<R, F: FnMut() -> R>(mut f: F) -> f64 {
    let (warm_ms, measure_ms) = if quick() { (10, 40) } else { (150, 900) };
    let mut b = Bencher {
        samples_ns: Vec::new(),
        warmup: Duration::from_millis(warm_ms),
        measure: Duration::from_millis(measure_ms),
    };
    b.iter(&mut f);
    b.samples_ns.sort_by(|a, c| a.total_cmp(c));
    b.samples_ns[b.samples_ns.len() / 2]
}

/// Groups benchmark functions into one callable, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::set_var("QCHECK_BENCH_QUICK", "1");
        let ns = measure_median_ns(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(ns > 0.0);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("h_single", 16).label(), "h_single/16");
        assert_eq!(BenchmarkId::from_parameter(128).label(), "128");
    }
}
