//! Explicit-SIMD primitives behind runtime dispatch.
//!
//! This crate is the workspace's single home for `core::arch` intrinsics:
//! `qsim` (gate kernels, reductions) and `qcheck` (SHA-256) call the safe
//! wrappers here and stay `unsafe`-free themselves. Three rules govern
//! every kernel:
//!
//! 1. **Scalar is the oracle.** Every vector arm reproduces the scalar
//!    arm's per-element operation order exactly — multiplies and adds
//!    only, never FMA (contraction changes rounding), subtraction only as
//!    `a + (-b)` (bit-identical per IEEE 754). The property suites in
//!    `qsim` and `qcheck` pin vector == scalar on random inputs.
//! 2. **Dispatch is resolved by the caller, once, on the calling
//!    thread.** Kernels take an explicit [`Level`] so parallel executors
//!    resolve `QSIM_SIMD` (or a [`with_level`] test override) *before*
//!    fanning work out to pool threads that cannot see the caller's
//!    thread-local override.
//! 3. **Reductions use a fixed lane structure.** Horizontal sums are not
//!    order-preserving, so [`accumulate_sq`] defines one canonical
//!    4-lane accumulation (lane `i & 3`, combined by [`combine_lanes`])
//!    that the scalar, SSE2 and AVX2 arms all implement bit-identically.
//!
//! ## Selection
//!
//! `QSIM_SIMD={auto,scalar,sse2,avx2}` (default `auto`) caps the level;
//! the effective level is `min(requested, detected)`. On x86_64 SSE2 is
//! architecturally guaranteed, so `auto` is at least [`Level::Sse2`]
//! there; on other architectures every level resolves to
//! [`Level::Scalar`]. `QSIM_SIMD=scalar` also forces the scalar SHA-256
//! backend, keeping one switch for every accelerated path.

use std::cell::Cell;
use std::sync::OnceLock;

mod scalar;
#[cfg(target_arch = "x86_64")]
mod sha;
#[cfg(target_arch = "x86_64")]
mod x86;

/// Name of the environment variable selecting the SIMD level.
pub const SIMD_ENV: &str = "QSIM_SIMD";

/// Instruction-set tier a kernel call runs at. Ordered: a request above
/// the detected tier clamps down to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Plain scalar loops — the bit-exactness oracle.
    Scalar,
    /// 128-bit SSE2 (one complex amplitude per vector). Baseline on
    /// x86_64.
    Sse2,
    /// 256-bit AVX2 (two complex amplitudes per vector).
    Avx2,
}

impl Level {
    /// Lower-case name as accepted by `QSIM_SIMD` (`scalar`/`sse2`/`avx2`).
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Sse2 => "sse2",
            Level::Avx2 => "avx2",
        }
    }
}

/// SHA-256 compression backend in effect (see [`sha_backend`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShaBackend {
    /// The caller's portable compression loop.
    Scalar,
    /// Hardware SHA extensions (`sha256rnds2` et al.).
    ShaNi,
}

impl ShaBackend {
    /// Stable name for bench/report output.
    pub fn name(self) -> &'static str {
        match self {
            ShaBackend::Scalar => "scalar",
            ShaBackend::ShaNi => "sha-ni",
        }
    }
}

/// Highest SIMD level this CPU supports (cached after first probe).
pub fn detected() -> Level {
    static DETECTED: OnceLock<Level> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                Level::Avx2
            } else {
                // SSE2 is part of the x86_64 baseline.
                Level::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Level::Scalar
        }
    })
}

/// Whether the SHA extensions (plus the SSSE3/SSE4.1 shuffles the
/// round loop needs) are available.
fn sha_detected() -> bool {
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("sha")
                && std::arch::is_x86_feature_detected!("ssse3")
                && std::arch::is_x86_feature_detected!("sse4.1")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// `QSIM_SIMD` cap: `None` means `auto` (use whatever is detected).
fn env_cap() -> Option<Level> {
    static CAP: OnceLock<Option<Level>> = OnceLock::new();
    *CAP.get_or_init(
        || match std::env::var(SIMD_ENV).ok().as_deref().map(str::trim) {
            Some("scalar") => Some(Level::Scalar),
            Some("sse2") => Some(Level::Sse2),
            Some("avx2") => Some(Level::Avx2),
            _ => None,
        },
    )
}

thread_local! {
    /// 0 = inherit env, 1 = force scalar, 2 = cap at sse2, 3 = cap at avx2.
    static LOCAL_LEVEL: Cell<u8> = const { Cell::new(0) };
}

/// The SIMD level in effect on this thread: a [`with_level`] override
/// first, then the `QSIM_SIMD` cap, clamped to what the CPU supports.
///
/// Parallel callers must resolve this **before** fanning out: worker
/// threads do not inherit the caller's override.
pub fn active() -> Level {
    let cap = match LOCAL_LEVEL.with(Cell::get) {
        1 => Some(Level::Scalar),
        2 => Some(Level::Sse2),
        3 => Some(Level::Avx2),
        _ => env_cap(),
    };
    match cap {
        Some(l) => l.min(detected()),
        None => detected(),
    }
}

/// The SHA-256 backend in effect on this thread: hardware when the SHA
/// extensions exist and the SIMD switch is not forcing `scalar`.
pub fn sha_backend() -> ShaBackend {
    if sha_detected() && active() != Level::Scalar {
        ShaBackend::ShaNi
    } else {
        ShaBackend::Scalar
    }
}

/// Runs `f` with a thread-local SIMD-level override — the hook the
/// equivalence suites use to compare levels inside one process.
pub fn with_level<R>(level: Level, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_LEVEL.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_LEVEL.with(Cell::get);
    let _restore = Restore(prev);
    LOCAL_LEVEL.with(|c| {
        c.set(match level {
            Level::Scalar => 1,
            Level::Sse2 => 2,
            Level::Avx2 => 3,
        })
    });
    f()
}

/// Comma-separated list of the detected CPU features relevant to this
/// crate's kernels — stamped into the tracked bench JSON so cross-box
/// numbers are interpretable.
pub fn cpu_features() -> &'static str {
    static FEATURES: OnceLock<String> = OnceLock::new();
    FEATURES.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            let mut out = Vec::new();
            macro_rules! probe {
                ($($name:tt),*) => {
                    $(if std::arch::is_x86_feature_detected!($name) {
                        out.push($name);
                    })*
                };
            }
            probe!("sse2", "ssse3", "sse4.1", "avx", "avx2", "sha");
            out.join(",")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            String::from("none")
        }
    })
}

/// Compresses whole 64-byte blocks into a SHA-256 state with the
/// hardware backend. Returns `false` (without touching `state`) when the
/// active backend is scalar — the caller then runs its own portable
/// loop, which stays the oracle.
///
/// # Panics
///
/// Panics when `blocks.len()` is not a multiple of 64.
pub fn sha256_compress_blocks(state: &mut [u32; 8], blocks: &[u8]) -> bool {
    assert_eq!(blocks.len() % 64, 0, "partial SHA-256 block");
    if sha_backend() != ShaBackend::ShaNi {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    // SAFETY: sha_backend() returned ShaNi, so the sha/ssse3/sse4.1
    // features were runtime-detected on this CPU.
    unsafe {
        sha::compress_blocks_shani(state, blocks);
    }
    true
}

/// 2×2 complex dense apply: `(lo[k], hi[k]) ← M · (lo[k], hi[k])` over
/// flattened `[re, im]` pairs. `m` is the row-major flattened matrix
/// `[m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i]`; `lo`/`hi` are
/// equal-length slices of even length.
pub fn apply2_dense(level: Level, m: &[f64; 8], lo: &mut [f64], hi: &mut [f64]) {
    debug_assert_eq!(lo.len(), hi.len());
    debug_assert_eq!(lo.len() % 2, 0);
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is the x86_64 baseline; AVX2 arms are only
        // reachable when `active()`/`detected()` clamped the level to a
        // runtime-verified feature set.
        Level::Sse2 => unsafe { x86::apply2_dense_sse2(m, lo, hi) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { x86::apply2_dense_avx2(m, lo, hi) },
        _ => scalar::apply2_dense(m, lo, hi),
    }
}

/// 2×2 real dense apply (all matrix entries real):
/// `m = [m00, m01, m10, m11]`.
pub fn apply2_real(level: Level, m: &[f64; 4], lo: &mut [f64], hi: &mut [f64]) {
    debug_assert_eq!(lo.len(), hi.len());
    debug_assert_eq!(lo.len() % 2, 0);
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see apply2_dense.
        Level::Sse2 => unsafe { x86::apply2_real_sse2(m, lo, hi) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { x86::apply2_real_avx2(m, lo, hi) },
        _ => scalar::apply2_real(m, lo, hi),
    }
}

/// 2×2 complex dense apply over adjacent pairs: `xs` is a flattened run
/// of `[a0, a1]` amplitude pairs (4 doubles per pair), the qubit-0
/// layout where `lo`/`hi` interleave.
pub fn apply2_adjacent(level: Level, m: &[f64; 8], xs: &mut [f64]) {
    debug_assert_eq!(xs.len() % 4, 0);
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see apply2_dense.
        Level::Sse2 => unsafe { x86::apply2_adjacent_sse2(m, xs) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { x86::apply2_adjacent_avx2(m, xs) },
        _ => scalar::apply2_adjacent(m, xs),
    }
}

/// Real-matrix variant of [`apply2_adjacent`].
pub fn apply2_adjacent_real(level: Level, m: &[f64; 4], xs: &mut [f64]) {
    debug_assert_eq!(xs.len() % 4, 0);
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see apply2_dense.
        Level::Sse2 => unsafe { x86::apply2_adjacent_real_sse2(m, xs) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { x86::apply2_adjacent_real_avx2(m, xs) },
        _ => scalar::apply2_adjacent_real(m, xs),
    }
}

/// Complex scale in place: `x[k] ← c · x[k]` over flattened pairs.
pub fn scale(level: Level, xs: &mut [f64], cr: f64, ci: f64) {
    debug_assert_eq!(xs.len() % 2, 0);
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see apply2_dense.
        Level::Sse2 => unsafe { x86::scale_sse2(xs, cr, ci) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { x86::scale_avx2(xs, cr, ci) },
        _ => scalar::scale(xs, cr, ci),
    }
}

/// Scaled swap: `(si[k], sj[k]) ← (ci · sj[k], cj · si[k])` over
/// flattened pairs — the transposition-kernel body.
pub fn swap_scale(level: Level, si: &mut [f64], sj: &mut [f64], ci: (f64, f64), cj: (f64, f64)) {
    debug_assert_eq!(si.len(), sj.len());
    debug_assert_eq!(si.len() % 2, 0);
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see apply2_dense.
        Level::Sse2 => unsafe { x86::swap_scale_sse2(si, sj, ci, cj) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { x86::swap_scale_avx2(si, sj, ci, cj) },
        _ => scalar::swap_scale(si, sj, ci, cj),
    }
}

/// 4×4 complex dense apply over four aligned quad slices. `m` is the
/// row-major flattened matrix (32 doubles); each output row is
/// `((m_r0·a0 + m_r1·a1) + m_r2·a2) + m_r3·a3` in that association.
pub fn apply4_dense(
    level: Level,
    m: &[f64; 32],
    s00: &mut [f64],
    s01: &mut [f64],
    s10: &mut [f64],
    s11: &mut [f64],
) {
    debug_assert_eq!(s00.len(), s01.len());
    debug_assert_eq!(s00.len(), s10.len());
    debug_assert_eq!(s00.len(), s11.len());
    debug_assert_eq!(s00.len() % 2, 0);
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see apply2_dense.
        Level::Sse2 => unsafe { x86::apply4_dense_sse2(m, s00, s01, s10, s11) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { x86::apply4_dense_avx2(m, s00, s01, s10, s11) },
        _ => scalar::apply4_dense(m, s00, s01, s10, s11),
    }
}

/// Accumulates `x²` into four fixed lanes: element `xs[k]` lands in
/// `lanes[k & 3]`, in index order. Every level produces identical bits —
/// this lane structure (not a sequential fold) is the determinism
/// contract for vectorized sum-of-squares reductions. Callers keep the
/// lanes across calls and fold them once with [`combine_lanes`].
pub fn accumulate_sq(level: Level, lanes: &mut [f64; 4], xs: &[f64]) {
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see apply2_dense.
        Level::Sse2 => unsafe { x86::accumulate_sq_sse2(lanes, xs) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { x86::accumulate_sq_avx2(lanes, xs) },
        _ => scalar::accumulate_sq(lanes, xs),
    }
}

/// Folds the four reduction lanes in the canonical order
/// `(l0 + l2) + (l1 + l3)` — the order a 128-bit horizontal sum of two
/// paired accumulators produces, fixed here so every level agrees.
pub fn combine_lanes(lanes: [f64; 4]) -> f64 {
    (lanes[0] + lanes[2]) + (lanes[1] + lanes[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random doubles in ±1 (splitmix64 bits).
    fn fill(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                (z as f64 / u64::MAX as f64) * 2.0 - 1.0
            })
            .collect()
    }

    fn levels() -> Vec<Level> {
        let mut l = vec![Level::Scalar, Level::Sse2.min(detected())];
        l.push(detected());
        l.dedup();
        l
    }

    #[test]
    fn level_parsing_and_clamp() {
        assert!(detected() >= Level::Scalar);
        assert_eq!(with_level(Level::Scalar, active), Level::Scalar);
        let capped = with_level(Level::Sse2, active);
        assert!(capped <= Level::Sse2);
    }

    #[test]
    fn apply2_variants_match_scalar_bits() {
        let m: [f64; 8] = fill(1, 8).try_into().unwrap();
        let mr: [f64; 4] = fill(2, 4).try_into().unwrap();
        for n in [2usize, 4, 6, 8, 30, 64, 126] {
            let lo0 = fill(3, n);
            let hi0 = fill(4, n);
            let mut want_lo = lo0.clone();
            let mut want_hi = hi0.clone();
            apply2_dense(Level::Scalar, &m, &mut want_lo, &mut want_hi);
            for lvl in levels() {
                let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
                apply2_dense(lvl, &m, &mut lo, &mut hi);
                assert_eq!(bits(&lo), bits(&want_lo), "dense lo {lvl:?} n={n}");
                assert_eq!(bits(&hi), bits(&want_hi), "dense hi {lvl:?} n={n}");
            }
            let mut want_lo = lo0.clone();
            let mut want_hi = hi0.clone();
            apply2_real(Level::Scalar, &mr, &mut want_lo, &mut want_hi);
            for lvl in levels() {
                let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
                apply2_real(lvl, &mr, &mut lo, &mut hi);
                assert_eq!(bits(&lo), bits(&want_lo), "real {lvl:?} n={n}");
                assert_eq!(bits(&hi), bits(&want_hi), "real {lvl:?} n={n}");
            }
        }
    }

    #[test]
    fn adjacent_scale_swap_match_scalar_bits() {
        let m: [f64; 8] = fill(5, 8).try_into().unwrap();
        let mr: [f64; 4] = fill(6, 4).try_into().unwrap();
        for n in [4usize, 8, 12, 32, 68, 124] {
            let xs0 = fill(7, n);
            for lvl in levels() {
                let mut want = xs0.clone();
                apply2_adjacent(Level::Scalar, &m, &mut want);
                let mut got = xs0.clone();
                apply2_adjacent(lvl, &m, &mut got);
                assert_eq!(bits(&got), bits(&want), "adjacent {lvl:?} n={n}");

                let mut want = xs0.clone();
                apply2_adjacent_real(Level::Scalar, &mr, &mut want);
                let mut got = xs0.clone();
                apply2_adjacent_real(lvl, &mr, &mut got);
                assert_eq!(bits(&got), bits(&want), "adjacent real {lvl:?} n={n}");

                let mut want = xs0.clone();
                scale(Level::Scalar, &mut want, 0.25, -1.5);
                let mut got = xs0.clone();
                scale(lvl, &mut got, 0.25, -1.5);
                assert_eq!(bits(&got), bits(&want), "scale {lvl:?} n={n}");

                let sj0 = fill(8, n);
                let (mut wi, mut wj) = (xs0.clone(), sj0.clone());
                swap_scale(Level::Scalar, &mut wi, &mut wj, (0.5, 0.25), (-1.0, 2.0));
                let (mut gi, mut gj) = (xs0.clone(), sj0.clone());
                swap_scale(lvl, &mut gi, &mut gj, (0.5, 0.25), (-1.0, 2.0));
                assert_eq!(bits(&gi), bits(&wi), "swap i {lvl:?} n={n}");
                assert_eq!(bits(&gj), bits(&wj), "swap j {lvl:?} n={n}");
            }
        }
    }

    #[test]
    fn apply4_matches_scalar_bits() {
        let m: [f64; 32] = fill(9, 32).try_into().unwrap();
        for n in [2usize, 4, 8, 30, 64] {
            let base: Vec<Vec<f64>> = (0..4).map(|k| fill(10 + k, n)).collect();
            let mut want: Vec<Vec<f64>> = base.clone();
            {
                let [a, b, c, d] = &mut want[..] else {
                    unreachable!()
                };
                apply4_dense(Level::Scalar, &m, a, b, c, d);
            }
            for lvl in levels() {
                let mut got: Vec<Vec<f64>> = base.clone();
                let [a, b, c, d] = &mut got[..] else {
                    unreachable!()
                };
                apply4_dense(lvl, &m, a, b, c, d);
                for k in 0..4 {
                    assert_eq!(bits(&got[k]), bits(&want[k]), "quad {lvl:?} n={n} s{k}");
                }
            }
        }
    }

    #[test]
    fn reduction_lanes_identical_across_levels() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 33, 64, 130, 1001] {
            let xs = fill(20, n);
            for lvl in levels() {
                let mut got = [0.1f64, 0.2, 0.3, 0.4];
                let mut want2 = [0.1f64, 0.2, 0.3, 0.4];
                accumulate_sq(Level::Scalar, &mut want2, &xs);
                accumulate_sq(lvl, &mut got, &xs);
                assert_eq!(
                    got.map(f64::to_bits),
                    want2.map(f64::to_bits),
                    "lanes {lvl:?} n={n}"
                );
                assert_eq!(combine_lanes(got).to_bits(), combine_lanes(want2).to_bits());
            }
        }
    }

    #[test]
    fn sha_compress_known_vectors() {
        // FIPS 180-2 test vectors, pre-padded to whole blocks.
        const IV: [u32; 8] = [
            0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
            0x5be0cd19,
        ];
        if sha_backend() != ShaBackend::ShaNi {
            return; // nothing to test without the hardware backend
        }
        // "abc"
        let mut block = [0u8; 64];
        block[..3].copy_from_slice(b"abc");
        block[3] = 0x80;
        block[63] = 24; // bit length
        let mut state = IV;
        assert!(sha256_compress_blocks(&mut state, &block));
        assert_eq!(
            state,
            [
                0xba7816bf, 0x8f01cfea, 0x414140de, 0x5dae2223, 0xb00361a3, 0x96177a9c, 0xb410ff61,
                0xf20015ad
            ]
        );
        // Two-block message: "abcdbcde...nopq" (56 bytes).
        let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        let mut blocks = [0u8; 128];
        blocks[..56].copy_from_slice(msg);
        blocks[56] = 0x80;
        blocks[126] = ((56 * 8) >> 8) as u8;
        blocks[127] = ((56 * 8) & 0xff) as u8;
        let mut state = IV;
        assert!(sha256_compress_blocks(&mut state, &blocks));
        assert_eq!(
            state,
            [
                0x248d6a61, 0xd20638b8, 0xe5c02693, 0x0c3e6039, 0xa33ce459, 0x64ff2167, 0xf6ecedd4,
                0x19db06c1
            ]
        );
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }
}
