//! SHA-256 compression via the x86 SHA extensions.
//!
//! One `sha256rnds2` instruction retires two rounds; the message
//! schedule runs ahead through `sha256msg1`/`sha256msg2`. The register
//! layout follows the ISA's split of the eight working variables into an
//! `ABEF` and a `CDGH` half. The output is the exact SHA-256 function —
//! unlike the float kernels there is no rounding freedom here, so
//! backend equivalence is byte equality of digests (pinned by the
//! `qcheck` property suite on random lengths and update offsets).

use core::arch::x86_64::*;

/// The SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Compresses whole 64-byte blocks into `state` (`[a..h]` word order).
///
/// # Safety
///
/// The caller must have runtime-verified the `sha`, `ssse3` and
/// `sse4.1` CPU features. `blocks.len()` must be a multiple of 64.
#[target_feature(enable = "sha,ssse3,sse4.1")]
pub(crate) unsafe fn compress_blocks_shani(state: &mut [u32; 8], blocks: &[u8]) {
    // Big-endian → little-endian dword byte shuffle.
    let mask = _mm_set_epi8(12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);

    // Pack [a,b,c,d]/[e,f,g,h] into the ABEF/CDGH register halves.
    let tmp = _mm_shuffle_epi32(_mm_loadu_si128(state.as_ptr().cast()), 0xB1);
    let st1 = _mm_shuffle_epi32(_mm_loadu_si128(state.as_ptr().add(4).cast()), 0x1B);
    let mut state0 = _mm_alignr_epi8(tmp, st1, 8);
    let mut state1 = _mm_blend_epi16(st1, tmp, 0xF0);

    for block in blocks.chunks_exact(64) {
        let abef = state0;
        let cdgh = state1;
        let p: *const __m128i = block.as_ptr().cast();
        let mut msg0 = _mm_shuffle_epi8(_mm_loadu_si128(p), mask);
        let mut msg1 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(1)), mask);
        let mut msg2 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(2)), mask);
        let mut msg3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(3)), mask);

        // Four rounds from message group `$i`.
        macro_rules! rounds4 {
            ($w:expr, $i:expr) => {{
                let k = _mm_loadu_si128(K.as_ptr().add(4 * $i).cast());
                let wk = _mm_add_epi32($w, k);
                state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
                let wk = _mm_shuffle_epi32(wk, 0x0E);
                state0 = _mm_sha256rnds2_epu32(state0, state1, wk);
            }};
        }
        // Finish scheduling `$next` (w[t+16..t+20]) from the freshly
        // consumed group `$w` and its predecessor `$prev`.
        macro_rules! sched2 {
            ($next:expr, $w:expr, $prev:expr) => {{
                let t = _mm_alignr_epi8($w, $prev, 4);
                $next = _mm_sha256msg2_epu32(_mm_add_epi32($next, t), $w);
            }};
        }

        rounds4!(msg0, 0);
        rounds4!(msg1, 1);
        msg0 = _mm_sha256msg1_epu32(msg0, msg1);
        rounds4!(msg2, 2);
        msg1 = _mm_sha256msg1_epu32(msg1, msg2);
        rounds4!(msg3, 3);
        sched2!(msg0, msg3, msg2);
        msg2 = _mm_sha256msg1_epu32(msg2, msg3);
        rounds4!(msg0, 4);
        sched2!(msg1, msg0, msg3);
        msg3 = _mm_sha256msg1_epu32(msg3, msg0);
        rounds4!(msg1, 5);
        sched2!(msg2, msg1, msg0);
        msg0 = _mm_sha256msg1_epu32(msg0, msg1);
        rounds4!(msg2, 6);
        sched2!(msg3, msg2, msg1);
        msg1 = _mm_sha256msg1_epu32(msg1, msg2);
        rounds4!(msg3, 7);
        sched2!(msg0, msg3, msg2);
        msg2 = _mm_sha256msg1_epu32(msg2, msg3);
        rounds4!(msg0, 8);
        sched2!(msg1, msg0, msg3);
        msg3 = _mm_sha256msg1_epu32(msg3, msg0);
        rounds4!(msg1, 9);
        sched2!(msg2, msg1, msg0);
        msg0 = _mm_sha256msg1_epu32(msg0, msg1);
        rounds4!(msg2, 10);
        sched2!(msg3, msg2, msg1);
        msg1 = _mm_sha256msg1_epu32(msg1, msg2);
        rounds4!(msg3, 11);
        sched2!(msg0, msg3, msg2);
        msg2 = _mm_sha256msg1_epu32(msg2, msg3);
        rounds4!(msg0, 12);
        sched2!(msg1, msg0, msg3);
        msg3 = _mm_sha256msg1_epu32(msg3, msg0);
        rounds4!(msg1, 13);
        sched2!(msg2, msg1, msg0);
        rounds4!(msg2, 14);
        sched2!(msg3, msg2, msg1);
        rounds4!(msg3, 15);

        state0 = _mm_add_epi32(state0, abef);
        state1 = _mm_add_epi32(state1, cdgh);
    }

    // Unpack ABEF/CDGH back to [a..h] word order.
    let tmp = _mm_shuffle_epi32(state0, 0x1B);
    let st1 = _mm_shuffle_epi32(state1, 0xB1);
    _mm_storeu_si128(state.as_mut_ptr().cast(), _mm_blend_epi16(tmp, st1, 0xF0));
    _mm_storeu_si128(
        state.as_mut_ptr().add(4).cast(),
        _mm_alignr_epi8(st1, tmp, 8),
    );
}
