//! Scalar arms — the bit-exactness oracle every vector arm reproduces.
//!
//! The flattened expressions here match `qsim`'s historical kernel
//! bodies operation for operation (which in turn flatten the
//! `Complex64` operator order), so `QSIM_SIMD=scalar` runs the same
//! arithmetic the simulator has always run.

pub(crate) fn apply2_dense(m: &[f64; 8], lo: &mut [f64], hi: &mut [f64]) {
    let [m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i] = *m;
    for (a, b) in lo.chunks_exact_mut(2).zip(hi.chunks_exact_mut(2)) {
        let (a0r, a0i, a1r, a1i) = (a[0], a[1], b[0], b[1]);
        a[0] = (m00r * a0r - m00i * a0i) + (m01r * a1r - m01i * a1i);
        a[1] = (m00r * a0i + m00i * a0r) + (m01r * a1i + m01i * a1r);
        b[0] = (m10r * a0r - m10i * a0i) + (m11r * a1r - m11i * a1i);
        b[1] = (m10r * a0i + m10i * a0r) + (m11r * a1i + m11i * a1r);
    }
}

pub(crate) fn apply2_real(m: &[f64; 4], lo: &mut [f64], hi: &mut [f64]) {
    let [m00, m01, m10, m11] = *m;
    for (a, b) in lo.chunks_exact_mut(2).zip(hi.chunks_exact_mut(2)) {
        let (a0r, a0i, a1r, a1i) = (a[0], a[1], b[0], b[1]);
        a[0] = m00 * a0r + m01 * a1r;
        a[1] = m00 * a0i + m01 * a1i;
        b[0] = m10 * a0r + m11 * a1r;
        b[1] = m10 * a0i + m11 * a1i;
    }
}

pub(crate) fn apply2_adjacent(m: &[f64; 8], xs: &mut [f64]) {
    let [m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i] = *m;
    for p in xs.chunks_exact_mut(4) {
        let (a0r, a0i, a1r, a1i) = (p[0], p[1], p[2], p[3]);
        p[0] = (m00r * a0r - m00i * a0i) + (m01r * a1r - m01i * a1i);
        p[1] = (m00r * a0i + m00i * a0r) + (m01r * a1i + m01i * a1r);
        p[2] = (m10r * a0r - m10i * a0i) + (m11r * a1r - m11i * a1i);
        p[3] = (m10r * a0i + m10i * a0r) + (m11r * a1i + m11i * a1r);
    }
}

pub(crate) fn apply2_adjacent_real(m: &[f64; 4], xs: &mut [f64]) {
    let [m00, m01, m10, m11] = *m;
    for p in xs.chunks_exact_mut(4) {
        let (a0r, a0i, a1r, a1i) = (p[0], p[1], p[2], p[3]);
        p[0] = m00 * a0r + m01 * a1r;
        p[1] = m00 * a0i + m01 * a1i;
        p[2] = m10 * a0r + m11 * a1r;
        p[3] = m10 * a0i + m11 * a1i;
    }
}

pub(crate) fn scale(xs: &mut [f64], cr: f64, ci: f64) {
    for x in xs.chunks_exact_mut(2) {
        let (xr, xi) = (x[0], x[1]);
        x[0] = cr * xr - ci * xi;
        x[1] = cr * xi + ci * xr;
    }
}

pub(crate) fn swap_scale(si: &mut [f64], sj: &mut [f64], ci: (f64, f64), cj: (f64, f64)) {
    let (cir, cii) = ci;
    let (cjr, cji) = cj;
    for (x, y) in si.chunks_exact_mut(2).zip(sj.chunks_exact_mut(2)) {
        let (tr, ti) = (x[0], x[1]);
        let (yr, yi) = (y[0], y[1]);
        x[0] = cir * yr - cii * yi;
        x[1] = cir * yi + cii * yr;
        y[0] = cjr * tr - cji * ti;
        y[1] = cjr * ti + cji * tr;
    }
}

pub(crate) fn apply4_dense(
    m: &[f64; 32],
    s00: &mut [f64],
    s01: &mut [f64],
    s10: &mut [f64],
    s11: &mut [f64],
) {
    // Row-major complex 4×4: row r, column c at m[(4r + c) * 2].
    for k in (0..s00.len()).step_by(2) {
        let a = [
            (s00[k], s00[k + 1]),
            (s01[k], s01[k + 1]),
            (s10[k], s10[k + 1]),
            (s11[k], s11[k + 1]),
        ];
        let mut out = [(0.0f64, 0.0f64); 4];
        for (r, o) in out.iter_mut().enumerate() {
            // ((m_r0·a0 + m_r1·a1) + m_r2·a2) + m_r3·a3, each product in
            // `Complex64::mul` order.
            let mut acc = (0.0, 0.0);
            for c in 0..4 {
                let (mr, mi) = (m[(4 * r + c) * 2], m[(4 * r + c) * 2 + 1]);
                let (ar, ai) = a[c];
                let p = (mr * ar - mi * ai, mr * ai + mi * ar);
                acc = if c == 0 {
                    p
                } else {
                    (acc.0 + p.0, acc.1 + p.1)
                };
            }
            *o = acc;
        }
        s00[k] = out[0].0;
        s00[k + 1] = out[0].1;
        s01[k] = out[1].0;
        s01[k + 1] = out[1].1;
        s10[k] = out[2].0;
        s10[k + 1] = out[2].1;
        s11[k] = out[3].0;
        s11[k + 1] = out[3].1;
    }
}

pub(crate) fn accumulate_sq(lanes: &mut [f64; 4], xs: &[f64]) {
    for (k, x) in xs.iter().enumerate() {
        lanes[k & 3] += x * x;
    }
}
