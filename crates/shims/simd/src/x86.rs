//! SSE2/AVX2 arms of the gate kernels.
//!
//! Every arm reproduces the scalar arm's per-element operation order
//! bit for bit. The one transformation applied throughout: the scalar
//! complex product `(cr·xr − ci·xi, cr·xi + ci·xr)` becomes the lane
//! form `cr·[xr,xi] + [−ci,+ci]·[xi,xr]`, which is IEEE-identical
//! because `a − b ≡ a + (−b)` and `(−x)·y ≡ −(x·y)` exactly. No FMA is
//! ever emitted (contraction would change rounding).
//!
//! SSE2 is part of the x86_64 baseline, so the `*_sse2` arms carry no
//! `#[target_feature]`; the `*_avx2` arms do and must only be reached
//! after runtime detection (the dispatchers in `lib.rs` guarantee it).

use core::arch::x86_64::*;

/// Broadcast multiplier pair for the 128-bit complex product.
#[inline(always)]
unsafe fn w128(re: f64, im: f64) -> (__m128d, __m128d) {
    (_mm_set1_pd(re), _mm_set_pd(im, -im))
}

/// Broadcast multiplier pair for the 256-bit complex product.
#[inline(always)]
unsafe fn w256(re: f64, im: f64) -> (__m256d, __m256d) {
    (_mm256_set1_pd(re), _mm256_set_pd(im, -im, im, -im))
}

/// `w · v` for one `[re, im]` amplitude.
#[inline(always)]
unsafe fn cmul128(v: __m128d, w: (__m128d, __m128d)) -> __m128d {
    let sw = _mm_shuffle_pd(v, v, 0b01);
    _mm_add_pd(_mm_mul_pd(w.0, v), _mm_mul_pd(w.1, sw))
}

/// `w · v` for two packed `[re, im]` amplitudes.
#[inline(always)]
unsafe fn cmul256(v: __m256d, w: (__m256d, __m256d)) -> __m256d {
    let sw = _mm256_permute_pd(v, 0b0101);
    _mm256_add_pd(_mm256_mul_pd(w.0, v), _mm256_mul_pd(w.1, sw))
}

pub(crate) unsafe fn apply2_dense_sse2(m: &[f64; 8], lo: &mut [f64], hi: &mut [f64]) {
    let (w00, w01) = (w128(m[0], m[1]), w128(m[2], m[3]));
    let (w10, w11) = (w128(m[4], m[5]), w128(m[6], m[7]));
    for k in (0..lo.len()).step_by(2) {
        let a = _mm_loadu_pd(lo.as_ptr().add(k));
        let b = _mm_loadu_pd(hi.as_ptr().add(k));
        let na = _mm_add_pd(cmul128(a, w00), cmul128(b, w01));
        let nb = _mm_add_pd(cmul128(a, w10), cmul128(b, w11));
        _mm_storeu_pd(lo.as_mut_ptr().add(k), na);
        _mm_storeu_pd(hi.as_mut_ptr().add(k), nb);
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn apply2_dense_avx2(m: &[f64; 8], lo: &mut [f64], hi: &mut [f64]) {
    let (w00, w01) = (w256(m[0], m[1]), w256(m[2], m[3]));
    let (w10, w11) = (w256(m[4], m[5]), w256(m[6], m[7]));
    let n4 = lo.len() & !3;
    for k in (0..n4).step_by(4) {
        let a = _mm256_loadu_pd(lo.as_ptr().add(k));
        let b = _mm256_loadu_pd(hi.as_ptr().add(k));
        let na = _mm256_add_pd(cmul256(a, w00), cmul256(b, w01));
        let nb = _mm256_add_pd(cmul256(a, w10), cmul256(b, w11));
        _mm256_storeu_pd(lo.as_mut_ptr().add(k), na);
        _mm256_storeu_pd(hi.as_mut_ptr().add(k), nb);
    }
    if n4 < lo.len() {
        apply2_dense_sse2(m, &mut lo[n4..], &mut hi[n4..]);
    }
}

pub(crate) unsafe fn apply2_real_sse2(m: &[f64; 4], lo: &mut [f64], hi: &mut [f64]) {
    let (w00, w01) = (_mm_set1_pd(m[0]), _mm_set1_pd(m[1]));
    let (w10, w11) = (_mm_set1_pd(m[2]), _mm_set1_pd(m[3]));
    for k in (0..lo.len()).step_by(2) {
        let a = _mm_loadu_pd(lo.as_ptr().add(k));
        let b = _mm_loadu_pd(hi.as_ptr().add(k));
        let na = _mm_add_pd(_mm_mul_pd(w00, a), _mm_mul_pd(w01, b));
        let nb = _mm_add_pd(_mm_mul_pd(w10, a), _mm_mul_pd(w11, b));
        _mm_storeu_pd(lo.as_mut_ptr().add(k), na);
        _mm_storeu_pd(hi.as_mut_ptr().add(k), nb);
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn apply2_real_avx2(m: &[f64; 4], lo: &mut [f64], hi: &mut [f64]) {
    let (w00, w01) = (_mm256_set1_pd(m[0]), _mm256_set1_pd(m[1]));
    let (w10, w11) = (_mm256_set1_pd(m[2]), _mm256_set1_pd(m[3]));
    let n4 = lo.len() & !3;
    for k in (0..n4).step_by(4) {
        let a = _mm256_loadu_pd(lo.as_ptr().add(k));
        let b = _mm256_loadu_pd(hi.as_ptr().add(k));
        let na = _mm256_add_pd(_mm256_mul_pd(w00, a), _mm256_mul_pd(w01, b));
        let nb = _mm256_add_pd(_mm256_mul_pd(w10, a), _mm256_mul_pd(w11, b));
        _mm256_storeu_pd(lo.as_mut_ptr().add(k), na);
        _mm256_storeu_pd(hi.as_mut_ptr().add(k), nb);
    }
    if n4 < lo.len() {
        apply2_real_sse2(m, &mut lo[n4..], &mut hi[n4..]);
    }
}

pub(crate) unsafe fn apply2_adjacent_sse2(m: &[f64; 8], xs: &mut [f64]) {
    let (w00, w01) = (w128(m[0], m[1]), w128(m[2], m[3]));
    let (w10, w11) = (w128(m[4], m[5]), w128(m[6], m[7]));
    for k in (0..xs.len()).step_by(4) {
        let a = _mm_loadu_pd(xs.as_ptr().add(k));
        let b = _mm_loadu_pd(xs.as_ptr().add(k + 2));
        let na = _mm_add_pd(cmul128(a, w00), cmul128(b, w01));
        let nb = _mm_add_pd(cmul128(a, w10), cmul128(b, w11));
        _mm_storeu_pd(xs.as_mut_ptr().add(k), na);
        _mm_storeu_pd(xs.as_mut_ptr().add(k + 2), nb);
    }
}

/// Column-constant multiplier pair: the low 128 lane carries row 0's
/// coefficient, the high lane row 1's — one 256-bit op updates a whole
/// `[a0, a1]` pair block.
#[inline(always)]
unsafe fn wcol256(re0: f64, im0: f64, re1: f64, im1: f64) -> (__m256d, __m256d) {
    (
        _mm256_set_pd(re1, re1, re0, re0),
        _mm256_set_pd(im1, -im1, im0, -im0),
    )
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn apply2_adjacent_avx2(m: &[f64; 8], xs: &mut [f64]) {
    let c0 = wcol256(m[0], m[1], m[4], m[5]);
    let c1 = wcol256(m[2], m[3], m[6], m[7]);
    for k in (0..xs.len()).step_by(4) {
        let v = _mm256_loadu_pd(xs.as_ptr().add(k));
        let a0 = _mm256_permute2f128_pd(v, v, 0x00);
        let a1 = _mm256_permute2f128_pd(v, v, 0x11);
        let out = _mm256_add_pd(cmul256(a0, c0), cmul256(a1, c1));
        _mm256_storeu_pd(xs.as_mut_ptr().add(k), out);
    }
}

pub(crate) unsafe fn apply2_adjacent_real_sse2(m: &[f64; 4], xs: &mut [f64]) {
    let (w00, w01) = (_mm_set1_pd(m[0]), _mm_set1_pd(m[1]));
    let (w10, w11) = (_mm_set1_pd(m[2]), _mm_set1_pd(m[3]));
    for k in (0..xs.len()).step_by(4) {
        let a = _mm_loadu_pd(xs.as_ptr().add(k));
        let b = _mm_loadu_pd(xs.as_ptr().add(k + 2));
        let na = _mm_add_pd(_mm_mul_pd(w00, a), _mm_mul_pd(w01, b));
        let nb = _mm_add_pd(_mm_mul_pd(w10, a), _mm_mul_pd(w11, b));
        _mm_storeu_pd(xs.as_mut_ptr().add(k), na);
        _mm_storeu_pd(xs.as_mut_ptr().add(k + 2), nb);
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn apply2_adjacent_real_avx2(m: &[f64; 4], xs: &mut [f64]) {
    let c0 = _mm256_set_pd(m[2], m[2], m[0], m[0]);
    let c1 = _mm256_set_pd(m[3], m[3], m[1], m[1]);
    for k in (0..xs.len()).step_by(4) {
        let v = _mm256_loadu_pd(xs.as_ptr().add(k));
        let a0 = _mm256_permute2f128_pd(v, v, 0x00);
        let a1 = _mm256_permute2f128_pd(v, v, 0x11);
        let out = _mm256_add_pd(_mm256_mul_pd(c0, a0), _mm256_mul_pd(c1, a1));
        _mm256_storeu_pd(xs.as_mut_ptr().add(k), out);
    }
}

pub(crate) unsafe fn scale_sse2(xs: &mut [f64], cr: f64, ci: f64) {
    let w = w128(cr, ci);
    for k in (0..xs.len()).step_by(2) {
        let v = _mm_loadu_pd(xs.as_ptr().add(k));
        _mm_storeu_pd(xs.as_mut_ptr().add(k), cmul128(v, w));
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn scale_avx2(xs: &mut [f64], cr: f64, ci: f64) {
    let w = w256(cr, ci);
    let n4 = xs.len() & !3;
    for k in (0..n4).step_by(4) {
        let v = _mm256_loadu_pd(xs.as_ptr().add(k));
        _mm256_storeu_pd(xs.as_mut_ptr().add(k), cmul256(v, w));
    }
    if n4 < xs.len() {
        scale_sse2(&mut xs[n4..], cr, ci);
    }
}

pub(crate) unsafe fn swap_scale_sse2(
    si: &mut [f64],
    sj: &mut [f64],
    ci: (f64, f64),
    cj: (f64, f64),
) {
    let wi = w128(ci.0, ci.1);
    let wj = w128(cj.0, cj.1);
    for k in (0..si.len()).step_by(2) {
        let x = _mm_loadu_pd(si.as_ptr().add(k));
        let y = _mm_loadu_pd(sj.as_ptr().add(k));
        _mm_storeu_pd(si.as_mut_ptr().add(k), cmul128(y, wi));
        _mm_storeu_pd(sj.as_mut_ptr().add(k), cmul128(x, wj));
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn swap_scale_avx2(
    si: &mut [f64],
    sj: &mut [f64],
    ci: (f64, f64),
    cj: (f64, f64),
) {
    let wi = w256(ci.0, ci.1);
    let wj = w256(cj.0, cj.1);
    let n4 = si.len() & !3;
    for k in (0..n4).step_by(4) {
        let x = _mm256_loadu_pd(si.as_ptr().add(k));
        let y = _mm256_loadu_pd(sj.as_ptr().add(k));
        _mm256_storeu_pd(si.as_mut_ptr().add(k), cmul256(y, wi));
        _mm256_storeu_pd(sj.as_mut_ptr().add(k), cmul256(x, wj));
    }
    if n4 < si.len() {
        swap_scale_sse2(&mut si[n4..], &mut sj[n4..], ci, cj);
    }
}

/// `((m_r0·a0 + m_r1·a1) + m_r2·a2) + m_r3·a3` for one matrix row.
#[inline(always)]
unsafe fn row128(a: &[__m128d; 4], w: &[(__m128d, __m128d); 4]) -> __m128d {
    let t = _mm_add_pd(cmul128(a[0], w[0]), cmul128(a[1], w[1]));
    let t = _mm_add_pd(t, cmul128(a[2], w[2]));
    _mm_add_pd(t, cmul128(a[3], w[3]))
}

#[inline(always)]
unsafe fn row256(a: &[__m256d; 4], w: &[(__m256d, __m256d); 4]) -> __m256d {
    let t = _mm256_add_pd(cmul256(a[0], w[0]), cmul256(a[1], w[1]));
    let t = _mm256_add_pd(t, cmul256(a[2], w[2]));
    _mm256_add_pd(t, cmul256(a[3], w[3]))
}

pub(crate) unsafe fn apply4_dense_sse2(
    m: &[f64; 32],
    s00: &mut [f64],
    s01: &mut [f64],
    s10: &mut [f64],
    s11: &mut [f64],
) {
    let w: [[(__m128d, __m128d); 4]; 4] = std::array::from_fn(|r| {
        std::array::from_fn(|c| unsafe { w128(m[(4 * r + c) * 2], m[(4 * r + c) * 2 + 1]) })
    });
    for k in (0..s00.len()).step_by(2) {
        let a = [
            _mm_loadu_pd(s00.as_ptr().add(k)),
            _mm_loadu_pd(s01.as_ptr().add(k)),
            _mm_loadu_pd(s10.as_ptr().add(k)),
            _mm_loadu_pd(s11.as_ptr().add(k)),
        ];
        _mm_storeu_pd(s00.as_mut_ptr().add(k), row128(&a, &w[0]));
        _mm_storeu_pd(s01.as_mut_ptr().add(k), row128(&a, &w[1]));
        _mm_storeu_pd(s10.as_mut_ptr().add(k), row128(&a, &w[2]));
        _mm_storeu_pd(s11.as_mut_ptr().add(k), row128(&a, &w[3]));
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn apply4_dense_avx2(
    m: &[f64; 32],
    s00: &mut [f64],
    s01: &mut [f64],
    s10: &mut [f64],
    s11: &mut [f64],
) {
    let w: [[(__m256d, __m256d); 4]; 4] = std::array::from_fn(|r| {
        std::array::from_fn(|c| unsafe { w256(m[(4 * r + c) * 2], m[(4 * r + c) * 2 + 1]) })
    });
    let n4 = s00.len() & !3;
    for k in (0..n4).step_by(4) {
        let a = [
            _mm256_loadu_pd(s00.as_ptr().add(k)),
            _mm256_loadu_pd(s01.as_ptr().add(k)),
            _mm256_loadu_pd(s10.as_ptr().add(k)),
            _mm256_loadu_pd(s11.as_ptr().add(k)),
        ];
        _mm256_storeu_pd(s00.as_mut_ptr().add(k), row256(&a, &w[0]));
        _mm256_storeu_pd(s01.as_mut_ptr().add(k), row256(&a, &w[1]));
        _mm256_storeu_pd(s10.as_mut_ptr().add(k), row256(&a, &w[2]));
        _mm256_storeu_pd(s11.as_mut_ptr().add(k), row256(&a, &w[3]));
    }
    if n4 < s00.len() {
        apply4_dense_sse2(
            m,
            &mut s00[n4..],
            &mut s01[n4..],
            &mut s10[n4..],
            &mut s11[n4..],
        );
    }
}

pub(crate) unsafe fn accumulate_sq_sse2(lanes: &mut [f64; 4], xs: &[f64]) {
    let mut acc_a = _mm_loadu_pd(lanes.as_ptr());
    let mut acc_b = _mm_loadu_pd(lanes.as_ptr().add(2));
    let chunks = xs.chunks_exact(4);
    let rem = chunks.remainder();
    for c in chunks {
        let v0 = _mm_loadu_pd(c.as_ptr());
        let v1 = _mm_loadu_pd(c.as_ptr().add(2));
        acc_a = _mm_add_pd(acc_a, _mm_mul_pd(v0, v0));
        acc_b = _mm_add_pd(acc_b, _mm_mul_pd(v1, v1));
    }
    _mm_storeu_pd(lanes.as_mut_ptr(), acc_a);
    _mm_storeu_pd(lanes.as_mut_ptr().add(2), acc_b);
    for (k, x) in rem.iter().enumerate() {
        lanes[k & 3] += x * x;
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn accumulate_sq_avx2(lanes: &mut [f64; 4], xs: &[f64]) {
    let mut acc = _mm256_loadu_pd(lanes.as_ptr());
    let chunks = xs.chunks_exact(4);
    let rem = chunks.remainder();
    for c in chunks {
        let v = _mm256_loadu_pd(c.as_ptr());
        acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
    }
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    for (k, x) in rem.iter().enumerate() {
        lanes[k & 3] += x * x;
    }
}
