//! Offline shim for `serde_derive`: the derive macros expand to nothing.
//!
//! The workspace's on-disk format is the hand-rolled `qcheck::codec`, so
//! serde's generated impls are never called; the derives only need to
//! *resolve* so annotated types keep compiling without registry access.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
