//! `qobs` — zero-dependency observability for the workspace: a metrics
//! registry (counters / gauges / log2 latency histograms) plus an RAII
//! span layer, in the house style of `qprop` and `qsimd` (no crates.io
//! deps, std only).
//!
//! ## Modes
//!
//! The whole substrate is gated by one process-wide mode, resolved once
//! from the `QOBS` environment variable (override with [`set_mode`]):
//!
//! | `QOBS=`    | effect |
//! |------------|--------|
//! | `off`      | every instrumentation site is one relaxed atomic load |
//! | `counters` | metrics record; spans time into histograms (default)  |
//! | `trace`    | `counters` + JSONL span events to `QOBS_TRACE=<path>` |
//!
//! Call sites guard with [`enabled`] (or use the `Lazy*` handles, which
//! do it for them), so `QOBS=off` costs exactly one `Relaxed` load per
//! site — verified by the disabled-overhead row in `bench_parallel`.
//!
//! ## Registry
//!
//! Metrics are registered by name on first use and live for the rest of
//! the process. [`text_exposition`] renders a Prometheus-style text
//! snapshot whose line order is the lexicographic name order — two
//! scrapes of the same process are stable-ordered — and
//! [`json_snapshot`] renders the same data as one JSON object.
//! Counters are lock-striped (8 cache-line-padded stripes, summed on
//! read) so hot concurrent increments do not bounce one cache line.
//!
//! Histograms use fixed log2 buckets: bucket 0 holds the value 0 and
//! bucket *i* holds `[2^(i-1), 2^i - 1]`, so a quantile estimate is the
//! upper bound of the bucket where the cumulative count crosses the
//! rank — values are exact to within 2× which is plenty for latency
//! triage (p50/p99/p999 summaries).
//!
//! ## Spans
//!
//! [`span("qcheck.save")`](span) returns a guard; on drop it records the
//! elapsed nanoseconds into histogram `qcheck_save_ns` and, in `trace`
//! mode, appends one JSON line (`name`, `id`, `parent`, `start_us`,
//! `dur_us`, `thread`) to the `QOBS_TRACE` file. Parent linkage is a
//! thread-local: spans opened while another is live on the same thread
//! carry its id as `parent`.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Environment variable selecting the mode (`off` / `counters` /
/// `trace`; unset means `counters`).
pub const ENV_MODE: &str = "QOBS";
/// Environment variable naming the JSONL span-event sink for
/// `QOBS=trace`. Without it, trace mode still records histograms but
/// emits no events.
pub const ENV_TRACE: &str = "QOBS_TRACE";
/// Environment variable asking long-running processes (qckptd) to log a
/// one-line metrics dump every N seconds ([`init_dump_from_env`]).
pub const ENV_DUMP_SECS: &str = "QOBS_DUMP_SECS";

// ---------------------------------------------------------------------------
// Mode

/// Process-wide observability mode. See the crate docs for the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Instrumentation sites are a single relaxed load, nothing records.
    Off,
    /// Counters, gauges and histograms record; no span events.
    Counters,
    /// `Counters` plus JSONL span events to the `QOBS_TRACE` file.
    Trace,
}

/// 0 = unresolved, else `Mode as u8 + 1`.
static MODE: AtomicU8 = AtomicU8::new(0);

#[cold]
fn resolve_mode() -> Mode {
    let m = match std::env::var(ENV_MODE).ok().as_deref().map(str::trim) {
        Some("off") | Some("0") | Some("false") => Mode::Off,
        Some("trace") => Mode::Trace,
        _ => Mode::Counters,
    };
    MODE.store(m as u8 + 1, Ordering::Relaxed);
    m
}

/// The current mode (cached after the first call).
#[inline]
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        1 => Mode::Off,
        2 => Mode::Counters,
        3 => Mode::Trace,
        _ => resolve_mode(),
    }
}

/// Whether anything records at all. This is the one relaxed atomic load
/// every instrumentation site pays when observability is off.
#[inline]
pub fn enabled() -> bool {
    mode() != Mode::Off
}

/// Overrides the mode for the whole process (tests and benches; regular
/// programs should let the `QOBS` env var decide).
pub fn set_mode(m: Mode) {
    MODE.store(m as u8 + 1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Counters

const STRIPES: usize = 8;

/// One cache line per stripe so concurrent increments from different
/// threads do not contend on a single hot line.
#[repr(align(64))]
#[derive(Default)]
struct Stripe(AtomicU64);

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread is pinned to one stripe for its lifetime.
    static STRIPE_IDX: usize =
        NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

/// A monotonically increasing, lock-striped counter.
#[derive(Default)]
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

impl Counter {
    /// Adds `n` to this thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        let i = STRIPE_IDX.with(|i| *i);
        self.stripes[i].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sum over all stripes.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A settable signed gauge (queue depths, lags, in-flight counts, peak
/// watermarks via [`Gauge::set_max`]).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger — a running peak
    /// watermark (e.g. stream buffer high-water mark).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histograms

/// Bucket count: index 0 is the exact value 0, index `i` in `1..=63`
/// covers `[2^(i-1), 2^i - 1]`, index 64 covers `>= 2^63`.
const BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` samples (latencies in
/// nanoseconds by convention; any unit works).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of a bucket (what quantile estimates report).
fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Quantile estimate: the upper bound of the bucket in which the
    /// `ceil(q·count)`-th sample (1-based) falls. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile estimate.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// `(upper_bound, cumulative_count)` for every bucket with at least
    /// one sample, in ascending bucket order — the exposition's
    /// `_bucket{le=...}` lines.
    fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cum += n;
                out.push((bucket_upper_bound(i), cum));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Registry

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn register<T: Default>(
    name: &str,
    wrap: fn(&'static T) -> Metric,
    unwrap: fn(&Metric) -> Option<&'static T>,
) -> &'static T {
    let mut map = registry().lock().expect("qobs registry poisoned");
    if let Some(m) = map.get(name) {
        return unwrap(m).unwrap_or_else(|| {
            panic!("qobs: metric {name:?} already registered with a different type")
        });
    }
    let leaked: &'static T = Box::leak(Box::default());
    map.insert(name.to_string(), wrap(leaked));
    leaked
}

/// The counter registered under `name` (created on first use). Metric
/// handles live for the rest of the process.
pub fn counter(name: &str) -> &'static Counter {
    register(name, Metric::Counter, |m| match m {
        Metric::Counter(c) => Some(c),
        _ => None,
    })
}

/// The gauge registered under `name` (created on first use).
pub fn gauge(name: &str) -> &'static Gauge {
    register(name, Metric::Gauge, |m| match m {
        Metric::Gauge(g) => Some(g),
        _ => None,
    })
}

/// The histogram registered under `name` (created on first use).
pub fn histogram(name: &str) -> &'static Histogram {
    register(name, Metric::Histogram, |m| match m {
        Metric::Histogram(h) => Some(h),
        _ => None,
    })
}

/// Renders `family{k="v",...}` with label values escaped, for metrics
/// keyed by dynamic labels (per-namespace / per-op counters).
pub fn labeled(family: &str, labels: &[(&str, &str)]) -> String {
    let mut s = String::with_capacity(family.len() + 16 * labels.len());
    s.push_str(family);
    s.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(k);
        s.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '"' => s.push_str("\\\""),
                '\\' => s.push_str("\\\\"),
                '\n' => s.push_str("\\n"),
                c => s.push(c),
            }
        }
        s.push('"');
    }
    s.push('}');
    s
}

/// The metric family: the name up to any `{label}` suffix.
fn family(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

// ---------------------------------------------------------------------------
// Snapshots

/// Prometheus-style text exposition of every registered metric, in
/// lexicographic name order (stable across scrapes: names only ever get
/// added, and additions sort into place without reordering the rest).
pub fn text_exposition() -> String {
    let map = registry().lock().expect("qobs registry poisoned");
    let mut out = String::new();
    let mut last_family = String::new();
    for (name, metric) in map.iter() {
        let fam = family(name);
        match metric {
            Metric::Counter(c) => {
                if fam != last_family {
                    out.push_str(&format!("# TYPE {fam} counter\n"));
                    last_family = fam.to_string();
                }
                out.push_str(&format!("{name} {}\n", c.get()));
            }
            Metric::Gauge(g) => {
                if fam != last_family {
                    out.push_str(&format!("# TYPE {fam} gauge\n"));
                    last_family = fam.to_string();
                }
                out.push_str(&format!("{name} {}\n", g.get()));
            }
            Metric::Histogram(h) => {
                if fam != last_family {
                    out.push_str(&format!("# TYPE {fam} histogram\n"));
                    last_family = fam.to_string();
                }
                for (le, cum) in h.nonzero_buckets() {
                    out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
                }
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                out.push_str(&format!("{name}_count {}\n", h.count()));
                out.push_str(&format!("{name}_sum {}\n", h.sum()));
                for (q, v) in [(0.5, h.p50()), (0.99, h.p99()), (0.999, h.p999())] {
                    out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
                }
            }
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The same snapshot as one JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{name:{count,sum,p50,p99,p999}}}`.
pub fn json_snapshot() -> String {
    let map = registry().lock().expect("qobs registry poisoned");
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut hists = Vec::new();
    for (name, metric) in map.iter() {
        let key = json_escape(name);
        match metric {
            Metric::Counter(c) => counters.push(format!("\"{key}\":{}", c.get())),
            Metric::Gauge(g) => gauges.push(format!("\"{key}\":{}", g.get())),
            Metric::Histogram(h) => hists.push(format!(
                "\"{key}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"p999\":{}}}",
                h.count(),
                h.sum(),
                h.p50(),
                h.p99(),
                h.p999()
            )),
        }
    }
    format!(
        "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
        counters.join(","),
        gauges.join(","),
        hists.join(",")
    )
}

// ---------------------------------------------------------------------------
// Lazy handles — one-time registry lookup, `enabled()`-gated recording

/// A counter handle usable in `static` position: resolves its registry
/// entry on first recording and gates every call on [`enabled`].
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// A handle for the counter registered under `name`.
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying counter (registers it if needed).
    pub fn get(&self) -> &'static Counter {
        self.cell.get_or_init(|| counter(self.name))
    }

    /// Adds `n` when observability is on; one relaxed load otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.get().add(n);
        }
    }

    /// Adds 1 when observability is on.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// A gauge handle usable in `static` position; see [`LazyCounter`].
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<&'static Gauge>,
}

impl LazyGauge {
    /// A handle for the gauge registered under `name`.
    pub const fn new(name: &'static str) -> Self {
        LazyGauge {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying gauge (registers it if needed).
    pub fn get(&self) -> &'static Gauge {
        self.cell.get_or_init(|| gauge(self.name))
    }

    /// Sets the gauge when observability is on.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.get().set(v);
        }
    }

    /// Adds `n` when observability is on.
    #[inline]
    pub fn add(&self, n: i64) {
        if enabled() {
            self.get().add(n);
        }
    }

    /// Subtracts `n` when observability is on.
    #[inline]
    pub fn sub(&self, n: i64) {
        if enabled() {
            self.get().sub(n);
        }
    }

    /// Raises the gauge to `v` when observability is on.
    #[inline]
    pub fn set_max(&self, v: i64) {
        if enabled() {
            self.get().set_max(v);
        }
    }
}

/// A histogram handle usable in `static` position; see [`LazyCounter`].
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    /// A handle for the histogram registered under `name`.
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying histogram (registers it if needed).
    pub fn get(&self) -> &'static Histogram {
        self.cell.get_or_init(|| histogram(self.name))
    }

    /// Records a sample when observability is on.
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.get().record(v);
        }
    }

    /// Records a duration as nanoseconds when observability is on.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if enabled() {
            self.get().record_duration(d);
        }
    }
}

/// Times `f` into `h` when observability is on; otherwise calls `f`
/// directly (one relaxed load of overhead).
#[inline]
pub fn time<T>(h: &LazyHistogram, f: impl FnOnce() -> T) -> T {
    if !enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    h.get().record_duration(start.elapsed());
    out
}

// ---------------------------------------------------------------------------
// Spans

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Id of the innermost live span on this thread (0 = none).
    static CURRENT_SPAN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// RAII guard returned by [`span`]; records on drop.
#[must_use = "a span measures the scope it is alive in"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    id: u64,
    parent: u64,
}

/// Opens a span. Dotted names (`qcheck.save`) become histogram names
/// with `.` → `_` and an `_ns` suffix (`qcheck_save_ns`). When the mode
/// is [`Mode::Off`] the guard is inert and the call is one relaxed load.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            start: None,
            id: 0,
            parent: 0,
        };
    }
    // Pin the epoch before the first span starts so start offsets are
    // non-negative.
    let _ = epoch();
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT_SPAN.with(|c| c.replace(id));
    SpanGuard {
        name,
        start: Some(Instant::now()),
        id,
        parent,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur = start.elapsed();
        CURRENT_SPAN.with(|c| c.set(self.parent));
        let hist_name = format!("{}_ns", self.name.replace('.', "_"));
        histogram(&hist_name).record_duration(dur);
        if mode() == Mode::Trace {
            trace_event(self.name, self.id, self.parent, start, dur);
        }
    }
}

// ---------------------------------------------------------------------------
// Trace sink

enum Sink {
    /// `QOBS_TRACE` not consulted yet.
    Unopened,
    Open(std::io::BufWriter<std::fs::File>),
    /// No path configured (or open failed): swallow events.
    Disabled,
}

static SINK: Mutex<Sink> = Mutex::new(Sink::Unopened);

/// Points the JSONL span-event sink at `path` (truncating it), for
/// tests and tools; regular programs use the `QOBS_TRACE` env var.
pub fn set_trace_path(path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    *SINK.lock().expect("qobs sink poisoned") = Sink::Open(std::io::BufWriter::new(file));
    Ok(())
}

fn trace_event(name: &str, id: u64, parent: u64, start: Instant, dur: Duration) {
    let start_us = start.duration_since(epoch()).as_micros() as u64;
    let dur_us = dur.as_micros() as u64;
    let thread = std::thread::current();
    let line = format!(
        "{{\"name\":\"{}\",\"id\":{id},\"parent\":{parent},\"start_us\":{start_us},\
         \"dur_us\":{dur_us},\"thread\":\"{}\"}}",
        json_escape(name),
        json_escape(thread.name().unwrap_or("?")),
    );
    let mut sink = SINK.lock().expect("qobs sink poisoned");
    if let Sink::Unopened = *sink {
        *sink = match std::env::var(ENV_TRACE).ok().and_then(|p| {
            let p = p.trim().to_string();
            (!p.is_empty()).then_some(p)
        }) {
            Some(path) => match std::fs::File::create(&path) {
                Ok(f) => Sink::Open(std::io::BufWriter::new(f)),
                Err(_) => Sink::Disabled,
            },
            None => Sink::Disabled,
        };
    }
    if let Sink::Open(w) = &mut *sink {
        // Flush per event: Rust runs no static destructors, and trace
        // mode is a debugging mode — a complete file beats buffering.
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

// ---------------------------------------------------------------------------
// Periodic dump

/// Spawns a background thread logging one compact metrics line to
/// stderr every `QOBS_DUMP_SECS` seconds (no-op when the variable is
/// unset, unparsable, or 0 — or when the mode is off).
pub fn init_dump_from_env() {
    let Some(secs) = std::env::var(ENV_DUMP_SECS)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&s| s > 0)
    else {
        return;
    };
    if !enabled() {
        return;
    }
    let _ = std::thread::Builder::new()
        .name("qobs-dump".into())
        .spawn(move || loop {
            std::thread::sleep(Duration::from_secs(secs));
            eprintln!("qobs: {}", json_snapshot());
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that flip the global mode serialize through this lock so
    /// concurrently running recording tests never observe `Off`.
    static MODE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn histogram_bucket_edges() {
        let h = Histogram::default();
        // Exact powers land in the bucket whose range starts at them.
        for (v, le) in [
            (0u64, 0u64),
            (1, 1),
            (2, 3),
            (3, 3),
            (4, 7),
            (1023, 1023),
            (1024, 2047),
            (u64::MAX, u64::MAX),
        ] {
            let fresh = Histogram::default();
            fresh.record(v);
            assert_eq!(fresh.quantile(0.5), le, "value {v} should report le {le}");
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        // Cumulative bucket lines are ascending in both bound and count.
        let b = h.nonzero_buckets();
        assert!(b.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert_eq!(b.last().unwrap().1, 8);
    }

    #[test]
    fn quantile_rank_math() {
        let h = Histogram::default();
        for _ in 0..999 {
            h.record(1);
        }
        h.record(1 << 20);
        // 999 of 1000 samples are 1: p50 and p99 sit in the ones bucket,
        // p999 exactly reaches rank 999 (ceil(0.999 * 1000)) — still 1.
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p99(), 1);
        assert_eq!(h.p999(), 1);
        // One more large sample pushes rank 1000 of 1001 into the big
        // bucket's range.
        h.record(1 << 20);
        assert_eq!(h.p999(), (1u64 << 21) - 1);
        assert_eq!(h.quantile(1.0), (1u64 << 21) - 1);
        let empty = Histogram::default();
        assert_eq!(empty.p999(), 0);
    }

    #[test]
    fn exposition_is_sorted_and_stable() {
        let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_mode(Mode::Counters);
        counter("ztest_b_total").inc();
        counter("ztest_a_total").inc();
        gauge("ztest_gauge").set(7);
        histogram("ztest_ns").record(100);
        let names = |text: &str| {
            text.lines()
                .filter(|l| !l.starts_with('#'))
                .map(|l| l.split_whitespace().next().unwrap().to_string())
                .collect::<Vec<_>>()
        };
        let first = names(&text_exposition());
        // Metric families come out lexicographically sorted (lines
        // within one histogram follow bucket order, not string order).
        let mut fams: Vec<&str> = first
            .iter()
            .map(|n| family(n))
            .map(|f| f.strip_suffix("_bucket").unwrap_or(f))
            .map(|f| f.strip_suffix("_count").unwrap_or(f))
            .map(|f| f.strip_suffix("_sum").unwrap_or(f))
            .collect();
        fams.dedup();
        let mut sorted = fams.clone();
        sorted.sort();
        assert_eq!(fams, sorted);
        // A second scrape with traffic in between keeps the same order
        // for every name already present.
        counter("ztest_a_total").add(5);
        let second = names(&text_exposition());
        assert_eq!(first, second);
        let text = text_exposition();
        assert!(text.contains("ztest_a_total "));
        assert!(text.contains("# TYPE ztest_ns histogram"));
        assert!(text.contains("ztest_ns_count 1"));
    }

    #[test]
    fn labeled_escapes_values() {
        assert_eq!(
            labeled("req_total", &[("ns", "a\"b"), ("op", "get")]),
            "req_total{ns=\"a\\\"b\",op=\"get\"}"
        );
    }

    #[test]
    fn json_snapshot_parses_shape() {
        let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_mode(Mode::Counters);
        counter("zjson_total").inc();
        let s = json_snapshot();
        assert!(s.starts_with("{\"counters\":{"));
        assert!(s.contains("\"zjson_total\":"));
        assert!(s.ends_with("}}"));
    }

    #[test]
    fn concurrent_increments_via_qpar() {
        let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_mode(Mode::Counters);
        let before = counter("zconc_total").get();
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32)
            .map(|_| {
                let job: Box<dyn FnOnce() -> usize + Send> = Box::new(|| {
                    for _ in 0..1000 {
                        counter("zconc_total").inc();
                    }
                    0
                });
                job
            })
            .collect();
        qpar::pool::run_owned(jobs);
        assert_eq!(counter("zconc_total").get() - before, 32_000);
    }

    #[test]
    fn off_mode_records_nothing() {
        let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        static C: LazyCounter = LazyCounter::new("zoff_total");
        static H: LazyHistogram = LazyHistogram::new("zoff_ns");
        set_mode(Mode::Counters);
        C.inc();
        let count_before = C.get().get();
        let hist_before = H.get().count();
        set_mode(Mode::Off);
        assert!(!enabled());
        C.inc();
        C.add(10);
        H.record(42);
        time(&H, || ());
        drop(span("zoff.span"));
        set_mode(Mode::Counters);
        assert_eq!(C.get().get(), count_before);
        assert_eq!(H.get().count(), hist_before);
    }

    #[test]
    fn spans_link_parents_and_record_histograms() {
        let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_mode(Mode::Counters);
        let before = histogram("zspan_outer_ns").count();
        {
            let outer = span("zspan.outer");
            assert!(outer.id != 0);
            let inner = span("zspan.inner");
            assert_eq!(inner.parent, outer.id);
            drop(inner);
            let sibling = span("zspan.sibling");
            assert_eq!(sibling.parent, outer.id);
        }
        let after_root = span("zspan.root");
        assert_eq!(after_root.parent, 0);
        drop(after_root);
        assert_eq!(histogram("zspan_outer_ns").count(), before + 1);
    }

    #[test]
    fn trace_sink_writes_jsonl() {
        let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join(format!("qobs-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        set_trace_path(&path).unwrap();
        set_mode(Mode::Trace);
        drop(span("ztrace.event"));
        set_mode(Mode::Counters);
        let text = std::fs::read_to_string(&path).unwrap();
        let line = text
            .lines()
            .find(|l| l.contains("\"ztrace.event\""))
            .expect("span event written");
        assert!(line.starts_with('{') && line.ends_with('}'));
        for key in ["\"id\":", "\"parent\":", "\"start_us\":", "\"dur_us\":"] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
