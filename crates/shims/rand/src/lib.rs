//! Offline shim for the subset of `rand` 0.8 this workspace uses:
//! the [`Rng`] extension methods `gen`, `gen_range`, `gen_bool`, the
//! [`SeedableRng::seed_from_u64`] constructor, and [`rngs::StdRng`].
//!
//! `StdRng` here is splitmix64 — deterministic and statistically sound for
//! simulation workloads, but **not** cryptographic and **not** stream-
//! compatible with upstream `rand`. All qhw/bench callers only require
//! determinism given a seed, which this provides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Core + extension RNG trait (collapsed `RngCore`/`Rng` from rand 0.8).
pub trait Rng {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Samples a value from the "standard" distribution of `T`
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Types samplable from their standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types samplable uniformly from a half-open range.
pub trait UniformSample: Sized {
    /// Draws one value from `[range.start, range.end)`.
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

impl UniformSample for f64 {
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let u: f64 = Standard::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

impl UniformSample for usize {
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + (rng.next_u64() % span) as usize
    }
}

impl UniformSample for u64 {
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + rng.next_u64() % (range.end - range.start)
    }
}

/// Seedable construction (rand 0.8 subset).
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(x > 0.0 && x < 1.0);
            let n: usize = rng.gen_range(3..9usize);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
