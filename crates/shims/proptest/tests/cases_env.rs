//! `QPROP_CASES` overrides the per-property case count — the hook CI uses
//! to pin property-suite wall-time (low default, opt-in high-case smoke).
//!
//! Kept as the only test in this binary: it mutates `QPROP_CASES`, which is
//! process-global state.

use std::cell::RefCell;

use proptest::prelude::*;

#[test]
fn cases_env_overrides_config() {
    let count_runs = || {
        let runs = RefCell::new(0u32);
        TestRunner::for_name(ProptestConfig::with_cases(64), "cases_env::probe")
            .run(&(0u64..100,), |_| {
                *runs.borrow_mut() += 1;
                Ok(())
            })
            .unwrap();
        runs.into_inner()
    };

    // CI runs the whole workspace under QPROP_CASES; park any ambient
    // value so this test controls the variable, and restore it after.
    let ambient = std::env::var("QPROP_CASES").ok();
    std::env::remove_var("QPROP_CASES");
    let unset = count_runs();
    std::env::set_var("QPROP_CASES", "7");
    let overridden = count_runs();
    match ambient {
        Some(v) => std::env::set_var("QPROP_CASES", v),
        None => std::env::remove_var("QPROP_CASES"),
    }
    assert_eq!(unset, 64, "config value applies without the env var");
    assert_eq!(overridden, 7, "QPROP_CASES wins over the config value");
}
