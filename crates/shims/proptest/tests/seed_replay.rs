//! Regression test for the seed-replay contract: a failing property
//! reports a `QPROP_SEED`, and re-running with that seed set in the
//! environment reproduces the identical minimal counterexample through the
//! same `run_property` path the `proptest!` macro expands to.
//!
//! Kept as the only test in this binary: it mutates `QPROP_SEED`, which is
//! process-global state.

use std::panic::{self, AssertUnwindSafe};

use proptest::prelude::*;
use proptest::test_runner::run_property;

/// Runs the deliberately failing property and returns the report it
/// panics with.
fn failure_report() -> String {
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        run_property(
            "seed_replay::deliberate_failure",
            ProptestConfig::with_cases(64),
            &(0u64..10_000, 0u32..100),
            |(x, _y)| {
                prop_assert!(x < 500, "x = {} escaped the bound", x);
                Ok(())
            },
        )
    }));
    let payload = result.expect_err("property must fail");
    payload
        .downcast_ref::<String>()
        .expect("qprop reports failures as formatted strings")
        .clone()
}

fn extract<'a>(report: &'a str, marker: &str) -> &'a str {
    let start = report
        .find(marker)
        .unwrap_or_else(|| panic!("report missing {marker:?}: {report}"))
        + marker.len();
    report[start..].lines().next().unwrap().trim()
}

#[test]
fn reported_seed_replays_the_same_minimal_counterexample() {
    // The engine's own panic is expected here; keep test output clean.
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));

    let first = failure_report();
    let seed = extract(&first, "QPROP_SEED=").to_string();
    let minimal = extract(&first, "minimal counterexample:").to_string();
    seed.parse::<u64>().expect("seed is a u64");
    // Greedy bisection on a monotone predicate finds the exact boundary,
    // and the untouched second component shrinks to its origin.
    assert_eq!(minimal, "(500, 0)", "full report:\n{first}");

    std::env::set_var("QPROP_SEED", &seed);
    let replay = failure_report();
    std::env::remove_var("QPROP_SEED");
    panic::set_hook(prev_hook);

    assert_eq!(extract(&replay, "minimal counterexample:"), minimal);
    assert_eq!(extract(&replay, "QPROP_SEED="), seed);
    assert!(
        replay.contains("failed at case 0"),
        "replay runs exactly one case: {replay}"
    );
}
