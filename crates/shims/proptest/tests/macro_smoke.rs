//! The `proptest!` macro path end-to-end: generation, multiple arguments,
//! `mut` patterns, early `return Ok(())`, trailing commas, and the assert
//! macro family. Separate from `cases_env.rs` so that binary stays the
//! sole owner of the `QPROP_CASES` process-global.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn macro_smoke(a in 0u32..1000, mut b in 0u32..1000,) {
        if a == b {
            return Ok(());
        }
        b += 1;
        prop_assert!(a + b > 0 || a == 0);
        prop_assert_ne!(a, b - 1, "a and b-1 differ on this path: {}", a);
    }

    /// Range draws respect half-open bounds, including the float rounding
    /// edge where `start + span * u` could land on the exclusive end.
    #[test]
    fn ranges_are_half_open(x in 0.5f64..1.5, n in 3u64..9, k in 1u8..=255) {
        prop_assert!((0.5..1.5).contains(&x), "x = {}", x);
        prop_assert!((3..9).contains(&n));
        prop_assert!(k >= 1);
    }
}
