//! String strategies from regex-like patterns.
//!
//! Upstream proptest accepts any regex as a `&str` strategy. qprop
//! implements the single form the workspace's suites use — `.{lo,hi}` — a
//! string of `lo..=hi` arbitrary non-newline characters. Anything else
//! panics with a clear message rather than silently generating the wrong
//! distribution.

use crate::strategy::{BoxedValueTree, Strategy, ValueTree};
use crate::test_runner::TestRunner;

/// A few multi-byte characters mixed in to exercise UTF-8 handling.
const WIDE: [char; 8] = ['é', 'ß', 'λ', 'Ω', '中', '文', '🦀', '𝕢'];

fn parse_dot_range(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    if lo <= hi {
        Some((lo, hi))
    } else {
        None
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn new_tree(&self, runner: &mut TestRunner) -> BoxedValueTree<String> {
        let (lo, hi) = parse_dot_range(self).unwrap_or_else(|| {
            panic!(
                "[qprop] unsupported string pattern {self:?}: \
                 only `.{{lo,hi}}` is implemented"
            )
        });
        let len = lo + runner.below((hi - lo + 1) as u64) as usize;
        let chars: Vec<char> = (0..len)
            .map(|_| {
                if runner.below(10) == 0 {
                    WIDE[runner.below(WIDE.len() as u64) as usize]
                } else {
                    // Printable ASCII (space..tilde); never '\n', matching `.`.
                    char::from(0x20 + runner.below(0x5F) as u8)
                }
            })
            .collect();
        Box::new(StringTree {
            live: len,
            chunk: len - lo,
            prev_live: len,
            min: lo,
            chars,
        })
    }
}

/// Length-only shrinking (suffix truncation bisecting toward the minimum);
/// individual characters are left as generated.
struct StringTree {
    chars: Vec<char>,
    live: usize,
    prev_live: usize,
    chunk: usize,
    min: usize,
}

impl ValueTree for StringTree {
    type Value = String;
    fn current(&self) -> String {
        self.chars[..self.live].iter().collect()
    }
    fn simplify(&mut self) -> bool {
        if self.live > self.min && self.chunk > 0 {
            let cut = self.chunk.min(self.live - self.min);
            self.prev_live = self.live;
            self.live -= cut;
            true
        } else {
            false
        }
    }
    fn reject(&mut self) {
        self.live = self.prev_live;
        self.chunk /= 2;
    }
}
