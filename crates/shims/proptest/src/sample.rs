//! `prop::sample` — positional sampling helpers.

use crate::strategy::{BoxedValueTree, IntTree, Strategy, ValueTree};
use crate::test_runner::TestRunner;

/// A length-independent position, resolved against a concrete collection
/// length with [`Index::index`]. Generate with `any::<prop::sample::Index>()`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(pub(crate) usize);

impl Index {
    /// Resolves this abstract position against a collection of `len`
    /// elements.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        self.0 % len
    }
}

/// Full-domain [`Index`] strategy (shrinks toward position 0).
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyIndex;

impl Strategy for AnyIndex {
    type Value = Index;
    fn new_tree(&self, runner: &mut TestRunner) -> BoxedValueTree<Index> {
        let raw = runner.next_seed() as usize;
        Box::new(IndexTree(IntTree::<usize>::new(raw as i128, 0)))
    }
}

struct IndexTree(IntTree<usize>);

impl ValueTree for IndexTree {
    type Value = Index;
    fn current(&self) -> Index {
        Index(self.0.current())
    }
    fn simplify(&mut self) -> bool {
        self.0.simplify()
    }
    fn reject(&mut self) {
        self.0.reject();
    }
}
