//! Collection strategies (`prop::collection::vec`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::{BoxedValueTree, Strategy, ValueTree};
use crate::test_runner::TestRunner;

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Strategy for `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_tree(&self, runner: &mut TestRunner) -> BoxedValueTree<Vec<S::Value>> {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let len = self.size.lo + runner.below(span) as usize;
        let elems: Vec<_> = (0..len).map(|_| self.element.new_tree(runner)).collect();
        Box::new(VecTree {
            live: len,
            chunk: len - self.size.lo,
            prev_live: len,
            min: self.size.lo,
            cursor: 0,
            last: Last::Len,
            elems,
        })
    }
}

enum Last {
    Len,
    Elem(usize),
}

/// Shrinks first by truncating (suffix removal, bisecting toward the
/// minimum length), then by simplifying surviving elements left-to-right.
struct VecTree<V: Debug + 'static> {
    elems: Vec<BoxedValueTree<V>>,
    live: usize,
    prev_live: usize,
    chunk: usize,
    min: usize,
    cursor: usize,
    last: Last,
}

impl<V: Debug + 'static> ValueTree for VecTree<V> {
    type Value = Vec<V>;
    fn current(&self) -> Vec<V> {
        self.elems[..self.live]
            .iter()
            .map(|t| t.current())
            .collect()
    }
    fn simplify(&mut self) -> bool {
        // Length phase.
        if self.live > self.min && self.chunk > 0 {
            let cut = self.chunk.min(self.live - self.min);
            self.prev_live = self.live;
            self.live -= cut;
            self.last = Last::Len;
            return true;
        }
        // Element phase.
        while self.cursor < self.live {
            if self.elems[self.cursor].simplify() {
                self.last = Last::Elem(self.cursor);
                return true;
            }
            self.cursor += 1;
        }
        false
    }
    fn reject(&mut self) {
        match self.last {
            Last::Len => {
                self.live = self.prev_live;
                self.chunk /= 2;
            }
            Last::Elem(i) => self.elems[i].reject(),
        }
    }
}
