//! # qprop — in-repo property-testing engine
//!
//! A dependency-free re-implementation of the subset of the
//! [proptest](https://docs.rs/proptest) API that this workspace's property
//! suites use. The build container cannot reach crates.io, so instead of
//! leaving ~25 randomized invariants dead behind a feature gate, this shim
//! runs them on every `cargo test`.
//!
//! Supported surface (see `crates/shims/README.md` for the full contract):
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//!   `prop_filter` / `boxed` / `prop_union`, [`strategy::Just`], numeric
//!   range strategies, tuple strategies (arity ≤ 10);
//! * [`collection::vec`], [`num::f64`] class strategies,
//!   [`sample::Index`], `.{lo,hi}` string patterns, [`arbitrary::any`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] macros;
//! * deterministic seeding with failure replay (`QPROP_SEED`) and a global
//!   case-count override (`QPROP_CASES`) — see [`test_runner`];
//! * greedy input shrinking (bisection toward each strategy's origin).
//!
//! Every draw flows through the same xoshiro256\*\* generator the simulator
//! uses ([`rng::Xoshiro256`]), so runs are reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod rng;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Asserts a condition inside a `proptest!` body, failing the case (and
/// triggering shrinking) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // stringify! output goes through a runtime `{}` (not concat!) so
        // conditions containing braces don't break the format literal.
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!` for equality, reporting both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert!` for inequality, reporting both operands.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Uniform choice between strategies of one value type (each arm is boxed;
/// upstream's weighted `w => strategy` arms are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test function at a
/// time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg_pat:pat in $arg_strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let strategy = ($($arg_strat,)+);
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                config,
                &strategy,
                |($($arg_pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_each! { config = $config; $($rest)* }
    };
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module-path mirror (`prop::collection::vec`, `prop::num::f64`,
    /// `prop::sample::Index`).
    pub mod prop {
        pub use crate::{collection, num, sample};
    }
}
