//! Deterministic generator backing every qprop draw.
//!
//! This is the same xoshiro256\*\* + SplitMix64 pair the simulator uses
//! (`qsim::rng`), re-implemented here so the shim stays dependency-free —
//! `qsim` itself dev-depends on this crate, and a regular dependency in the
//! other direction would cycle. Stream compatibility with `qsim` is *not*
//! required; determinism given a seed is.

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256\*\* with single-seed construction.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the generator from a single `u64` via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // The all-zero state is a fixed point of xoshiro; SplitMix64 cannot
        // emit four zeros from one seed, but guard anyway.
        let s = if s == [0; 4] { [1, 2, 3, 4] } else { s };
        Xoshiro256 { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Xoshiro256::seed_from(7);
        let mut b = Xoshiro256::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = Xoshiro256::seed_from(3);
        for _ in 0..10_000 {
            assert!(rng.next_below(17) < 17);
        }
    }
}
