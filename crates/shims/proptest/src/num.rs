//! `prop::num` — floating-point class strategies.

/// `f64` class strategies (`prop::num::f64::NORMAL | ZERO | SUBNORMAL`).
pub mod f64 {
    use std::ops::BitOr;

    use crate::strategy::{BoxedValueTree, Strategy, ValueTree};
    use crate::test_runner::TestRunner;

    const C_NORMAL: u32 = 1;
    const C_ZERO: u32 = 2;
    const C_SUBNORMAL: u32 = 4;
    const C_INFINITE: u32 = 8;
    const C_QUIET_NAN: u32 = 16;

    /// A union of `f64` value classes, usable as a strategy. Combine
    /// classes with `|`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct F64Class(u32);

    /// Normal (full-exponent-range, both signs) values.
    pub const NORMAL: F64Class = F64Class(C_NORMAL);
    /// Positive and negative zero.
    pub const ZERO: F64Class = F64Class(C_ZERO);
    /// Subnormal (denormalized) values, both signs.
    pub const SUBNORMAL: F64Class = F64Class(C_SUBNORMAL);
    /// Positive and negative infinity.
    pub const INFINITE: F64Class = F64Class(C_INFINITE);
    /// Quiet NaNs with random payloads.
    pub const QUIET_NAN: F64Class = F64Class(C_QUIET_NAN);

    impl BitOr for F64Class {
        type Output = F64Class;
        fn bitor(self, rhs: F64Class) -> F64Class {
            F64Class(self.0 | rhs.0)
        }
    }

    fn member(mask: u32, v: f64) -> bool {
        if v == 0.0 {
            mask & C_ZERO != 0
        } else if v.is_nan() {
            mask & C_QUIET_NAN != 0
        } else if v.is_infinite() {
            mask & C_INFINITE != 0
        } else if v.is_subnormal() {
            mask & C_SUBNORMAL != 0
        } else {
            mask & C_NORMAL != 0
        }
    }

    impl Strategy for F64Class {
        type Value = f64;
        fn new_tree(&self, runner: &mut TestRunner) -> BoxedValueTree<f64> {
            assert!(self.0 != 0, "empty f64 class mask");
            let classes: Vec<u32> = [C_NORMAL, C_ZERO, C_SUBNORMAL, C_INFINITE, C_QUIET_NAN]
                .into_iter()
                .filter(|c| self.0 & c != 0)
                .collect();
            let class = classes[runner.below(classes.len() as u64) as usize];
            let sign = runner.below(2) << 63;
            let value = match class {
                C_NORMAL => {
                    let exp = 1 + runner.below(2046);
                    let mantissa = runner.next_seed() & ((1u64 << 52) - 1);
                    f64::from_bits(sign | (exp << 52) | mantissa)
                }
                C_ZERO => f64::from_bits(sign),
                C_SUBNORMAL => {
                    let mantissa = 1 + runner.below((1u64 << 52) - 1);
                    f64::from_bits(sign | mantissa)
                }
                C_INFINITE => f64::from_bits(sign | (0x7FFu64 << 52)),
                _ => {
                    let payload = runner.next_seed() & ((1u64 << 51) - 1);
                    f64::from_bits(sign | (0x7FFu64 << 52) | (1u64 << 51) | payload)
                }
            };
            Box::new(ClassTree {
                mask: self.0,
                current: value,
                prev: value,
                step: value.abs(),
                rounds: 0,
            })
        }
    }

    /// Shrinks by halving toward zero, skipping candidates that fall
    /// outside the allowed class mask (e.g. 0.0 when only `NORMAL` is
    /// allowed). NaN and infinity do not shrink.
    struct ClassTree {
        mask: u32,
        current: f64,
        prev: f64,
        step: f64,
        rounds: u32,
    }

    impl ValueTree for ClassTree {
        type Value = f64;
        fn current(&self) -> f64 {
            self.current
        }
        fn simplify(&mut self) -> bool {
            if self.current.is_nan() || self.current.is_infinite() {
                return false;
            }
            for _ in 0..64 {
                if self.rounds >= 128 || self.step == 0.0 || self.current == 0.0 {
                    return false;
                }
                self.rounds += 1;
                let mv = self.step.min(self.current.abs());
                let candidate = self.current - mv.copysign(self.current);
                if candidate == self.current {
                    return false;
                }
                if member(self.mask, candidate) {
                    self.prev = self.current;
                    self.current = candidate;
                    return true;
                }
                self.step /= 2.0;
            }
            false
        }
        fn reject(&mut self) {
            self.current = self.prev;
            self.step /= 2.0;
        }
    }
}
