//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::{BoxedValueTree, IntTree, Strategy, ValueTree};
use crate::test_runner::TestRunner;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (uniform over its whole domain; integers
/// shrink toward zero).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-domain integer strategy (see [`any`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty => $cast:ty),+ $(,)?) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            fn new_tree(&self, runner: &mut TestRunner) -> BoxedValueTree<$t> {
                let val = runner.next_seed() as $cast as $t;
                Box::new(IntTree::<$t>::new(val as i128, 0))
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyInt(std::marker::PhantomData)
            }
        }
    )+};
}
arbitrary_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Full-domain `bool` strategy (shrinks `true` → `false`).
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn new_tree(&self, runner: &mut TestRunner) -> BoxedValueTree<bool> {
        Box::new(BoolTree {
            current: runner.below(2) == 1,
            prev: false,
        })
    }
}

struct BoolTree {
    current: bool,
    prev: bool,
}

impl ValueTree for BoolTree {
    type Value = bool;
    fn current(&self) -> bool {
        self.current
    }
    fn simplify(&mut self) -> bool {
        if self.current {
            self.prev = true;
            self.current = false;
            true
        } else {
            false
        }
    }
    fn reject(&mut self) {
        self.current = self.prev;
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> Self::Strategy {
        AnyBool
    }
}

impl Arbitrary for crate::sample::Index {
    type Strategy = crate::sample::AnyIndex;
    fn arbitrary() -> Self::Strategy {
        crate::sample::AnyIndex
    }
}
