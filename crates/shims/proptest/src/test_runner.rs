//! Case generation, failure shrinking, and seed replay.
//!
//! ## Determinism and seeds
//!
//! Every property gets a *master seed* derived from its fully-qualified
//! test name (FNV-1a), so `cargo test` is reproducible run-over-run with no
//! configuration. Each case then draws a fresh 64-bit *case seed* from the
//! master stream; a failure report prints the case seed of the failing
//! case. Setting `QPROP_SEED=<seed>` re-runs exactly that one case (and its
//! shrink sequence), reproducing the same minimal counterexample.
//!
//! `QPROP_CASES=<n>` overrides the per-property case count globally — CI
//! pins it low for wall-time, and an opt-in smoke job raises it.

use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};

use crate::rng::Xoshiro256;
use crate::strategy::Strategy;

/// Environment variable: replay a single case by its reported seed.
pub const SEED_ENV: &str = "QPROP_SEED";
/// Environment variable: override the number of cases per property.
pub const CASES_ENV: &str = "QPROP_CASES";

/// Per-property configuration (the upstream-compatible subset).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum number of candidate invocations spent shrinking a failure.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 4096,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases with default shrinking limits.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single test case failed.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure from any message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a property body (`prop_assert!` returns the `Err` arm).
pub type TestCaseResult = Result<(), TestCaseError>;

/// A property failure after shrinking.
#[derive(Clone, Debug)]
pub struct TestError {
    /// Seed that reproduces the failing case via `QPROP_SEED`.
    pub seed: u64,
    /// 0-based index of the failing case within the run.
    pub case: u32,
    /// Failure message of the minimal counterexample.
    pub message: String,
    /// `Debug` rendering of the minimal counterexample.
    pub counterexample: String,
}

/// Drives case generation: a seeded RNG plus the active config.
pub struct TestRunner {
    rng: Xoshiro256,
    /// The configuration this runner was built with.
    pub config: ProptestConfig,
    forced_seed: Option<u64>,
}

impl TestRunner {
    /// Runner with a master seed derived from `name` (deterministic), or
    /// from `QPROP_SEED` when set (single-case replay).
    pub fn for_name(config: ProptestConfig, name: &str) -> Self {
        let forced_seed = std::env::var(SEED_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok());
        TestRunner {
            rng: Xoshiro256::seed_from(fnv1a(name.as_bytes())),
            config,
            forced_seed,
        }
    }

    /// Runner seeded explicitly (used for inner draws and for tests of the
    /// engine itself).
    pub fn from_seed(seed: u64) -> Self {
        TestRunner {
            rng: Xoshiro256::seed_from(seed),
            config: ProptestConfig::default(),
            forced_seed: None,
        }
    }

    /// Forces single-case replay of `seed`, as `QPROP_SEED` would.
    pub fn with_replay_seed(config: ProptestConfig, seed: u64) -> Self {
        TestRunner {
            rng: Xoshiro256::seed_from(0),
            config,
            forced_seed: Some(seed),
        }
    }

    /// Next raw 64-bit draw (used to seed sub-generators).
    pub fn next_seed(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.rng.next_below(bound)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// Runs `test` against up to `config.cases` generated inputs, shrinking
    /// and reporting the first failure.
    pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), TestError>
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let cases = std::env::var(CASES_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .unwrap_or(self.config.cases);
        let (cases, replay) = match self.forced_seed {
            Some(seed) => (1, Some(seed)),
            None => (cases.max(1), None),
        };
        for case in 0..cases {
            let case_seed = replay.unwrap_or_else(|| self.rng.next_u64());
            let mut gen = TestRunner::from_seed(case_seed);
            let mut tree = strategy.new_tree(&mut gen);
            if let Err(msg) = run_case(&*tree, &test) {
                let mut best_msg = msg;
                let mut best_repr = render(&*tree);
                let mut iters = 0u32;
                while iters < self.config.max_shrink_iters {
                    if !tree.simplify() {
                        break;
                    }
                    iters += 1;
                    match run_case(&*tree, &test) {
                        Err(msg) => {
                            best_msg = msg;
                            best_repr = render(&*tree);
                        }
                        Ok(()) => tree.reject(),
                    }
                }
                return Err(TestError {
                    seed: case_seed,
                    case,
                    message: best_msg,
                    counterexample: best_repr,
                });
            }
        }
        Ok(())
    }
}

/// Runs one candidate, converting panics into case failures so shrinking
/// also works for `unwrap`-style properties. `current()` runs inside the
/// guard too: a panicking strategy closure (`prop_map` etc.) must still
/// produce a replayable report, not a raw abort.
fn run_case<T, F>(tree: &T, test: &F) -> Result<(), String>
where
    T: crate::strategy::ValueTree + ?Sized,
    F: Fn(T::Value) -> TestCaseResult,
{
    let outcome = quiet_panics(|| panic::catch_unwind(AssertUnwindSafe(|| test(tree.current()))));
    match outcome {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(e.0),
        Err(payload) => Err(panic_message(payload)),
    }
}

/// Debug-renders the current value, guarding against panics in the
/// strategy closures or the value's `Debug` impl.
fn render<T>(tree: &T) -> String
where
    T: crate::strategy::ValueTree + ?Sized,
{
    quiet_panics(|| panic::catch_unwind(AssertUnwindSafe(|| format!("{:?}", tree.current()))))
        .unwrap_or_else(|_| "<unrenderable: strategy or Debug panicked>".to_string())
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

thread_local! {
    static QUIET: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Suppresses the default panic hook's stderr spam for panics raised on
/// this thread inside `f` (each shrink candidate may panic). The hook is
/// swapped once per process and forwards untouched for all other threads.
fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
    let before = QUIET.with(|q| q.replace(true));
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            QUIET.with(|q| q.set(self.0));
        }
    }
    let _restore = Restore(before);
    f()
}

/// Entry point used by the `proptest!` macro: runs the property and panics
/// with a replayable report on failure.
pub fn run_property<S, F>(name: &str, config: ProptestConfig, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let mut runner = TestRunner::for_name(config, name);
    if let Some(seed) = runner.forced_seed {
        // QPROP_SEED applies to every property in the process; flag that
        // this one ran a single replayed case so an unfiltered
        // `QPROP_SEED=… cargo test` green is not mistaken for full coverage.
        eprintln!("[qprop] {name}: replaying single case QPROP_SEED={seed} (other cases skipped)");
    }
    if let Err(e) = runner.run(strategy, test) {
        panic!(
            "[qprop] property '{}' failed at case {}: {}\n  \
             minimal counterexample: {}\n  \
             rerun this case with: QPROP_SEED={}",
            name, e.case, e.message, e.counterexample, e.seed
        );
    }
}

/// FNV-1a over `bytes` — the stable name→master-seed map.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_shrink_finds_exact_boundary() {
        // x >= 500 fails; greedy bisection must land on exactly 500.
        let mut runner = TestRunner::from_seed(42);
        let err = runner
            .run(&(0u64..10_000), |x| {
                if x < 500 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("too big"))
                }
            })
            .unwrap_err();
        assert_eq!(err.counterexample, "500");
    }

    #[test]
    fn replay_seed_reproduces_counterexample() {
        let prop = |x: u64| {
            if x < 500 {
                Ok(())
            } else {
                Err(TestCaseError::fail("too big"))
            }
        };
        let e1 = TestRunner::from_seed(7)
            .run(&(0u64..10_000), prop)
            .unwrap_err();
        let e2 = TestRunner::with_replay_seed(ProptestConfig::default(), e1.seed)
            .run(&(0u64..10_000), prop)
            .unwrap_err();
        assert_eq!(e1.counterexample, e2.counterexample);
        assert_eq!(e2.case, 0);
    }

    #[test]
    fn passing_property_is_ok() {
        let mut runner = TestRunner::from_seed(1);
        assert!(runner
            .run(&(0u32..10), |x| {
                assert!(x < 10);
                Ok(())
            })
            .is_ok());
    }

    #[test]
    fn panics_are_caught_and_shrunk() {
        let mut runner = TestRunner::from_seed(9);
        let err = runner
            .run(&(0i64..1_000_000), |x| {
                assert!(x < 1234, "x too large");
                Ok(())
            })
            .unwrap_err();
        assert_eq!(err.counterexample, "1234");
        assert!(err.message.contains("x too large"), "{}", err.message);
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let collect = || {
            let vals = std::cell::RefCell::new(Vec::new());
            TestRunner::for_name(ProptestConfig::with_cases(16), "qprop::det")
                .run(&(0u64..1_000_000), |x| {
                    vals.borrow_mut().push(x);
                    Ok(())
                })
                .unwrap();
            vals.into_inner()
        };
        assert_eq!(collect(), collect());
    }
}
