//! Offline shim for `serde`.
//!
//! Re-exports the no-op derive macros so `use serde::{Deserialize,
//! Serialize}` plus `#[derive(Serialize, Deserialize)]` compile unchanged.
//! Checkpoint persistence in this workspace goes through the byte-stable
//! `qcheck::codec`, so nothing ever calls a serde impl.

pub use serde_derive::{Deserialize, Serialize};
