//! State-vector representation and gate-application kernels.
//!
//! A [`StateVector`] over `n` qubits stores all `2^n` complex amplitudes.
//! Basis states are indexed little-endian: qubit 0 is the least significant
//! bit of the index. Gate application is performed in place with bit-mask
//! kernels.
//!
//! ## SIMD dispatch
//!
//! Contiguous-slice kernels and the sum-of-squares reductions run through
//! the explicit-SIMD primitives in `qsimd` (`QSIM_SIMD` selects the level;
//! scalar is the bit-exactness oracle — see the `qsimd` crate docs). The
//! level is resolved **once per gate application on the calling thread**
//! and passed explicitly into every kernel, so pool worker threads — which
//! cannot see a caller's thread-local override — always run the level the
//! caller chose.
//!
//! ## Kernel structure & threading
//!
//! Gate application decomposes the amplitude array into disjoint
//! *pair slices* (one-qubit gates) or *quad slices* (two-qubit gates):
//! contiguous `&mut` regions holding the amplitudes a kernel couples. The
//! serial and parallel paths run the **same** kernel over the same
//! decomposition; with [`qpar::current_threads`] > 1 and at least
//! [`PARALLEL_MIN_AMPS`] amplitudes the slices are fanned out across scoped
//! threads. Every pair/quad update is independent, so results are
//! bit-identical for every thread count.
//!
//! Matrices are classified by structure before dispatch — diagonal
//! (`Rz`, `Cphase`, `Rzz`, …) and monomial (`X`, `Cx`, `Swap`, …) gates
//! take reduced kernels that touch a fraction of the data the dense path
//! does.
//!
//! Reductions (norm, inner products, marginals) switch above
//! [`STRIPED_SUM_MIN_AMPS`] amplitudes to partial sums over
//! [`SUM_STRIPES`] *fixed* index ranges, combined in index order. The
//! stripe layout depends only on the input length — never on the thread
//! count — so reduction results are also identical for every thread count.
//! Sum-of-squares reductions accumulate into `qsimd`'s canonical four-lane
//! structure within each stripe (see [`qsimd::accumulate_sq`]), which is
//! likewise independent of both the thread count and the SIMD level.

use serde::{Deserialize, Serialize};

use crate::complex::Complex64;
use crate::gate::{Gate, Matrix2, Matrix4};
use crate::rng::Xoshiro256;

/// Minimum amplitude count before gate kernels fan out across threads
/// (below this, scoped-thread overhead dwarfs the kernel).
pub const PARALLEL_MIN_AMPS: usize = 1 << 14;

/// Minimum amplitude count before reductions use the fixed striped
/// partition (kept deliberately high: striping changes summation grouping
/// relative to the single whole-array accumulation small states use).
pub const STRIPED_SUM_MIN_AMPS: usize = 1 << 15;

/// Fixed stripe count for striped reductions. Independent of the thread
/// count by design — see the module docs' determinism contract.
pub const SUM_STRIPES: usize = 64;

/// Errors produced by state-vector operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateError {
    /// A qubit index was out of range for this register size.
    QubitOutOfRange {
        /// The offending index.
        qubit: usize,
        /// The register size.
        num_qubits: usize,
    },
    /// A two-qubit gate was applied to identical operands.
    DuplicateQubits(usize),
    /// Amplitude vector length was not a power of two.
    InvalidLength(usize),
    /// The register sizes of two states do not match.
    SizeMismatch {
        /// Left-hand size (qubits).
        left: usize,
        /// Right-hand size (qubits).
        right: usize,
    },
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit index {qubit} out of range for {num_qubits}-qubit register"
                )
            }
            StateError::DuplicateQubits(q) => {
                write!(f, "two-qubit gate applied twice to qubit {q}")
            }
            StateError::InvalidLength(n) => {
                write!(f, "amplitude vector length {n} is not a power of two")
            }
            StateError::SizeMismatch { left, right } => {
                write!(f, "register size mismatch: {left} vs {right} qubits")
            }
        }
    }
}

impl std::error::Error for StateError {}

/// A pure quantum state over `n` qubits.
///
/// # Examples
///
/// ```
/// use qsim::state::StateVector;
/// use qsim::gate::Gate;
///
/// // Prepare the Bell state (|00⟩ + |11⟩)/√2.
/// let mut psi = StateVector::zero_state(2);
/// psi.apply_gate(Gate::H, &[0]).unwrap();
/// psi.apply_gate(Gate::Cx, &[0, 1]).unwrap();
/// assert!((psi.probability(0) - 0.5).abs() < 1e-12);
/// assert!((psi.probability(3) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StateVector {
    num_qubits: usize,
    amplitudes: Vec<Complex64>,
}

impl StateVector {
    /// Creates the all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` exceeds 30 (the 16·2³⁰-byte state would not be
    /// allocatable in this environment anyway).
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(num_qubits <= 30, "register too large: {num_qubits} qubits");
        let mut amplitudes = vec![Complex64::ZERO; 1usize << num_qubits];
        amplitudes[0] = Complex64::ONE;
        StateVector {
            num_qubits,
            amplitudes,
        }
    }

    /// Creates the basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_qubits`.
    pub fn basis_state(num_qubits: usize, index: usize) -> Self {
        let mut s = StateVector::zero_state(num_qubits);
        assert!(index < s.amplitudes.len(), "basis index out of range");
        s.amplitudes[0] = Complex64::ZERO;
        s.amplitudes[index] = Complex64::ONE;
        s
    }

    /// Builds a state from raw amplitudes, normalizing them.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::InvalidLength`] when the vector length is not a
    /// power of two or is zero.
    pub fn from_amplitudes(mut amplitudes: Vec<Complex64>) -> Result<Self, StateError> {
        let n = amplitudes.len();
        if n == 0 || n & (n - 1) != 0 {
            return Err(StateError::InvalidLength(n));
        }
        let num_qubits = n.trailing_zeros() as usize;
        let norm: f64 = norm_sqr_sum(&amplitudes).sqrt();
        if norm > 0.0 {
            for a in &mut amplitudes {
                *a = *a / norm;
            }
        }
        Ok(StateVector {
            num_qubits,
            amplitudes,
        })
    }

    /// Samples a Haar-ish random state (Gaussian amplitudes, normalized).
    pub fn random(num_qubits: usize, rng: &mut Xoshiro256) -> Self {
        let n = 1usize << num_qubits;
        let amps: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(rng.next_gaussian(), rng.next_gaussian()))
            .collect();
        StateVector::from_amplitudes(amps).expect("power-of-two length")
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The raw amplitude slice (little-endian basis ordering).
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amplitudes
    }

    /// The amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n`.
    pub fn amplitude(&self, index: usize) -> Complex64 {
        self.amplitudes[index]
    }

    /// Born-rule probability of observing basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amplitudes[index].norm_sqr()
    }

    /// Full probability distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// The L2 norm of the state (1.0 for a valid state).
    pub fn norm(&self) -> f64 {
        norm_sqr_sum(&self.amplitudes).sqrt()
    }

    /// Renormalizes in place; no-op on the zero vector.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for a in &mut self.amplitudes {
                *a = *a / n;
            }
        }
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::SizeMismatch`] when the registers differ.
    pub fn inner(&self, other: &StateVector) -> Result<Complex64, StateError> {
        if self.num_qubits != other.num_qubits {
            return Err(StateError::SizeMismatch {
                left: self.num_qubits,
                right: other.num_qubits,
            });
        }
        let n = self.amplitudes.len();
        if n < STRIPED_SUM_MIN_AMPS {
            return Ok(self
                .amplitudes
                .iter()
                .zip(&other.amplitudes)
                .map(|(a, b)| a.conj() * *b)
                .sum());
        }
        let (left, right) = (&self.amplitudes, &other.amplitudes);
        let partials = qpar::map(qpar::ranges(n, SUM_STRIPES), |r| {
            left[r.clone()]
                .iter()
                .zip(&right[r])
                .map(|(a, b)| a.conj() * *b)
                .sum::<Complex64>()
        });
        Ok(partials.into_iter().sum())
    }

    /// Fidelity `|⟨self|other⟩|²` between two pure states.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::SizeMismatch`] when the registers differ.
    pub fn fidelity(&self, other: &StateVector) -> Result<f64, StateError> {
        Ok(self.inner(other)?.norm_sqr())
    }

    /// Tensor product `self ⊗ other` (other occupies the high-order qubits).
    pub fn tensor(&self, other: &StateVector) -> StateVector {
        let mut amps = Vec::with_capacity(self.amplitudes.len() * other.amplitudes.len());
        for b in &other.amplitudes {
            for a in &self.amplitudes {
                amps.push(*a * *b);
            }
        }
        StateVector {
            num_qubits: self.num_qubits + other.num_qubits,
            amplitudes: amps,
        }
    }

    fn check_qubit(&self, q: usize) -> Result<(), StateError> {
        if q >= self.num_qubits {
            Err(StateError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.num_qubits,
            })
        } else {
            Ok(())
        }
    }

    /// Applies a gate to the given qubits.
    ///
    /// For two-qubit gates, `qubits[0]` is the first operand (the control for
    /// controlled gates) and `qubits[1]` the second (target).
    ///
    /// # Errors
    ///
    /// Returns an error when the operand count does not match the gate arity,
    /// a qubit index is out of range, or a two-qubit gate is given duplicate
    /// operands.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) -> Result<(), StateError> {
        match gate.arity() {
            1 => {
                if qubits.len() != 1 {
                    return Err(StateError::QubitOutOfRange {
                        qubit: usize::MAX,
                        num_qubits: self.num_qubits,
                    });
                }
                self.check_qubit(qubits[0])?;
                self.apply_matrix2(&gate.matrix2(), qubits[0]);
                Ok(())
            }
            2 => {
                if qubits.len() != 2 {
                    return Err(StateError::QubitOutOfRange {
                        qubit: usize::MAX,
                        num_qubits: self.num_qubits,
                    });
                }
                self.check_qubit(qubits[0])?;
                self.check_qubit(qubits[1])?;
                if qubits[0] == qubits[1] {
                    return Err(StateError::DuplicateQubits(qubits[0]));
                }
                self.apply_matrix4(&gate.matrix4(), qubits[0], qubits[1]);
                Ok(())
            }
            a => unreachable!("unsupported arity {a}"),
        }
    }

    /// Applies an arbitrary 2×2 unitary to qubit `q` in place.
    ///
    /// The caller is responsible for `q < n`; library callers go through
    /// [`StateVector::apply_gate`], which validates.
    ///
    /// Runs multi-threaded for registers of at least [`PARALLEL_MIN_AMPS`]
    /// amplitudes when [`qpar::current_threads`] > 1; parallel and serial
    /// results are bit-identical.
    pub fn apply_matrix2(&mut self, m: &Matrix2, q: usize) {
        self.apply_matrix2_with(Kernel2::classify(m), m, q);
    }

    /// [`StateVector::apply_matrix2`] with a precompiled kernel descriptor
    /// (the execution-plan layer classifies once at bind time).
    pub(crate) fn apply_matrix2_with(&mut self, kernel: Kernel2, m: &Matrix2, q: usize) {
        let bit = 1usize << q;
        // Resolved here, on the calling thread, before any fan-out: pool
        // workers cannot see the caller's thread-local SIMD override.
        let lvl = qsimd::active();
        let threads = kernel_threads(self.amplitudes.len());
        if threads <= 1 {
            kernel.run_region(lvl, m, &mut self.amplitudes, bit);
            return;
        }
        let blocks = self.amplitudes.len() / (bit << 1);
        if blocks >= threads * 2 {
            // Low target qubit: plenty of whole 2·bit blocks — hand each
            // thread a contiguous run of blocks.
            let per = blocks.div_ceil(threads * 4).max(1);
            let items: Vec<&mut [Complex64]> =
                self.amplitudes.chunks_mut(per * (bit << 1)).collect();
            qpar::for_each_threads(threads, items, |chunk| {
                kernel.run_region(lvl, m, chunk, bit)
            });
            return;
        }
        // High target qubit: few blocks, each with a long pair run —
        // subdivide the runs instead.
        let per_block = (threads * 4).div_ceil(blocks).max(1);
        let sub = bit.div_ceil(per_block).max(1);
        let mut items = Vec::with_capacity(blocks * per_block);
        for block in self.amplitudes.chunks_mut(bit << 1) {
            let (lo, hi) = block.split_at_mut(bit);
            items.extend(lo.chunks_mut(sub).zip(hi.chunks_mut(sub)));
        }
        qpar::for_each_threads(threads, items, |(lo, hi)| kernel.run(lvl, m, lo, hi));
    }

    /// Applies an arbitrary 4×4 unitary to qubits `(qa, qb)` in place.
    ///
    /// Matrix basis convention: index bit 0 ↔ `qa`, index bit 1 ↔ `qb`.
    ///
    /// Threading follows [`StateVector::apply_matrix2`]: bit-identical
    /// results at every thread count.
    pub fn apply_matrix4(&mut self, m: &Matrix4, qa: usize, qb: usize) {
        self.apply_matrix4_with(Kernel4::classify(m), m, qa, qb);
    }

    /// [`StateVector::apply_matrix4`] with a precompiled kernel descriptor
    /// (the execution-plan layer classifies once at bind time).
    pub(crate) fn apply_matrix4_with(
        &mut self,
        kernel: Kernel4,
        m: &Matrix4,
        qa: usize,
        qb: usize,
    ) {
        debug_assert_ne!(qa, qb);
        let ba = 1usize << qa;
        let bb = 1usize << qb;
        let (blo, bhi) = (ba.min(bb), ba.max(bb));
        // Quad layout within a 2·bhi block split at bhi into (pa, pb), each
        // split again at blo: when qa is the lower qubit the four slices map
        // to (a00, a01, a10, a11); otherwise a01/a10 swap roles.
        let qa_is_low = ba < bb;
        // Resolved pre-fan-out on the calling thread (see apply_matrix2_with).
        let lvl = qsimd::active();
        let threads = kernel_threads(self.amplitudes.len());
        let blocks = self.amplitudes.len() / (bhi << 1);
        if threads <= 1 {
            kernel.run_region4(lvl, m, &mut self.amplitudes, qa, qb);
            return;
        }
        if blocks >= threads * 2 {
            // Both qubits low: hand each thread contiguous runs of whole
            // 2·bhi blocks.
            let per = blocks.div_ceil(threads * 4).max(1);
            let items: Vec<&mut [Complex64]> =
                self.amplitudes.chunks_mut(per * (bhi << 1)).collect();
            qpar::for_each_threads(threads, items, |chunk| {
                kernel.run_region4(lvl, m, chunk, qa, qb);
            });
            return;
        }
        // High qubit present: subdivide within blocks at 2·blo-aligned
        // boundaries so every piece holds whole quads.
        let pieces = (threads * 4).div_ceil(blocks).max(1);
        let piece = bhi.div_ceil(pieces).div_ceil(blo << 1).max(1) * (blo << 1);
        let mut items = Vec::with_capacity(blocks * pieces);
        for block in self.amplitudes.chunks_mut(bhi << 1) {
            let (pa, pb) = block.split_at_mut(bhi);
            items.extend(pa.chunks_mut(piece).zip(pb.chunks_mut(piece)));
        }
        qpar::for_each_threads(threads, items, |(pa, pb)| {
            kernel.run_aligned(lvl, m, qa_is_low, blo, pa, pb)
        });
    }

    /// Probability that qubit `q` measures as `|1⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::QubitOutOfRange`] for an invalid qubit.
    pub fn prob_one(&self, q: usize) -> Result<f64, StateError> {
        self.check_qubit(q)?;
        let bit = 1usize << q;
        let n = self.amplitudes.len();
        let lvl = qsimd::active();
        if n < STRIPED_SUM_MIN_AMPS {
            let mut lanes = [0.0f64; 4];
            accumulate_masked_sq(lvl, &mut lanes, &self.amplitudes, bit, 0..n);
            return Ok(qsimd::combine_lanes(lanes));
        }
        let amps = &self.amplitudes;
        let partials = qpar::map(qpar::ranges(n, SUM_STRIPES), |r| {
            let mut lanes = [0.0f64; 4];
            accumulate_masked_sq(lvl, &mut lanes, amps, bit, r);
            qsimd::combine_lanes(lanes)
        });
        Ok(partials.into_iter().sum())
    }

    /// Projective measurement of qubit `q` in the computational basis.
    ///
    /// Collapses the state and returns the outcome bit.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::QubitOutOfRange`] for an invalid qubit.
    pub fn measure_qubit(&mut self, q: usize, rng: &mut Xoshiro256) -> Result<u8, StateError> {
        let p1 = self.prob_one(q)?;
        let outcome = u8::from(rng.next_f64() < p1);
        let bit = 1usize << q;
        let keep_mask_set = outcome == 1;
        for (i, a) in self.amplitudes.iter_mut().enumerate() {
            if ((i & bit) != 0) != keep_mask_set {
                *a = Complex64::ZERO;
            }
        }
        self.normalize();
        Ok(outcome)
    }

    /// Samples `shots` full-register measurement outcomes without collapsing
    /// the state (the state is re-preparable, so sampling from the final
    /// distribution is equivalent to independent prepare-and-measure runs).
    pub fn sample_counts(&self, shots: usize, rng: &mut Xoshiro256) -> Vec<(usize, u32)> {
        let mut cumulative = Vec::with_capacity(self.amplitudes.len());
        let mut acc = 0.0;
        for a in &self.amplitudes {
            acc += a.norm_sqr();
            cumulative.push(acc);
        }
        let mut counts: std::collections::BTreeMap<usize, u32> = std::collections::BTreeMap::new();
        for _ in 0..shots {
            let idx = rng.sample_cumulative(&cumulative);
            *counts.entry(idx).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Expectation value `⟨ψ|Z_q|ψ⟩` of a single-qubit Pauli-Z.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::QubitOutOfRange`] for an invalid qubit.
    pub fn expect_z(&self, q: usize) -> Result<f64, StateError> {
        Ok(1.0 - 2.0 * self.prob_one(q)?)
    }

    /// Serialized size in bytes of the raw amplitude data (the cost of a
    /// naive simulator-state checkpoint): `2^n · 16`.
    pub fn raw_byte_size(&self) -> usize {
        self.amplitudes.len() * std::mem::size_of::<Complex64>()
    }

    /// Mutable access to the raw amplitude storage for the execution-plan
    /// layer's tiled executor (which applies kernels to cache-sized
    /// sub-regions directly).
    pub(crate) fn amplitudes_mut(&mut self) -> &mut Vec<Complex64> {
        &mut self.amplitudes
    }
}

/// Below this stride, pair/quad kernels use direct index arithmetic
/// instead of sub-slice chunking (tiny chunks cost more in iterator
/// bookkeeping than in arithmetic).
const INDEX_KERNEL_MAX_STRIDE: usize = 32;

/// Minimum low-operand stride before two-qubit kernels take the aligned
/// slice path: slice kernels run bounds-check-free (the compiler
/// vectorizes them), but below this stride the per-sub-block slicing
/// overhead exceeds the win and the flat indexed path is faster.
const ALIGNED_KERNEL_MIN_STRIDE: usize = 32;

/// Row-major flattening of a 2×2 complex matrix for the `qsimd` kernels.
fn flat2(m: &Matrix2) -> [f64; 8] {
    [
        m[0][0].re, m[0][0].im, m[0][1].re, m[0][1].im, m[1][0].re, m[1][0].im, m[1][1].re,
        m[1][1].im,
    ]
}

/// Real parts of a 2×2 matrix known to be all-real (`Kernel2::RealDense`).
fn flat2_real(m: &Matrix2) -> [f64; 4] {
    [m[0][0].re, m[0][1].re, m[1][0].re, m[1][1].re]
}

/// Row-major flattening of a 4×4 complex matrix for the `qsimd` kernels.
fn flat4(m: &Matrix4) -> [f64; 32] {
    let mut out = [0.0f64; 32];
    for r in 0..4 {
        for c in 0..4 {
            out[(4 * r + c) * 2] = m[r][c].re;
            out[(4 * r + c) * 2 + 1] = m[r][c].im;
        }
    }
    out
}

/// Threads a gate kernel over `len` amplitudes may use: 1 below the
/// fan-out threshold, the ambient [`qpar::current_threads`] otherwise.
fn kernel_threads(len: usize) -> usize {
    if len < PARALLEL_MIN_AMPS {
        1
    } else {
        qpar::current_threads()
    }
}

/// Sum of `|a|²` with the fixed striped partition above
/// [`STRIPED_SUM_MIN_AMPS`] (see the module docs' determinism contract).
/// Each stripe accumulates into `qsimd`'s canonical four-lane structure,
/// so the result is identical at every SIMD level and thread count.
fn norm_sqr_sum(amps: &[Complex64]) -> f64 {
    let lvl = qsimd::active();
    if amps.len() < STRIPED_SUM_MIN_AMPS {
        let mut lanes = [0.0f64; 4];
        qsimd::accumulate_sq(lvl, &mut lanes, Complex64::flatten(amps));
        return qsimd::combine_lanes(lanes);
    }
    let partials = qpar::map(qpar::ranges(amps.len(), SUM_STRIPES), |r| {
        let mut lanes = [0.0f64; 4];
        qsimd::accumulate_sq(lvl, &mut lanes, Complex64::flatten(&amps[r]));
        qsimd::combine_lanes(lanes)
    });
    partials.into_iter().sum()
}

/// Accumulates `|a|²` of the amplitudes in `range` whose basis index has
/// `bit` set. Accepted indices form contiguous runs `[base|bit, base+2·bit)`;
/// each run feeds [`qsimd::accumulate_sq`] with the lane phase restarting
/// at the run boundary, so the result depends only on `(range, bit)` —
/// never on the thread count or SIMD level.
fn accumulate_masked_sq(
    lvl: qsimd::Level,
    lanes: &mut [f64; 4],
    amps: &[Complex64],
    bit: usize,
    range: std::ops::Range<usize>,
) {
    let block = bit << 1;
    let mut base = range.start & !(block - 1);
    while base < range.end {
        let run_start = (base | bit).max(range.start);
        let run_end = (base + block).min(range.end);
        if run_start < run_end {
            qsimd::accumulate_sq(lvl, lanes, Complex64::flatten(&amps[run_start..run_end]));
        }
        base += block;
    }
}

/// Structural classification of a 2×2 gate matrix, picked once per gate
/// application (or once per plan bind — see `crate::plan`). Reduced
/// kernels touch less data than the dense path; the classification
/// depends only on the matrix, so serial and parallel executions always
/// agree.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Kernel2 {
    /// Both off-diagonal entries zero (`Z`, `S`, `T`, `Rz`, `Phase`, …).
    Diag,
    /// Both diagonal entries zero (`X`, `Y`).
    Anti,
    /// All four entries real (`H`, `Ry`): half the multiplies of the
    /// complex dense path, and friendlier to auto-vectorization.
    RealDense,
    /// General dense 2×2.
    Dense,
}

impl Kernel2 {
    pub(crate) fn classify(m: &Matrix2) -> Self {
        let z = Complex64::ZERO;
        if m[0][1] == z && m[1][0] == z {
            Kernel2::Diag
        } else if m[0][0] == z && m[1][1] == z {
            Kernel2::Anti
        } else if m.iter().flatten().all(|c| c.im == 0.0) {
            Kernel2::RealDense
        } else {
            Kernel2::Dense
        }
    }

    /// Applies the kernel to a contiguous region made of whole `2·bit`
    /// blocks. Long pair runs use the slice kernel; short ones (low target
    /// qubit) use direct index arithmetic, which avoids per-chunk iterator
    /// overhead.
    ///
    /// Every pair update is independent, so applying the kernel region by
    /// region (the plan executor's cache-sized tiles) is bit-identical to
    /// one whole-array pass.
    pub(crate) fn run_region(
        self,
        lvl: qsimd::Level,
        m: &Matrix2,
        amps: &mut [Complex64],
        bit: usize,
    ) {
        // Short strides: strided index loops beat degenerate 1–2 element
        // sub-slices. Pair base indices come in contiguous runs of `bit`
        // stepping by `2·bit` — the contiguous inner loop is what the
        // compiler vectorizes (see the quad loop in `Kernel4::run_flat`
        // for the same structure).
        macro_rules! pair_loop {
            (|$i0:ident| $body:block) => {
                let pairs = amps.len() >> 1;
                let runs = pairs / bit;
                let mut run_base = 0usize;
                for _ in 0..runs {
                    for d in 0..bit {
                        let $i0 = run_base + d;
                        $body
                    }
                    run_base += bit << 1;
                }
            };
        }
        // Unit anti-diagonal (`X`): a pure amplitude swap. Bit-for-bit
        // this is NOT the same as multiplying by the exact-one
        // coefficients (`1·x` renormalizes signed zeros), so every
        // executor — interp sweeps, plan tiles, and the fused
        // permutation gather — must agree on the move-only form. Moves
        // carry no rounding, so dispatching short strides to the index
        // loop and long ones to the slice memswap is exactness-neutral.
        if matches!(self, Kernel2::Anti)
            && m[0][1] == Complex64::ONE
            && m[1][0] == Complex64::ONE
            && bit < INDEX_KERNEL_MAX_STRIDE
        {
            pair_loop!(|i0| {
                amps.swap(i0, i0 | bit);
            });
            return;
        }
        if bit < INDEX_KERNEL_MAX_STRIDE && (bit <= 2 || matches!(self, Kernel2::Diag)) {
            if bit == 1 && !matches!(self, Kernel2::Diag) {
                // Adjacent pairs: the whole region is back-to-back
                // (a0, a1) pairs — the `qsimd` interleaved kernels.
                match self {
                    Kernel2::RealDense => {
                        qsimd::apply2_adjacent_real(
                            lvl,
                            &flat2_real(m),
                            Complex64::flatten_mut(amps),
                        );
                    }
                    _ => {
                        qsimd::apply2_adjacent(lvl, &flat2(m), Complex64::flatten_mut(amps));
                    }
                }
                return;
            }
            match self {
                Kernel2::Diag => {
                    let (d0, d1) = (m[0][0], m[1][1]);
                    let one = Complex64::ONE;
                    if d0 != one && d1 != one {
                        // Both halves move: one fused pass (two skip
                        // passes would walk the array twice).
                        pair_loop!(|i0| {
                            amps[i0] = d0 * amps[i0];
                            let i1 = i0 | bit;
                            amps[i1] = d1 * amps[i1];
                        });
                    } else {
                        if d0 != one {
                            pair_loop!(|i0| {
                                amps[i0] = d0 * amps[i0];
                            });
                        }
                        if d1 != one {
                            pair_loop!(|i0| {
                                let i1 = i0 | bit;
                                amps[i1] = d1 * amps[i1];
                            });
                        }
                    }
                }
                Kernel2::RealDense => {
                    let (m00, m01) = (m[0][0].re, m[0][1].re);
                    let (m10, m11) = (m[1][0].re, m[1][1].re);
                    pair_loop!(|i0| {
                        let i1 = i0 | bit;
                        let (a, b) = (amps[i0], amps[i1]);
                        amps[i0] = Complex64::new(m00 * a.re + m01 * b.re, m00 * a.im + m01 * b.im);
                        amps[i1] = Complex64::new(m10 * a.re + m11 * b.re, m10 * a.im + m11 * b.im);
                    });
                }
                Kernel2::Anti => {
                    let (m01, m10) = (m[0][1], m[1][0]);
                    pair_loop!(|i0| {
                        let i1 = i0 | bit;
                        let a0 = amps[i0];
                        amps[i0] = m01 * amps[i1];
                        amps[i1] = m10 * a0;
                    });
                }
                Kernel2::Dense => {
                    pair_loop!(|i0| {
                        let i1 = i0 | bit;
                        let (a0, a1) = (amps[i0], amps[i1]);
                        amps[i0] = m[0][0] * a0 + m[0][1] * a1;
                        amps[i1] = m[1][0] * a0 + m[1][1] * a1;
                    });
                }
            }
            return;
        }
        for block in amps.chunks_mut(bit << 1) {
            let (lo, hi) = block.split_at_mut(bit);
            self.run(lvl, m, lo, hi);
        }
    }

    /// Applies the kernel to one pair run: `lo[k]` holds the amplitude with
    /// the target bit clear, `hi[k]` the partner with it set. The slice
    /// arms dispatch through `qsimd` (the scalar level reproduces the
    /// historical flattened loops operation for operation).
    fn run(self, lvl: qsimd::Level, m: &Matrix2, lo: &mut [Complex64], hi: &mut [Complex64]) {
        match self {
            Kernel2::Dense => {
                qsimd::apply2_dense(
                    lvl,
                    &flat2(m),
                    Complex64::flatten_mut(lo),
                    Complex64::flatten_mut(hi),
                );
            }
            Kernel2::RealDense => {
                qsimd::apply2_real(
                    lvl,
                    &flat2_real(m),
                    Complex64::flatten_mut(lo),
                    Complex64::flatten_mut(hi),
                );
            }
            Kernel2::Diag => {
                scale_slice(lvl, lo, m[0][0]);
                scale_slice(lvl, hi, m[1][1]);
            }
            Kernel2::Anti => {
                // `(lo, hi) ← (m01·hi, m10·lo)` is exactly the scaled-swap
                // primitive; unit coefficients short-circuit to a pure
                // memswap inside (`1·x` would renormalize signed zeros).
                swap_scaled(lvl, lo, hi, m[0][1], m[1][0]);
            }
        }
    }
}

/// Picks two of four equal-length slices by basis index (`i < j`).
fn pick_two<'s>(
    i: usize,
    j: usize,
    s00: &'s mut [Complex64],
    s01: &'s mut [Complex64],
    s10: &'s mut [Complex64],
    s11: &'s mut [Complex64],
) -> (&'s mut [Complex64], &'s mut [Complex64]) {
    match (i, j) {
        (0, 1) => (s00, s01),
        (0, 2) => (s00, s10),
        (0, 3) => (s00, s11),
        (1, 2) => (s01, s10),
        (1, 3) => (s01, s11),
        (2, 3) => (s10, s11),
        _ => unreachable!("transposition indices must satisfy i < j < 4"),
    }
}

/// `(si[k], sj[k]) ← (ci·sj[k], cj·si[k])` — the transposition kernel body.
fn swap_scaled(
    lvl: qsimd::Level,
    si: &mut [Complex64],
    sj: &mut [Complex64],
    ci: Complex64,
    cj: Complex64,
) {
    let one = Complex64::ONE;
    if ci == one && cj == one {
        si.swap_with_slice(sj);
        return;
    }
    qsimd::swap_scale(
        lvl,
        Complex64::flatten_mut(si),
        Complex64::flatten_mut(sj),
        (ci.re, ci.im),
        (cj.re, cj.im),
    );
}

/// Multiplies a slice by a scalar, skipping the exact-identity scalar
/// (`S`/`T`/`Cphase`-style gates leave most amplitudes untouched).
fn scale_slice(lvl: qsimd::Level, xs: &mut [Complex64], c: Complex64) {
    if c == Complex64::ONE {
        return;
    }
    qsimd::scale(lvl, Complex64::flatten_mut(xs), c.re, c.im);
}

/// Structural classification of a 4×4 gate matrix.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Kernel4 {
    /// Diagonal (`Cz`, `Cphase`, `Crz`, `Rzz`): four independent scalings.
    Diag([Complex64; 4]),
    /// Two rows swapped with phases, the other two only scaled
    /// (`Cx`, `Cy`, `Swap`, and any of those with diagonal factors folded
    /// in): one complex multiply per amplitude at most, and exact-identity
    /// scalings are skipped entirely.
    Transposition {
        /// First swapped matrix-basis index (`i < j`).
        i: u8,
        /// Second swapped matrix-basis index.
        j: u8,
        /// `new[i] = ci * old[j]`.
        ci: Complex64,
        /// `new[j] = cj * old[i]`.
        cj: Complex64,
        /// The two fixed matrix-basis indices, ascending.
        fixed_rows: [u8; 2],
        /// Scaling factors of the fixed rows, same order.
        fixed: [Complex64; 2],
    },
    /// Monomial — one non-zero per row: a permutation with per-row phases
    /// (fallback for monomials that are not plain transpositions).
    Monomial {
        /// `new[i] = coef[i] * old[perm[i]]`.
        perm: [u8; 4],
        /// Per-row multipliers.
        coef: [Complex64; 4],
    },
    /// General dense 4×4 (`Rxx`, `Ryy`, composed unitaries).
    Dense,
}

impl Kernel4 {
    #[allow(clippy::needless_range_loop)] // row/column indices are basis bit patterns
    pub(crate) fn classify(m: &Matrix4) -> Self {
        let z = Complex64::ZERO;
        let mut perm = [0u8; 4];
        let mut coef = [z; 4];
        let mut monomial = true;
        'rows: for i in 0..4 {
            let mut nonzero = None;
            for j in 0..4 {
                if m[i][j] != z {
                    if nonzero.is_some() {
                        monomial = false;
                        break 'rows;
                    }
                    nonzero = Some(j);
                }
            }
            match nonzero {
                Some(j) => {
                    perm[i] = j as u8;
                    coef[i] = m[i][j];
                }
                None => {
                    monomial = false;
                    break 'rows;
                }
            }
        }
        if monomial {
            if perm == [0, 1, 2, 3] {
                return Kernel4::Diag(coef);
            }
            let moved: Vec<usize> = (0..4).filter(|&r| perm[r] as usize != r).collect();
            if moved.len() == 2 {
                let (i, j) = (moved[0], moved[1]);
                if perm[i] as usize == j && perm[j] as usize == i {
                    let fr: Vec<usize> = (0..4).filter(|r| *r != i && *r != j).collect();
                    return Kernel4::Transposition {
                        i: i as u8,
                        j: j as u8,
                        ci: coef[i],
                        cj: coef[j],
                        fixed_rows: [fr[0] as u8, fr[1] as u8],
                        fixed: [coef[fr[0]], coef[fr[1]]],
                    };
                }
            }
            return Kernel4::Monomial { perm, coef };
        }
        Kernel4::Dense
    }

    /// Serial application to a contiguous region made of whole `2·bhi`
    /// blocks, choosing the flat or aligned path exactly as the serial
    /// interpreter does. Every quad update is independent, so region-by-
    /// region application (the plan executor's tiles) is bit-identical to
    /// one whole-array pass.
    pub(crate) fn run_region4(
        self,
        lvl: qsimd::Level,
        m: &Matrix4,
        amps: &mut [Complex64],
        qa: usize,
        qb: usize,
    ) {
        let ba = 1usize << qa;
        let bb = 1usize << qb;
        let (blo, bhi) = (ba.min(bb), ba.max(bb));
        if blo < ALIGNED_KERNEL_MIN_STRIDE {
            self.run_flat(m, amps, ba, bb);
        } else {
            let qa_is_low = ba < bb;
            for block in amps.chunks_mut(bhi << 1) {
                let (pa, pb) = block.split_at_mut(bhi);
                self.run_aligned(lvl, m, qa_is_low, blo, pa, pb);
            }
        }
    }

    /// Applies the kernel to a contiguous region made of whole `2·bhi`
    /// blocks, addressing quads directly through the operand bit masks
    /// `ba`/`bb`. All dispatch and setup is hoisted out of the quad loop,
    /// so this is the fast path for low-qubit operands where blocks are
    /// tiny and numerous.
    fn run_flat(self, m: &Matrix4, amps: &mut [Complex64], ba: usize, bb: usize) {
        let (blo, bhi) = (ba.min(bb), ba.max(bb));
        let quads = amps.len() >> 2;
        // Quad base indices (both operand bits clear) come in contiguous
        // runs of `blo`, with runs stepping by `2·blo` and skipping the
        // `bhi` region via a branchless carry-skip. The contiguous inner
        // loop is what lets the compiler vectorize the per-quad body;
        // iteration order over quads is identical to the old per-quad
        // shift/mask expansion.
        macro_rules! quad_loop {
            (|$base:ident| $body:block) => {
                let runs = quads / blo;
                let mut run_base = 0usize;
                for _ in 0..runs {
                    for d in 0..blo {
                        let $base = run_base + d;
                        $body
                    }
                    run_base += blo << 1;
                    run_base += run_base & bhi;
                }
            };
        }
        // Adjacent low qubits: every quad is four consecutive amplitudes —
        // slice-pattern destructuring removes all bounds checks.
        if ba | bb == 3 {
            self.run_consecutive(m, amps, ba);
            return;
        }
        match self {
            Kernel4::Dense => {
                quad_loop!(|base| {
                    let (i00, i01, i10, i11) = (base, base | ba, base | bb, base | ba | bb);
                    let a = [amps[i00], amps[i01], amps[i10], amps[i11]];
                    amps[i00] = m[0][0] * a[0] + m[0][1] * a[1] + m[0][2] * a[2] + m[0][3] * a[3];
                    amps[i01] = m[1][0] * a[0] + m[1][1] * a[1] + m[1][2] * a[2] + m[1][3] * a[3];
                    amps[i10] = m[2][0] * a[0] + m[2][1] * a[1] + m[2][2] * a[2] + m[2][3] * a[3];
                    amps[i11] = m[3][0] * a[0] + m[3][1] * a[1] + m[3][2] * a[2] + m[3][3] * a[3];
                });
            }
            Kernel4::Diag(d) => {
                let one = Complex64::ONE;
                let offs = [0, ba, bb, ba | bb];
                let moving = d.iter().filter(|c| **c != one).count();
                if moving > 1 {
                    // Several rows move: one fused pass (separate strided
                    // passes would re-walk the region once per row).
                    let live: [bool; 4] = std::array::from_fn(|r| d[r] != one);
                    quad_loop!(|base| {
                        for r in 0..4 {
                            if live[r] {
                                let idx = base | offs[r];
                                amps[idx] = d[r] * amps[idx];
                            }
                        }
                    });
                } else {
                    for (r, &c) in d.iter().enumerate() {
                        if c != one {
                            let off = offs[r];
                            quad_loop!(|base| {
                                let idx = base | off;
                                amps[idx] = c * amps[idx];
                            });
                        }
                    }
                }
            }
            Kernel4::Transposition {
                i,
                j,
                ci,
                cj,
                fixed_rows,
                fixed,
            } => {
                let one = Complex64::ONE;
                let offs = [0, ba, bb, ba | bb];
                let (oi, oj) = (offs[i as usize], offs[j as usize]);
                let scaled = fixed.iter().any(|c| *c != one);
                if !scaled {
                    // Pure swap-with-phase: touches half of each quad.
                    if ci == one && cj == one {
                        quad_loop!(|base| {
                            amps.swap(base | oi, base | oj);
                        });
                    } else {
                        quad_loop!(|base| {
                            let (xi, xj) = (base | oi, base | oj);
                            let t = amps[xi];
                            amps[xi] = ci * amps[xj];
                            amps[xj] = cj * t;
                        });
                    }
                    return;
                }
                // Diagonal factors folded in: one pass over every quad
                // (separate strided passes would re-pull each cache line
                // once per row). Unit arms move without multiplying
                // (`1·x` renormalizes signed zeros — see `run_region`).
                let (of0, of1) = (offs[fixed_rows[0] as usize], offs[fixed_rows[1] as usize]);
                let (c0, c1) = (fixed[0], fixed[1]);
                let (u0, u1) = (c0 == one, c1 == one);
                let (ui, uj) = (ci == one, cj == one);
                quad_loop!(|base| {
                    let (x0, x1) = (base | of0, base | of1);
                    if !u0 {
                        amps[x0] = c0 * amps[x0];
                    }
                    if !u1 {
                        amps[x1] = c1 * amps[x1];
                    }
                    let (xi, xj) = (base | oi, base | oj);
                    let t = amps[xi];
                    amps[xi] = if ui { amps[xj] } else { ci * amps[xj] };
                    amps[xj] = if uj { t } else { cj * t };
                });
            }
            Kernel4::Monomial { perm, coef } => {
                let one = Complex64::ONE;
                let offs = [0, ba, bb, ba | bb];
                let skip: [bool; 4] =
                    std::array::from_fn(|r| perm[r] as usize == r && coef[r] == one);
                // Unit coefficients move without multiplying (see
                // `run_region` — `1·x` renormalizes signed zeros).
                let unit: [bool; 4] = std::array::from_fn(|r| coef[r] == one);
                quad_loop!(|base| {
                    let idx = [base, base | offs[1], base | offs[2], base | offs[3]];
                    let a = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
                    for r in 0..4 {
                        if !skip[r] {
                            let src = a[perm[r] as usize];
                            amps[idx[r]] = if unit[r] { src } else { coef[r] * src };
                        }
                    }
                });
            }
        }
    }

    /// [`Kernel4::run_flat`] specialization for operands on qubits 0 and 1:
    /// quads are consecutive 4-amplitude runs. `ba` is the bit of the first
    /// operand (1 when the first operand is qubit 0, else 2).
    fn run_consecutive(self, m: &Matrix4, amps: &mut [Complex64], ba: usize) {
        // Storage order within a run is basis order iff ba == 1; otherwise
        // the middle two basis indices swap storage places.
        let qa_is_low = ba == 1;
        let map = |k: usize| {
            if qa_is_low || k == 0 || k == 3 {
                k
            } else {
                3 - k
            }
        };
        match self {
            Kernel4::Dense => {
                for block in amps.chunks_exact_mut(4) {
                    if let [x0, x1, x2, x3] = block {
                        let s = [*x0, *x1, *x2, *x3];
                        let a = [s[map(0)], s[map(1)], s[map(2)], s[map(3)]];
                        let mut out = [Complex64::ZERO; 4];
                        for (row, o) in out.iter_mut().enumerate() {
                            *o = m[row][0] * a[0]
                                + m[row][1] * a[1]
                                + m[row][2] * a[2]
                                + m[row][3] * a[3];
                        }
                        *x0 = out[map(0)];
                        *x1 = out[map(1)];
                        *x2 = out[map(2)];
                        *x3 = out[map(3)];
                    }
                }
            }
            Kernel4::Diag(d) => {
                let dd = [d[map(0)], d[map(1)], d[map(2)], d[map(3)]];
                let one = Complex64::ONE;
                for block in amps.chunks_exact_mut(4) {
                    if let [x0, x1, x2, x3] = block {
                        if dd[0] != one {
                            *x0 = dd[0] * *x0;
                        }
                        if dd[1] != one {
                            *x1 = dd[1] * *x1;
                        }
                        if dd[2] != one {
                            *x2 = dd[2] * *x2;
                        }
                        if dd[3] != one {
                            *x3 = dd[3] * *x3;
                        }
                    }
                }
            }
            Kernel4::Transposition {
                i,
                j,
                ci,
                cj,
                fixed_rows,
                fixed,
            } => {
                // Storage positions (map is an involution). Direct
                // indexing into the 4-element block; the positions are
                // distinct by construction.
                let (pi, pj) = (map(i as usize), map(j as usize));
                let (p0, p1) = (map(fixed_rows[0] as usize), map(fixed_rows[1] as usize));
                let one = Complex64::ONE;
                let scaled = fixed.iter().any(|c| *c != one);
                // Unit arms move without multiplying (see `run_region` —
                // `1·x` renormalizes signed zeros).
                let (ui, uj) = (ci == one, cj == one);
                if scaled {
                    let (c0, c1) = (fixed[0], fixed[1]);
                    let (u0, u1) = (c0 == one, c1 == one);
                    for block in amps.chunks_exact_mut(4) {
                        let t = block[pi];
                        block[pi] = if ui { block[pj] } else { ci * block[pj] };
                        block[pj] = if uj { t } else { cj * t };
                        if !u0 {
                            block[p0] = c0 * block[p0];
                        }
                        if !u1 {
                            block[p1] = c1 * block[p1];
                        }
                    }
                } else if ui && uj {
                    for block in amps.chunks_exact_mut(4) {
                        block.swap(pi, pj);
                    }
                } else {
                    for block in amps.chunks_exact_mut(4) {
                        let t = block[pi];
                        block[pi] = if ui { block[pj] } else { ci * block[pj] };
                        block[pj] = if uj { t } else { cj * t };
                    }
                }
            }
            Kernel4::Monomial { perm, coef } => {
                let one = Complex64::ONE;
                let skip: [bool; 4] =
                    std::array::from_fn(|r| perm[r] as usize == r && coef[r] == one);
                let unit: [bool; 4] = std::array::from_fn(|r| coef[r] == one);
                for block in amps.chunks_exact_mut(4) {
                    if let [x0, x1, x2, x3] = block {
                        let s = [*x0, *x1, *x2, *x3];
                        let a = [s[map(0)], s[map(1)], s[map(2)], s[map(3)]];
                        let mut out = a;
                        for r in 0..4 {
                            if !skip[r] {
                                let src = a[perm[r] as usize];
                                out[r] = if unit[r] { src } else { coef[r] * src };
                            }
                        }
                        *x0 = out[map(0)];
                        *x1 = out[map(1)];
                        *x2 = out[map(2)];
                        *x3 = out[map(3)];
                    }
                }
            }
        }
    }

    /// Applies the kernel to an aligned region pair: `pa`/`pb` are equal-
    /// length slices holding the high-bit-clear and high-bit-set halves,
    /// each a whole number of `2·blo` sub-blocks. `qa_is_low` records which
    /// operand owns the low bit (it decides the `a01`/`a10` roles).
    fn run_aligned(
        self,
        lvl: qsimd::Level,
        m: &Matrix4,
        qa_is_low: bool,
        blo: usize,
        pa: &mut [Complex64],
        pb: &mut [Complex64],
    ) {
        if blo < ALIGNED_KERNEL_MIN_STRIDE {
            self.run_indexed(m, qa_is_low, blo, pa, pb);
            return;
        }
        for (sa, sb) in pa.chunks_mut(blo << 1).zip(pb.chunks_mut(blo << 1)) {
            let (sa_lo, sa_hi) = sa.split_at_mut(blo);
            let (sb_lo, sb_hi) = sb.split_at_mut(blo);
            if qa_is_low {
                self.run_quads(lvl, m, sa_lo, sa_hi, sb_lo, sb_hi);
            } else {
                self.run_quads(lvl, m, sa_lo, sb_lo, sa_hi, sb_hi);
            }
        }
    }

    /// Index-arithmetic variant of [`Kernel4::run_aligned`] for small low
    /// strides. `pa[i]`/`pa[i|blo]`/`pb[i]`/`pb[i|blo]` form one quad; the
    /// matrix-basis roles of the middle two depend on `qa_is_low`.
    fn run_indexed(
        self,
        m: &Matrix4,
        qa_is_low: bool,
        blo: usize,
        pa: &mut [Complex64],
        pb: &mut [Complex64],
    ) {
        let quads = pa.len() >> 1;
        let shift = blo.trailing_zeros();
        let mask = blo - 1;
        let expand = |j: usize| ((j >> shift) << (shift + 1)) | (j & mask);
        // Maps storage position ↔ matrix-basis index (an involution: both
        // layouts are their own inverse). Storage order of a quad is
        // (pa[i], pa[i|blo], pb[i], pb[i|blo]).
        let order: [usize; 4] = if qa_is_low {
            [0, 1, 2, 3]
        } else {
            [0, 2, 1, 3]
        };
        match self {
            Kernel4::Dense => {
                for j in 0..quads {
                    let i = expand(j);
                    let s = [pa[i], pa[i | blo], pb[i], pb[i | blo]];
                    let a = [s[order[0]], s[order[1]], s[order[2]], s[order[3]]];
                    let mut out = [Complex64::ZERO; 4];
                    for (row, o) in out.iter_mut().enumerate() {
                        *o = m[row][0] * a[0]
                            + m[row][1] * a[1]
                            + m[row][2] * a[2]
                            + m[row][3] * a[3];
                    }
                    pa[i] = out[order[0]];
                    pa[i | blo] = out[order[1]];
                    pb[i] = out[order[2]];
                    pb[i | blo] = out[order[3]];
                }
            }
            Kernel4::Diag(d) => {
                // Storage position k holds matrix-basis index order[k].
                let dd = [d[order[0]], d[order[1]], d[order[2]], d[order[3]]];
                let one = Complex64::ONE;
                for j in 0..quads {
                    let i = expand(j);
                    if dd[0] != one {
                        pa[i] = dd[0] * pa[i];
                    }
                    if dd[1] != one {
                        pa[i | blo] = dd[1] * pa[i | blo];
                    }
                    if dd[2] != one {
                        pb[i] = dd[2] * pb[i];
                    }
                    if dd[3] != one {
                        pb[i | blo] = dd[3] * pb[i | blo];
                    }
                }
            }
            Kernel4::Transposition {
                i,
                j,
                ci,
                cj,
                fixed_rows,
                fixed,
            } => {
                // Storage positions of the touched basis indices (order is
                // an involution).
                let pi = order[i as usize];
                let pj = order[j as usize];
                let one = Complex64::ONE;
                for q_ in 0..quads {
                    let idx = expand(q_);
                    for (&row, &c) in fixed_rows.iter().zip(&fixed) {
                        if c != one {
                            let p = order[row as usize];
                            let o = idx | if p & 1 != 0 { blo } else { 0 };
                            if p < 2 {
                                pa[o] = c * pa[o];
                            } else {
                                pb[o] = c * pb[o];
                            }
                        }
                    }
                    let oi = idx | if pi & 1 != 0 { blo } else { 0 };
                    let oj = idx | if pj & 1 != 0 { blo } else { 0 };
                    let ai = if pi < 2 { pa[oi] } else { pb[oi] };
                    let aj = if pj < 2 { pa[oj] } else { pb[oj] };
                    // Unit arms move without multiplying (see
                    // `run_region` — `1·x` renormalizes signed zeros).
                    let ni = if ci == one { aj } else { ci * aj };
                    let nj = if cj == one { ai } else { cj * ai };
                    if pi < 2 {
                        pa[oi] = ni;
                    } else {
                        pb[oi] = ni;
                    }
                    if pj < 2 {
                        pa[oj] = nj;
                    } else {
                        pb[oj] = nj;
                    }
                }
            }
            Kernel4::Monomial { perm, coef } => {
                let one = Complex64::ONE;
                let skip: [bool; 4] =
                    std::array::from_fn(|r| perm[r] as usize == r && coef[r] == one);
                let unit: [bool; 4] = std::array::from_fn(|r| coef[r] == one);
                for j in 0..quads {
                    let i = expand(j);
                    let s = [pa[i], pa[i | blo], pb[i], pb[i | blo]];
                    let a = [s[order[0]], s[order[1]], s[order[2]], s[order[3]]];
                    let mut out = a;
                    for r in 0..4 {
                        if !skip[r] {
                            let src = a[perm[r] as usize];
                            out[r] = if unit[r] { src } else { coef[r] * src };
                        }
                    }
                    pa[i] = out[order[0]];
                    pa[i | blo] = out[order[1]];
                    pb[i] = out[order[2]];
                    pb[i | blo] = out[order[3]];
                }
            }
        }
    }

    /// Applies the kernel to four aligned slices where `sxy[k]` is the
    /// amplitude with matrix-basis index `yx` (bit 0 = first operand).
    fn run_quads(
        self,
        lvl: qsimd::Level,
        m: &Matrix4,
        s00: &mut [Complex64],
        s01: &mut [Complex64],
        s10: &mut [Complex64],
        s11: &mut [Complex64],
    ) {
        match self {
            Kernel4::Dense => {
                qsimd::apply4_dense(
                    lvl,
                    &flat4(m),
                    Complex64::flatten_mut(s00),
                    Complex64::flatten_mut(s01),
                    Complex64::flatten_mut(s10),
                    Complex64::flatten_mut(s11),
                );
            }
            Kernel4::Diag(d) => {
                scale_slice(lvl, s00, d[0]);
                scale_slice(lvl, s01, d[1]);
                scale_slice(lvl, s10, d[2]);
                scale_slice(lvl, s11, d[3]);
            }
            Kernel4::Transposition {
                i,
                j,
                ci,
                cj,
                fixed_rows,
                fixed,
            } => {
                let one = Complex64::ONE;
                if fixed.iter().all(|c| *c == one) {
                    let (si, sj) = pick_two(i as usize, j as usize, s00, s01, s10, s11);
                    swap_scaled(lvl, si, sj, ci, cj);
                    return;
                }
                // Scaled rows present: one fused pass over all four slices,
                // with the complex products flattened to scalar f64 ops in
                // `Complex64::mul` order (bit-exact, vectorizer-friendly).
                let mut parts = [Some(s00), Some(s01), Some(s10), Some(s11)];
                let si = parts[i as usize].take().expect("distinct rows");
                let sj = parts[j as usize].take().expect("distinct rows");
                let sf0 = parts[fixed_rows[0] as usize].take().expect("distinct rows");
                let sf1 = parts[fixed_rows[1] as usize].take().expect("distinct rows");
                let (c0r, c0i) = (fixed[0].re, fixed[0].im);
                let (c1r, c1i) = (fixed[1].re, fixed[1].im);
                let (cir, cii) = (ci.re, ci.im);
                let (cjr, cji) = (cj.re, cj.im);
                // Unit arms move without multiplying (see `run_region` —
                // `1·x` renormalizes signed zeros).
                let (u0, u1) = (fixed[0] == one, fixed[1] == one);
                let (ui, uj) = (ci == one, cj == one);
                for k in 0..si.len() {
                    if !u0 {
                        let (f0r, f0i) = (sf0[k].re, sf0[k].im);
                        sf0[k] = Complex64::new(c0r * f0r - c0i * f0i, c0r * f0i + c0i * f0r);
                    }
                    if !u1 {
                        let (f1r, f1i) = (sf1[k].re, sf1[k].im);
                        sf1[k] = Complex64::new(c1r * f1r - c1i * f1i, c1r * f1i + c1i * f1r);
                    }
                    let t = si[k];
                    let y = sj[k];
                    si[k] = if ui {
                        y
                    } else {
                        Complex64::new(cir * y.re - cii * y.im, cir * y.im + cii * y.re)
                    };
                    sj[k] = if uj {
                        t
                    } else {
                        Complex64::new(cjr * t.re - cji * t.im, cjr * t.im + cji * t.re)
                    };
                }
            }
            Kernel4::Monomial { perm, coef } => {
                let one = Complex64::ONE;
                let unit: [bool; 4] = std::array::from_fn(|r| coef[r] == one);
                for k in 0..s00.len() {
                    let a = [s00[k], s01[k], s10[k], s11[k]];
                    if !(perm[0] == 0 && unit[0]) {
                        let src = a[perm[0] as usize];
                        s00[k] = if unit[0] { src } else { coef[0] * src };
                    }
                    if !(perm[1] == 1 && unit[1]) {
                        let src = a[perm[1] as usize];
                        s01[k] = if unit[1] { src } else { coef[1] * src };
                    }
                    if !(perm[2] == 2 && unit[2]) {
                        let src = a[perm[2] as usize];
                        s10[k] = if unit[2] { src } else { coef[2] * src };
                    }
                    if !(perm[3] == 3 && unit[3]) {
                        let src = a[perm[3] as usize];
                        s11[k] = if unit[3] { src } else { coef[3] * src };
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    const EPS: f64 = 1e-12;

    #[test]
    fn zero_state_is_normalized_basis_zero() {
        let s = StateVector::zero_state(3);
        assert_eq!(s.num_qubits(), 3);
        assert_eq!(s.amplitudes().len(), 8);
        assert!((s.probability(0) - 1.0).abs() < EPS);
        assert!((s.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn basis_state_places_amplitude() {
        let s = StateVector::basis_state(2, 3);
        assert!((s.probability(3) - 1.0).abs() < EPS);
        assert!(s.probability(0) < EPS);
    }

    #[test]
    fn from_amplitudes_normalizes() {
        let s =
            StateVector::from_amplitudes(vec![Complex64::new(3.0, 0.0), Complex64::new(4.0, 0.0)])
                .unwrap();
        assert!((s.probability(0) - 9.0 / 25.0).abs() < EPS);
        assert!((s.probability(1) - 16.0 / 25.0).abs() < EPS);
    }

    #[test]
    fn from_amplitudes_rejects_bad_lengths() {
        assert_eq!(
            StateVector::from_amplitudes(vec![Complex64::ONE; 3]).unwrap_err(),
            StateError::InvalidLength(3)
        );
        assert_eq!(
            StateVector::from_amplitudes(vec![]).unwrap_err(),
            StateError::InvalidLength(0)
        );
    }

    #[test]
    fn x_flips_qubit() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(Gate::X, &[1]).unwrap();
        assert!((s.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut s = StateVector::zero_state(1);
        s.apply_gate(Gate::H, &[0]).unwrap();
        assert!((s.probability(0) - 0.5).abs() < EPS);
        assert!((s.probability(1) - 0.5).abs() < EPS);
    }

    #[test]
    fn bell_state_correlations() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(Gate::H, &[0]).unwrap();
        s.apply_gate(Gate::Cx, &[0, 1]).unwrap();
        assert!((s.probability(0b00) - 0.5).abs() < EPS);
        assert!((s.probability(0b11) - 0.5).abs() < EPS);
        assert!(s.probability(0b01) < EPS);
        assert!(s.probability(0b10) < EPS);
    }

    #[test]
    fn ghz_state_on_four_qubits() {
        let n = 4;
        let mut s = StateVector::zero_state(n);
        s.apply_gate(Gate::H, &[0]).unwrap();
        for q in 0..n - 1 {
            s.apply_gate(Gate::Cx, &[q, q + 1]).unwrap();
        }
        assert!((s.probability(0) - 0.5).abs() < EPS);
        assert!((s.probability((1 << n) - 1) - 0.5).abs() < EPS);
    }

    #[test]
    fn cx_control_must_be_set() {
        // Control (qubit 0) unset → target unchanged.
        let mut s = StateVector::zero_state(2);
        s.apply_gate(Gate::Cx, &[0, 1]).unwrap();
        assert!((s.probability(0b00) - 1.0).abs() < EPS);
        // Control set → target flips.
        let mut s = StateVector::basis_state(2, 0b01);
        s.apply_gate(Gate::Cx, &[0, 1]).unwrap();
        assert!((s.probability(0b11) - 1.0).abs() < EPS);
    }

    #[test]
    fn cx_respects_operand_order() {
        // (control=1, target=0): |10⟩ → |11⟩
        let mut s = StateVector::basis_state(2, 0b10);
        s.apply_gate(Gate::Cx, &[1, 0]).unwrap();
        assert!((s.probability(0b11) - 1.0).abs() < EPS);
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut s = StateVector::basis_state(2, 0b01);
        s.apply_gate(Gate::Swap, &[0, 1]).unwrap();
        assert!((s.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn swap_on_nonadjacent_qubits() {
        let mut s = StateVector::basis_state(3, 0b001);
        s.apply_gate(Gate::Swap, &[0, 2]).unwrap();
        assert!((s.probability(0b100) - 1.0).abs() < EPS);
    }

    #[test]
    fn gates_preserve_norm() {
        let mut rng = Xoshiro256::seed_from(42);
        let mut s = StateVector::random(4, &mut rng);
        let gates: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::H, vec![0]),
            (Gate::Rx(0.7), vec![1]),
            (Gate::Cx, vec![1, 3]),
            (Gate::Rzz(1.1), vec![0, 2]),
            (Gate::U3(0.3, 0.5, 0.7), vec![2]),
            (Gate::Cphase(0.4), vec![3, 0]),
        ];
        for (g, qs) in gates {
            s.apply_gate(g, &qs).unwrap();
            assert!((s.norm() - 1.0).abs() < 1e-10, "{g} broke normalization");
        }
    }

    #[test]
    fn inverse_gate_restores_state() {
        let mut rng = Xoshiro256::seed_from(9);
        let original = StateVector::random(3, &mut rng);
        let mut s = original.clone();
        let ops: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::Ry(0.9), vec![0]),
            (Gate::Cx, vec![0, 2]),
            (Gate::Rzz(0.4), vec![1, 2]),
            (Gate::T, vec![1]),
        ];
        for (g, qs) in &ops {
            s.apply_gate(*g, qs).unwrap();
        }
        for (g, qs) in ops.iter().rev() {
            s.apply_gate(g.inverse(), qs).unwrap();
        }
        assert!((s.fidelity(&original).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn qubit_out_of_range_is_error() {
        let mut s = StateVector::zero_state(2);
        assert!(matches!(
            s.apply_gate(Gate::X, &[2]),
            Err(StateError::QubitOutOfRange { qubit: 2, .. })
        ));
        assert!(matches!(
            s.apply_gate(Gate::Cx, &[0, 5]),
            Err(StateError::QubitOutOfRange { qubit: 5, .. })
        ));
    }

    #[test]
    fn duplicate_qubits_is_error() {
        let mut s = StateVector::zero_state(2);
        assert_eq!(
            s.apply_gate(Gate::Cx, &[1, 1]).unwrap_err(),
            StateError::DuplicateQubits(1)
        );
    }

    #[test]
    fn inner_product_and_fidelity() {
        let a = StateVector::basis_state(2, 0);
        let b = StateVector::basis_state(2, 1);
        assert!(a.inner(&b).unwrap().approx_eq(Complex64::ZERO, EPS));
        assert!((a.fidelity(&a).unwrap() - 1.0).abs() < EPS);
        assert!(a.fidelity(&b).unwrap() < EPS);
    }

    #[test]
    fn size_mismatch_is_error() {
        let a = StateVector::zero_state(2);
        let b = StateVector::zero_state(3);
        assert_eq!(
            a.inner(&b).unwrap_err(),
            StateError::SizeMismatch { left: 2, right: 3 }
        );
    }

    #[test]
    fn tensor_product_of_basis_states() {
        let a = StateVector::basis_state(1, 1); // |1⟩ on low qubit
        let b = StateVector::basis_state(1, 0); // |0⟩ on high qubit
        let t = a.tensor(&b);
        assert_eq!(t.num_qubits(), 2);
        assert!((t.probability(0b01) - 1.0).abs() < EPS);
    }

    #[test]
    fn prob_one_and_expect_z() {
        let mut s = StateVector::zero_state(1);
        assert!((s.expect_z(0).unwrap() - 1.0).abs() < EPS);
        s.apply_gate(Gate::X, &[0]).unwrap();
        assert!((s.expect_z(0).unwrap() + 1.0).abs() < EPS);
        s.apply_gate(Gate::H, &[0]).unwrap();
        assert!(s.expect_z(0).unwrap().abs() < EPS);
    }

    #[test]
    fn measure_collapses_state() {
        let mut rng = Xoshiro256::seed_from(4);
        let mut ones = 0;
        for _ in 0..200 {
            let mut s = StateVector::zero_state(2);
            s.apply_gate(Gate::H, &[0]).unwrap();
            s.apply_gate(Gate::Cx, &[0, 1]).unwrap();
            let m0 = s.measure_qubit(0, &mut rng).unwrap();
            let m1 = s.measure_qubit(1, &mut rng).unwrap();
            assert_eq!(m0, m1, "Bell state must be perfectly correlated");
            ones += m0 as u32;
        }
        assert!(
            (50..150).contains(&ones),
            "outcome frequencies skewed: {ones}"
        );
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut rng = Xoshiro256::seed_from(77);
        let mut s = StateVector::zero_state(2);
        s.apply_gate(Gate::H, &[0]).unwrap();
        s.apply_gate(Gate::Cx, &[0, 1]).unwrap();
        let counts = s.sample_counts(10_000, &mut rng);
        let total: u32 = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 10_000);
        for (idx, c) in counts {
            assert!(idx == 0 || idx == 3, "impossible outcome {idx}");
            let f = c as f64 / 10_000.0;
            assert!((f - 0.5).abs() < 0.03);
        }
    }

    #[test]
    fn sampling_is_deterministic_given_rng_state() {
        let mut s = StateVector::zero_state(3);
        s.apply_gate(Gate::H, &[0]).unwrap();
        s.apply_gate(Gate::H, &[1]).unwrap();
        s.apply_gate(Gate::H, &[2]).unwrap();
        let mut rng1 = Xoshiro256::seed_from(123);
        let mut rng2 = Xoshiro256::seed_from(123);
        assert_eq!(
            s.sample_counts(500, &mut rng1),
            s.sample_counts(500, &mut rng2)
        );
    }

    #[test]
    fn raw_byte_size_grows_exponentially() {
        assert_eq!(StateVector::zero_state(1).raw_byte_size(), 2 * 16);
        assert_eq!(StateVector::zero_state(10).raw_byte_size(), 1024 * 16);
    }

    #[test]
    fn rxx_entangles_like_cnot_conjugation() {
        // RXX(π) on |00⟩ gives -i|11⟩ (up to global phase → prob 1 on |11⟩).
        let mut s = StateVector::zero_state(2);
        s.apply_gate(Gate::Rxx(std::f64::consts::PI), &[0, 1])
            .unwrap();
        assert!((s.probability(0b11) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn kernels_bit_identical_across_thread_counts() {
        // Large enough to cross PARALLEL_MIN_AMPS and STRIPED_SUM_MIN_AMPS.
        let n = 16;
        let mut rng = Xoshiro256::seed_from(1234);
        let base = StateVector::random(n, &mut rng);
        let ops: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::H, vec![0]),
            (Gate::H, vec![n - 1]),
            (Gate::Rz(0.3), vec![3]),
            (Gate::T, vec![9]),
            (Gate::X, vec![12]),
            (Gate::U3(0.2, 0.4, 0.6), vec![7]),
            (Gate::Cx, vec![0, 1]),
            (Gate::Cx, vec![n - 1, 0]),
            (Gate::Swap, vec![2, n - 2]),
            (Gate::Cz, vec![5, 11]),
            (Gate::Cphase(0.7), vec![4, 10]),
            (Gate::Rzz(0.9), vec![1, n - 1]),
            (Gate::Rxx(1.1), vec![6, 13]),
            (Gate::Crz(0.5), vec![8, 3]),
        ];
        let run_at = |threads: usize| {
            qpar::with_threads(threads, || {
                let mut s = base.clone();
                for (g, qs) in &ops {
                    s.apply_gate(*g, qs).unwrap();
                }
                let amps: Vec<(u64, u64)> = s
                    .amplitudes()
                    .iter()
                    .map(|a| (a.re.to_bits(), a.im.to_bits()))
                    .collect();
                let norm = s.norm().to_bits();
                let p1 = s.prob_one(n / 2).unwrap().to_bits();
                let inner = s.inner(&base).unwrap();
                (amps, norm, p1, (inner.re.to_bits(), inner.im.to_bits()))
            })
        };
        let reference = run_at(1);
        for threads in [2, 4, 8] {
            assert_eq!(run_at(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn apply_matrix2_matches_apply_gate() {
        let mut rng = Xoshiro256::seed_from(1);
        let mut a = StateVector::random(3, &mut rng);
        let mut b = a.clone();
        a.apply_gate(Gate::Ry(0.77), &[2]).unwrap();
        b.apply_matrix2(&Gate::Ry(0.77).matrix2(), 2);
        assert!((a.fidelity(&b).unwrap() - 1.0).abs() < EPS);
    }
}
