//! State-vector representation and gate-application kernels.
//!
//! A [`StateVector`] over `n` qubits stores all `2^n` complex amplitudes.
//! Basis states are indexed little-endian: qubit 0 is the least significant
//! bit of the index. Gate application is performed in place with bit-mask
//! kernels; no `unsafe` code is used.

use serde::{Deserialize, Serialize};

use crate::complex::Complex64;
use crate::gate::{Gate, Matrix2, Matrix4};
use crate::rng::Xoshiro256;

/// Errors produced by state-vector operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateError {
    /// A qubit index was out of range for this register size.
    QubitOutOfRange {
        /// The offending index.
        qubit: usize,
        /// The register size.
        num_qubits: usize,
    },
    /// A two-qubit gate was applied to identical operands.
    DuplicateQubits(usize),
    /// Amplitude vector length was not a power of two.
    InvalidLength(usize),
    /// The register sizes of two states do not match.
    SizeMismatch {
        /// Left-hand size (qubits).
        left: usize,
        /// Right-hand size (qubits).
        right: usize,
    },
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "qubit index {qubit} out of range for {num_qubits}-qubit register")
            }
            StateError::DuplicateQubits(q) => {
                write!(f, "two-qubit gate applied twice to qubit {q}")
            }
            StateError::InvalidLength(n) => {
                write!(f, "amplitude vector length {n} is not a power of two")
            }
            StateError::SizeMismatch { left, right } => {
                write!(f, "register size mismatch: {left} vs {right} qubits")
            }
        }
    }
}

impl std::error::Error for StateError {}

/// A pure quantum state over `n` qubits.
///
/// # Examples
///
/// ```
/// use qsim::state::StateVector;
/// use qsim::gate::Gate;
///
/// // Prepare the Bell state (|00⟩ + |11⟩)/√2.
/// let mut psi = StateVector::zero_state(2);
/// psi.apply_gate(Gate::H, &[0]).unwrap();
/// psi.apply_gate(Gate::Cx, &[0, 1]).unwrap();
/// assert!((psi.probability(0) - 0.5).abs() < 1e-12);
/// assert!((psi.probability(3) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StateVector {
    num_qubits: usize,
    amplitudes: Vec<Complex64>,
}

impl StateVector {
    /// Creates the all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` exceeds 30 (the 16·2³⁰-byte state would not be
    /// allocatable in this environment anyway).
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(num_qubits <= 30, "register too large: {num_qubits} qubits");
        let mut amplitudes = vec![Complex64::ZERO; 1usize << num_qubits];
        amplitudes[0] = Complex64::ONE;
        StateVector {
            num_qubits,
            amplitudes,
        }
    }

    /// Creates the basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_qubits`.
    pub fn basis_state(num_qubits: usize, index: usize) -> Self {
        let mut s = StateVector::zero_state(num_qubits);
        assert!(index < s.amplitudes.len(), "basis index out of range");
        s.amplitudes[0] = Complex64::ZERO;
        s.amplitudes[index] = Complex64::ONE;
        s
    }

    /// Builds a state from raw amplitudes, normalizing them.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::InvalidLength`] when the vector length is not a
    /// power of two or is zero.
    pub fn from_amplitudes(mut amplitudes: Vec<Complex64>) -> Result<Self, StateError> {
        let n = amplitudes.len();
        if n == 0 || n & (n - 1) != 0 {
            return Err(StateError::InvalidLength(n));
        }
        let num_qubits = n.trailing_zeros() as usize;
        let norm: f64 = amplitudes.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        if norm > 0.0 {
            for a in &mut amplitudes {
                *a = *a / norm;
            }
        }
        Ok(StateVector {
            num_qubits,
            amplitudes,
        })
    }

    /// Samples a Haar-ish random state (Gaussian amplitudes, normalized).
    pub fn random(num_qubits: usize, rng: &mut Xoshiro256) -> Self {
        let n = 1usize << num_qubits;
        let amps: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(rng.next_gaussian(), rng.next_gaussian()))
            .collect();
        StateVector::from_amplitudes(amps).expect("power-of-two length")
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The raw amplitude slice (little-endian basis ordering).
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amplitudes
    }

    /// The amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n`.
    pub fn amplitude(&self, index: usize) -> Complex64 {
        self.amplitudes[index]
    }

    /// Born-rule probability of observing basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amplitudes[index].norm_sqr()
    }

    /// Full probability distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// The L2 norm of the state (1.0 for a valid state).
    pub fn norm(&self) -> f64 {
        self.amplitudes
            .iter()
            .map(|a| a.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Renormalizes in place; no-op on the zero vector.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for a in &mut self.amplitudes {
                *a = *a / n;
            }
        }
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::SizeMismatch`] when the registers differ.
    pub fn inner(&self, other: &StateVector) -> Result<Complex64, StateError> {
        if self.num_qubits != other.num_qubits {
            return Err(StateError::SizeMismatch {
                left: self.num_qubits,
                right: other.num_qubits,
            });
        }
        Ok(self
            .amplitudes
            .iter()
            .zip(&other.amplitudes)
            .map(|(a, b)| a.conj() * *b)
            .sum())
    }

    /// Fidelity `|⟨self|other⟩|²` between two pure states.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::SizeMismatch`] when the registers differ.
    pub fn fidelity(&self, other: &StateVector) -> Result<f64, StateError> {
        Ok(self.inner(other)?.norm_sqr())
    }

    /// Tensor product `self ⊗ other` (other occupies the high-order qubits).
    pub fn tensor(&self, other: &StateVector) -> StateVector {
        let mut amps =
            Vec::with_capacity(self.amplitudes.len() * other.amplitudes.len());
        for b in &other.amplitudes {
            for a in &self.amplitudes {
                amps.push(*a * *b);
            }
        }
        StateVector {
            num_qubits: self.num_qubits + other.num_qubits,
            amplitudes: amps,
        }
    }

    fn check_qubit(&self, q: usize) -> Result<(), StateError> {
        if q >= self.num_qubits {
            Err(StateError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.num_qubits,
            })
        } else {
            Ok(())
        }
    }

    /// Applies a gate to the given qubits.
    ///
    /// For two-qubit gates, `qubits[0]` is the first operand (the control for
    /// controlled gates) and `qubits[1]` the second (target).
    ///
    /// # Errors
    ///
    /// Returns an error when the operand count does not match the gate arity,
    /// a qubit index is out of range, or a two-qubit gate is given duplicate
    /// operands.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) -> Result<(), StateError> {
        match gate.arity() {
            1 => {
                if qubits.len() != 1 {
                    return Err(StateError::QubitOutOfRange {
                        qubit: usize::MAX,
                        num_qubits: self.num_qubits,
                    });
                }
                self.check_qubit(qubits[0])?;
                self.apply_matrix2(&gate.matrix2(), qubits[0]);
                Ok(())
            }
            2 => {
                if qubits.len() != 2 {
                    return Err(StateError::QubitOutOfRange {
                        qubit: usize::MAX,
                        num_qubits: self.num_qubits,
                    });
                }
                self.check_qubit(qubits[0])?;
                self.check_qubit(qubits[1])?;
                if qubits[0] == qubits[1] {
                    return Err(StateError::DuplicateQubits(qubits[0]));
                }
                self.apply_matrix4(&gate.matrix4(), qubits[0], qubits[1]);
                Ok(())
            }
            a => unreachable!("unsupported arity {a}"),
        }
    }

    /// Applies an arbitrary 2×2 unitary to qubit `q` in place.
    ///
    /// The caller is responsible for `q < n`; library callers go through
    /// [`StateVector::apply_gate`], which validates.
    pub fn apply_matrix2(&mut self, m: &Matrix2, q: usize) {
        let bit = 1usize << q;
        let n = self.amplitudes.len();
        let mut base = 0usize;
        while base < n {
            // Iterate over indices with qubit q = 0 inside this block.
            for offset in 0..bit {
                let i0 = base + offset;
                let i1 = i0 | bit;
                let a0 = self.amplitudes[i0];
                let a1 = self.amplitudes[i1];
                self.amplitudes[i0] = m[0][0] * a0 + m[0][1] * a1;
                self.amplitudes[i1] = m[1][0] * a0 + m[1][1] * a1;
            }
            base += bit << 1;
        }
    }

    /// Applies an arbitrary 4×4 unitary to qubits `(qa, qb)` in place.
    ///
    /// Matrix basis convention: index bit 0 ↔ `qa`, index bit 1 ↔ `qb`.
    pub fn apply_matrix4(&mut self, m: &Matrix4, qa: usize, qb: usize) {
        debug_assert_ne!(qa, qb);
        let ba = 1usize << qa;
        let bb = 1usize << qb;
        let n = self.amplitudes.len();
        for i in 0..n {
            // Visit each 4-tuple once: pick representatives with both bits 0.
            if i & ba != 0 || i & bb != 0 {
                continue;
            }
            let i00 = i;
            let i01 = i | ba;
            let i10 = i | bb;
            let i11 = i | ba | bb;
            let a = [
                self.amplitudes[i00],
                self.amplitudes[i01],
                self.amplitudes[i10],
                self.amplitudes[i11],
            ];
            for (k, &idx) in [i00, i01, i10, i11].iter().enumerate() {
                let mut acc = Complex64::ZERO;
                for (j, &aj) in a.iter().enumerate() {
                    acc += m[k][j] * aj;
                }
                self.amplitudes[idx] = acc;
            }
        }
    }

    /// Probability that qubit `q` measures as `|1⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::QubitOutOfRange`] for an invalid qubit.
    pub fn prob_one(&self, q: usize) -> Result<f64, StateError> {
        self.check_qubit(q)?;
        let bit = 1usize << q;
        Ok(self
            .amplitudes
            .iter()
            .enumerate()
            .filter(|(i, _)| i & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum())
    }

    /// Projective measurement of qubit `q` in the computational basis.
    ///
    /// Collapses the state and returns the outcome bit.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::QubitOutOfRange`] for an invalid qubit.
    pub fn measure_qubit(
        &mut self,
        q: usize,
        rng: &mut Xoshiro256,
    ) -> Result<u8, StateError> {
        let p1 = self.prob_one(q)?;
        let outcome = u8::from(rng.next_f64() < p1);
        let bit = 1usize << q;
        let keep_mask_set = outcome == 1;
        for (i, a) in self.amplitudes.iter_mut().enumerate() {
            if ((i & bit) != 0) != keep_mask_set {
                *a = Complex64::ZERO;
            }
        }
        self.normalize();
        Ok(outcome)
    }

    /// Samples `shots` full-register measurement outcomes without collapsing
    /// the state (the state is re-preparable, so sampling from the final
    /// distribution is equivalent to independent prepare-and-measure runs).
    pub fn sample_counts(&self, shots: usize, rng: &mut Xoshiro256) -> Vec<(usize, u32)> {
        let mut cumulative = Vec::with_capacity(self.amplitudes.len());
        let mut acc = 0.0;
        for a in &self.amplitudes {
            acc += a.norm_sqr();
            cumulative.push(acc);
        }
        let mut counts: std::collections::BTreeMap<usize, u32> = std::collections::BTreeMap::new();
        for _ in 0..shots {
            let idx = rng.sample_cumulative(&cumulative);
            *counts.entry(idx).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Expectation value `⟨ψ|Z_q|ψ⟩` of a single-qubit Pauli-Z.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::QubitOutOfRange`] for an invalid qubit.
    pub fn expect_z(&self, q: usize) -> Result<f64, StateError> {
        Ok(1.0 - 2.0 * self.prob_one(q)?)
    }

    /// Serialized size in bytes of the raw amplitude data (the cost of a
    /// naive simulator-state checkpoint): `2^n · 16`.
    pub fn raw_byte_size(&self) -> usize {
        self.amplitudes.len() * std::mem::size_of::<Complex64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    const EPS: f64 = 1e-12;

    #[test]
    fn zero_state_is_normalized_basis_zero() {
        let s = StateVector::zero_state(3);
        assert_eq!(s.num_qubits(), 3);
        assert_eq!(s.amplitudes().len(), 8);
        assert!((s.probability(0) - 1.0).abs() < EPS);
        assert!((s.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn basis_state_places_amplitude() {
        let s = StateVector::basis_state(2, 3);
        assert!((s.probability(3) - 1.0).abs() < EPS);
        assert!(s.probability(0) < EPS);
    }

    #[test]
    fn from_amplitudes_normalizes() {
        let s = StateVector::from_amplitudes(vec![
            Complex64::new(3.0, 0.0),
            Complex64::new(4.0, 0.0),
        ])
        .unwrap();
        assert!((s.probability(0) - 9.0 / 25.0).abs() < EPS);
        assert!((s.probability(1) - 16.0 / 25.0).abs() < EPS);
    }

    #[test]
    fn from_amplitudes_rejects_bad_lengths() {
        assert_eq!(
            StateVector::from_amplitudes(vec![Complex64::ONE; 3]).unwrap_err(),
            StateError::InvalidLength(3)
        );
        assert_eq!(
            StateVector::from_amplitudes(vec![]).unwrap_err(),
            StateError::InvalidLength(0)
        );
    }

    #[test]
    fn x_flips_qubit() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(Gate::X, &[1]).unwrap();
        assert!((s.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut s = StateVector::zero_state(1);
        s.apply_gate(Gate::H, &[0]).unwrap();
        assert!((s.probability(0) - 0.5).abs() < EPS);
        assert!((s.probability(1) - 0.5).abs() < EPS);
    }

    #[test]
    fn bell_state_correlations() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(Gate::H, &[0]).unwrap();
        s.apply_gate(Gate::Cx, &[0, 1]).unwrap();
        assert!((s.probability(0b00) - 0.5).abs() < EPS);
        assert!((s.probability(0b11) - 0.5).abs() < EPS);
        assert!(s.probability(0b01) < EPS);
        assert!(s.probability(0b10) < EPS);
    }

    #[test]
    fn ghz_state_on_four_qubits() {
        let n = 4;
        let mut s = StateVector::zero_state(n);
        s.apply_gate(Gate::H, &[0]).unwrap();
        for q in 0..n - 1 {
            s.apply_gate(Gate::Cx, &[q, q + 1]).unwrap();
        }
        assert!((s.probability(0) - 0.5).abs() < EPS);
        assert!((s.probability((1 << n) - 1) - 0.5).abs() < EPS);
    }

    #[test]
    fn cx_control_must_be_set() {
        // Control (qubit 0) unset → target unchanged.
        let mut s = StateVector::zero_state(2);
        s.apply_gate(Gate::Cx, &[0, 1]).unwrap();
        assert!((s.probability(0b00) - 1.0).abs() < EPS);
        // Control set → target flips.
        let mut s = StateVector::basis_state(2, 0b01);
        s.apply_gate(Gate::Cx, &[0, 1]).unwrap();
        assert!((s.probability(0b11) - 1.0).abs() < EPS);
    }

    #[test]
    fn cx_respects_operand_order() {
        // (control=1, target=0): |10⟩ → |11⟩
        let mut s = StateVector::basis_state(2, 0b10);
        s.apply_gate(Gate::Cx, &[1, 0]).unwrap();
        assert!((s.probability(0b11) - 1.0).abs() < EPS);
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut s = StateVector::basis_state(2, 0b01);
        s.apply_gate(Gate::Swap, &[0, 1]).unwrap();
        assert!((s.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn swap_on_nonadjacent_qubits() {
        let mut s = StateVector::basis_state(3, 0b001);
        s.apply_gate(Gate::Swap, &[0, 2]).unwrap();
        assert!((s.probability(0b100) - 1.0).abs() < EPS);
    }

    #[test]
    fn gates_preserve_norm() {
        let mut rng = Xoshiro256::seed_from(42);
        let mut s = StateVector::random(4, &mut rng);
        let gates: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::H, vec![0]),
            (Gate::Rx(0.7), vec![1]),
            (Gate::Cx, vec![1, 3]),
            (Gate::Rzz(1.1), vec![0, 2]),
            (Gate::U3(0.3, 0.5, 0.7), vec![2]),
            (Gate::Cphase(0.4), vec![3, 0]),
        ];
        for (g, qs) in gates {
            s.apply_gate(g, &qs).unwrap();
            assert!((s.norm() - 1.0).abs() < 1e-10, "{g} broke normalization");
        }
    }

    #[test]
    fn inverse_gate_restores_state() {
        let mut rng = Xoshiro256::seed_from(9);
        let original = StateVector::random(3, &mut rng);
        let mut s = original.clone();
        let ops: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::Ry(0.9), vec![0]),
            (Gate::Cx, vec![0, 2]),
            (Gate::Rzz(0.4), vec![1, 2]),
            (Gate::T, vec![1]),
        ];
        for (g, qs) in &ops {
            s.apply_gate(*g, qs).unwrap();
        }
        for (g, qs) in ops.iter().rev() {
            s.apply_gate(g.inverse(), qs).unwrap();
        }
        assert!((s.fidelity(&original).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn qubit_out_of_range_is_error() {
        let mut s = StateVector::zero_state(2);
        assert!(matches!(
            s.apply_gate(Gate::X, &[2]),
            Err(StateError::QubitOutOfRange { qubit: 2, .. })
        ));
        assert!(matches!(
            s.apply_gate(Gate::Cx, &[0, 5]),
            Err(StateError::QubitOutOfRange { qubit: 5, .. })
        ));
    }

    #[test]
    fn duplicate_qubits_is_error() {
        let mut s = StateVector::zero_state(2);
        assert_eq!(
            s.apply_gate(Gate::Cx, &[1, 1]).unwrap_err(),
            StateError::DuplicateQubits(1)
        );
    }

    #[test]
    fn inner_product_and_fidelity() {
        let a = StateVector::basis_state(2, 0);
        let b = StateVector::basis_state(2, 1);
        assert!(a.inner(&b).unwrap().approx_eq(Complex64::ZERO, EPS));
        assert!((a.fidelity(&a).unwrap() - 1.0).abs() < EPS);
        assert!(a.fidelity(&b).unwrap() < EPS);
    }

    #[test]
    fn size_mismatch_is_error() {
        let a = StateVector::zero_state(2);
        let b = StateVector::zero_state(3);
        assert_eq!(
            a.inner(&b).unwrap_err(),
            StateError::SizeMismatch { left: 2, right: 3 }
        );
    }

    #[test]
    fn tensor_product_of_basis_states() {
        let a = StateVector::basis_state(1, 1); // |1⟩ on low qubit
        let b = StateVector::basis_state(1, 0); // |0⟩ on high qubit
        let t = a.tensor(&b);
        assert_eq!(t.num_qubits(), 2);
        assert!((t.probability(0b01) - 1.0).abs() < EPS);
    }

    #[test]
    fn prob_one_and_expect_z() {
        let mut s = StateVector::zero_state(1);
        assert!((s.expect_z(0).unwrap() - 1.0).abs() < EPS);
        s.apply_gate(Gate::X, &[0]).unwrap();
        assert!((s.expect_z(0).unwrap() + 1.0).abs() < EPS);
        s.apply_gate(Gate::H, &[0]).unwrap();
        assert!(s.expect_z(0).unwrap().abs() < EPS);
    }

    #[test]
    fn measure_collapses_state() {
        let mut rng = Xoshiro256::seed_from(4);
        let mut ones = 0;
        for _ in 0..200 {
            let mut s = StateVector::zero_state(2);
            s.apply_gate(Gate::H, &[0]).unwrap();
            s.apply_gate(Gate::Cx, &[0, 1]).unwrap();
            let m0 = s.measure_qubit(0, &mut rng).unwrap();
            let m1 = s.measure_qubit(1, &mut rng).unwrap();
            assert_eq!(m0, m1, "Bell state must be perfectly correlated");
            ones += m0 as u32;
        }
        assert!((50..150).contains(&ones), "outcome frequencies skewed: {ones}");
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut rng = Xoshiro256::seed_from(77);
        let mut s = StateVector::zero_state(2);
        s.apply_gate(Gate::H, &[0]).unwrap();
        s.apply_gate(Gate::Cx, &[0, 1]).unwrap();
        let counts = s.sample_counts(10_000, &mut rng);
        let total: u32 = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 10_000);
        for (idx, c) in counts {
            assert!(idx == 0 || idx == 3, "impossible outcome {idx}");
            let f = c as f64 / 10_000.0;
            assert!((f - 0.5).abs() < 0.03);
        }
    }

    #[test]
    fn sampling_is_deterministic_given_rng_state() {
        let mut s = StateVector::zero_state(3);
        s.apply_gate(Gate::H, &[0]).unwrap();
        s.apply_gate(Gate::H, &[1]).unwrap();
        s.apply_gate(Gate::H, &[2]).unwrap();
        let mut rng1 = Xoshiro256::seed_from(123);
        let mut rng2 = Xoshiro256::seed_from(123);
        assert_eq!(s.sample_counts(500, &mut rng1), s.sample_counts(500, &mut rng2));
    }

    #[test]
    fn raw_byte_size_grows_exponentially() {
        assert_eq!(StateVector::zero_state(1).raw_byte_size(), 2 * 16);
        assert_eq!(StateVector::zero_state(10).raw_byte_size(), 1024 * 16);
    }

    #[test]
    fn rxx_entangles_like_cnot_conjugation() {
        // RXX(π) on |00⟩ gives -i|11⟩ (up to global phase → prob 1 on |11⟩).
        let mut s = StateVector::zero_state(2);
        s.apply_gate(Gate::Rxx(std::f64::consts::PI), &[0, 1]).unwrap();
        assert!((s.probability(0b11) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn apply_matrix2_matches_apply_gate() {
        let mut rng = Xoshiro256::seed_from(1);
        let mut a = StateVector::random(3, &mut rng);
        let mut b = a.clone();
        a.apply_gate(Gate::Ry(0.77), &[2]).unwrap();
        b.apply_matrix2(&Gate::Ry(0.77).matrix2(), 2);
        assert!((a.fidelity(&b).unwrap() - 1.0).abs() < EPS);
    }
}
