//! Shared property-test strategies (the `testing` feature).
//!
//! The gate-level strategies here were originally duplicated across the
//! `qsim` and `qnn` property suites; they now live in the library (behind
//! the non-default `testing` feature) so every suite — including `qpar`'s
//! thread-equivalence properties — draws circuits from one definition.

use proptest::prelude::*;

use crate::gate::Gate;

/// Strategy: an arbitrary gate applied to valid qubits of an `n`-qubit
/// register. Covers the full single-qubit set (fixed and rotation gates)
/// and the two-qubit set with distinct qubit pairs.
pub fn arb_op(n: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let angle = -6.0..6.0f64;
    prop_oneof![
        Just(Gate::H).prop_map(|g| (g, ())),
        Just(Gate::X).prop_map(|g| (g, ())),
        Just(Gate::Y).prop_map(|g| (g, ())),
        Just(Gate::Z).prop_map(|g| (g, ())),
        Just(Gate::S).prop_map(|g| (g, ())),
        Just(Gate::T).prop_map(|g| (g, ())),
        angle.clone().prop_map(|t| (Gate::Rx(t), ())),
        angle.clone().prop_map(|t| (Gate::Ry(t), ())),
        angle.clone().prop_map(|t| (Gate::Rz(t), ())),
        angle.clone().prop_map(|t| (Gate::Phase(t), ())),
    ]
    .prop_flat_map(move |(g, ())| (Just(g), 0..n))
    .prop_map(|(g, q)| (g, vec![q]))
    .boxed()
    .prop_union(
        prop_oneof![
            Just(Gate::Cx),
            Just(Gate::Cz),
            Just(Gate::Swap),
            (-6.0..6.0f64).prop_map(Gate::Rzz),
            (-6.0..6.0f64).prop_map(Gate::Rxx),
        ]
        .prop_flat_map(move |g| (Just(g), 0..n, 0..n))
        .prop_filter("distinct qubits", |(_, a, b)| a != b)
        .prop_map(|(g, a, b)| (g, vec![a, b]))
        .boxed(),
    )
}

/// Strategy: a random gate sequence of length `0..max_len` on an
/// `n`-qubit register — the raw material for random-circuit properties.
pub fn arb_ops(n: usize, max_len: usize) -> impl Strategy<Value = Vec<(Gate, Vec<usize>)>> {
    prop::collection::vec(arb_op(n), 0..max_len)
}
