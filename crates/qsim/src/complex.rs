//! Minimal complex-number arithmetic for state-vector simulation.
//!
//! The crate deliberately implements its own [`Complex64`] instead of pulling
//! in an external crate: the type must be `serde`-serializable with a stable
//! byte layout (the naive-baseline checkpointer dumps raw statevectors) and
//! only a small, predictable slice of complex arithmetic is needed.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A double-precision complex number `re + i·im`.
///
/// # Examples
///
/// ```
/// use qsim::complex::Complex64;
///
/// let i = Complex64::I;
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

// Layout contract behind `flatten`/`flatten_mut`: a `Complex64` is exactly
// two packed `f64`s.
const _: () = assert!(std::mem::size_of::<Complex64>() == 2 * std::mem::size_of::<f64>());
const _: () = assert!(std::mem::align_of::<Complex64>() == std::mem::align_of::<f64>());

impl Complex64 {
    /// Reinterprets amplitudes as the flattened `[re, im, re, im, …]`
    /// layout the `qsimd` kernels operate on.
    #[allow(unsafe_code)]
    pub(crate) fn flatten(xs: &[Complex64]) -> &[f64] {
        // SAFETY: `Complex64` is `#[repr(C)]` with exactly two `f64`
        // fields (layout pinned by the const asserts above) and `f64` has
        // no invalid bit patterns.
        unsafe { std::slice::from_raw_parts(xs.as_ptr().cast(), xs.len() * 2) }
    }

    /// Mutable variant of [`Complex64::flatten`].
    #[allow(unsafe_code)]
    pub(crate) fn flatten_mut(xs: &mut [Complex64]) -> &mut [f64] {
        // SAFETY: see `flatten`; every bit pattern written through the
        // `f64` view is a valid `Complex64`.
        unsafe { std::slice::from_raw_parts_mut(xs.as_mut_ptr().cast(), xs.len() * 2) }
    }
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Returns `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate `re - i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `re² + im²` (the Born-rule probability weight).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `√(re² + im²)`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// Returns non-finite components when `self` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within absolute tolerance `eps` per component.
    #[inline]
    pub fn approx_eq(self, other: Complex64, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w = z * w^-1 by definition
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Complex64::new(1.0, 2.0).re, 1.0);
        assert_eq!(Complex64::new(1.0, 2.0).im, 2.0);
        assert_eq!(Complex64::from_real(3.0), Complex64::new(3.0, 0.0));
        assert_eq!(Complex64::ZERO + Complex64::ONE, Complex64::ONE);
        assert_eq!(Complex64::from(2.5), Complex64::new(2.5, 0.0));
        assert_eq!(Complex64::default(), Complex64::ZERO);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn addition_and_subtraction() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        assert_eq!(a + b, Complex64::new(4.0, -2.0));
        assert_eq!(a - b, Complex64::new(-2.0, 6.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn multiplication_matches_foil() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        // (1+2i)(3-4i) = 3 - 4i + 6i + 8 = 11 + 2i
        assert_eq!(a * b, Complex64::new(11.0, 2.0));
        let mut c = a;
        c *= b;
        assert_eq!(c, a * b);
    }

    #[test]
    fn scalar_multiplication_commutes() {
        let a = Complex64::new(1.5, -2.5);
        assert_eq!(a * 2.0, 2.0 * a);
        assert_eq!(a * 2.0, Complex64::new(3.0, -5.0));
        assert_eq!(a / 2.0, Complex64::new(0.75, -1.25));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        let q = (a * b) / b;
        assert!(q.approx_eq(a, EPS));
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.norm(), 5.0);
        // z * conj(z) is purely real and equals |z|^2.
        let p = a * a.conj();
        assert!(p.approx_eq(Complex64::from_real(25.0), EPS));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex64::cis(theta);
            assert!((z.norm() - 1.0).abs() < EPS);
        }
        assert!(Complex64::cis(0.0).approx_eq(Complex64::ONE, EPS));
        assert!(Complex64::cis(std::f64::consts::FRAC_PI_2).approx_eq(Complex64::I, EPS));
    }

    #[test]
    fn arg_of_quadrants() {
        assert!((Complex64::new(1.0, 1.0).arg() - std::f64::consts::FRAC_PI_4).abs() < EPS);
        assert!((Complex64::new(-1.0, 0.0).arg() - std::f64::consts::PI).abs() < EPS);
        assert!((Complex64::new(0.0, -1.0).arg() + std::f64::consts::FRAC_PI_2).abs() < EPS);
    }

    #[test]
    fn recip_of_zero_is_not_finite() {
        assert!(!Complex64::ZERO.recip().is_finite());
        assert!(Complex64::ONE.recip().is_finite());
    }

    #[test]
    fn negation() {
        let a = Complex64::new(1.0, -2.0);
        assert_eq!(-a, Complex64::new(-1.0, 2.0));
        assert_eq!(a + (-a), Complex64::ZERO);
    }

    #[test]
    fn sum_over_iterator() {
        let v = vec![
            Complex64::new(1.0, 1.0),
            Complex64::new(2.0, -1.0),
            Complex64::new(-3.0, 0.5),
        ];
        let s: Complex64 = v.into_iter().sum();
        assert!(s.approx_eq(Complex64::new(0.0, 0.5), EPS));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn serde_round_trip_via_debug_shape() {
        // Field-level serialization is exercised with serde's derive; we spot
        // check that the derived impl preserves exact bit patterns through a
        // binary-ish round trip using serde's data model (here: JSON-free,
        // using the `serde_test`-style approach is unavailable, so round-trip
        // through the in-repo codec happens in qcheck tests).
        let a = Complex64::new(f64::MIN_POSITIVE, -0.0);
        let b = a; // Copy
        assert_eq!(a.re.to_bits(), b.re.to_bits());
        assert_eq!(a.im.to_bits(), b.im.to_bits());
    }
}
