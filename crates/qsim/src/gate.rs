//! Quantum gate definitions and their unitary matrices.
//!
//! Gates are plain data ([`Gate`]): a named kind plus real parameters. The
//! matrix for a gate is materialized on demand as a dense 2×2 or 4×4 complex
//! array and applied by the kernels in [`crate::state`]. Keeping gates as
//! data (rather than closures) is what makes circuits serializable, which the
//! checkpointing layer depends on.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::complex::Complex64;

/// A 2×2 complex matrix acting on one qubit.
pub type Matrix2 = [[Complex64; 2]; 2];
/// A 4×4 complex matrix acting on two qubits (row-major, basis order
/// `|q1 q0⟩` = `|00⟩,|01⟩,|10⟩,|11⟩` with the *first* listed qubit as the
/// low bit).
pub type Matrix4 = [[Complex64; 4]; 4];

const Z0: Complex64 = Complex64::ZERO;
const O1: Complex64 = Complex64::ONE;
const IM: Complex64 = Complex64::I;

/// Gate kinds supported by the simulator.
///
/// The set covers the standard single-qubit Cliffords, parametrized
/// rotations, the two-qubit entanglers used by hardware-efficient ansätze,
/// and the Mølmer–Sørensen–style `RXX/RYY/RZZ` family used to implement the
/// canonical gate decomposition of arbitrary two-qubit unitaries.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Identity.
    I,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// Inverse phase gate S† = diag(1, -i).
    Sdg,
    /// T gate = diag(1, e^{iπ/4}).
    T,
    /// T† gate.
    Tdg,
    /// √X gate.
    Sx,
    /// Inverse √X gate.
    Sxdg,
    /// Rotation about X by the given angle.
    Rx(f64),
    /// Rotation about Y by the given angle.
    Ry(f64),
    /// Rotation about Z by the given angle.
    Rz(f64),
    /// Phase rotation diag(1, e^{iθ}).
    Phase(f64),
    /// General single-qubit gate U(θ, φ, λ) in the OpenQASM convention.
    U3(f64, f64, f64),
    /// Controlled-X; operand order is (control, target).
    Cx,
    /// Controlled-Y.
    Cy,
    /// Controlled-Z (symmetric).
    Cz,
    /// Controlled phase rotation.
    Cphase(f64),
    /// Controlled-RZ.
    Crz(f64),
    /// SWAP.
    Swap,
    /// Two-qubit XX interaction: exp(-i θ/2 X⊗X).
    Rxx(f64),
    /// Two-qubit YY interaction: exp(-i θ/2 Y⊗Y).
    Ryy(f64),
    /// Two-qubit ZZ interaction: exp(-i θ/2 Z⊗Z).
    Rzz(f64),
}

impl Gate {
    /// Number of qubits the gate acts on (1 or 2).
    pub fn arity(&self) -> usize {
        match self {
            Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Sx
            | Gate::Sxdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::Phase(_)
            | Gate::U3(..) => 1,
            Gate::Cx
            | Gate::Cy
            | Gate::Cz
            | Gate::Cphase(_)
            | Gate::Crz(_)
            | Gate::Swap
            | Gate::Rxx(_)
            | Gate::Ryy(_)
            | Gate::Rzz(_) => 2,
        }
    }

    /// Whether the gate carries a continuous parameter.
    pub fn is_parametrized(&self) -> bool {
        matches!(
            self,
            Gate::Rx(_)
                | Gate::Ry(_)
                | Gate::Rz(_)
                | Gate::Phase(_)
                | Gate::U3(..)
                | Gate::Cphase(_)
                | Gate::Crz(_)
                | Gate::Rxx(_)
                | Gate::Ryy(_)
                | Gate::Rzz(_)
        )
    }

    /// The 2×2 unitary for single-qubit gates.
    ///
    /// # Panics
    ///
    /// Panics if called on a two-qubit gate.
    pub fn matrix2(&self) -> Matrix2 {
        let h = std::f64::consts::FRAC_1_SQRT_2;
        match *self {
            Gate::I => [[O1, Z0], [Z0, O1]],
            Gate::X => [[Z0, O1], [O1, Z0]],
            Gate::Y => [[Z0, -IM], [IM, Z0]],
            Gate::Z => [[O1, Z0], [Z0, -O1]],
            Gate::H => [
                [Complex64::from_real(h), Complex64::from_real(h)],
                [Complex64::from_real(h), Complex64::from_real(-h)],
            ],
            Gate::S => [[O1, Z0], [Z0, IM]],
            Gate::Sdg => [[O1, Z0], [Z0, -IM]],
            Gate::T => [[O1, Z0], [Z0, Complex64::cis(std::f64::consts::FRAC_PI_4)]],
            Gate::Tdg => [[O1, Z0], [Z0, Complex64::cis(-std::f64::consts::FRAC_PI_4)]],
            Gate::Sx => {
                let a = Complex64::new(0.5, 0.5);
                let b = Complex64::new(0.5, -0.5);
                [[a, b], [b, a]]
            }
            Gate::Sxdg => {
                let a = Complex64::new(0.5, -0.5);
                let b = Complex64::new(0.5, 0.5);
                [[a, b], [b, a]]
            }
            Gate::Rx(t) => {
                let c = Complex64::from_real((t / 2.0).cos());
                let s = Complex64::new(0.0, -(t / 2.0).sin());
                [[c, s], [s, c]]
            }
            Gate::Ry(t) => {
                let c = (t / 2.0).cos();
                let s = (t / 2.0).sin();
                [
                    [Complex64::from_real(c), Complex64::from_real(-s)],
                    [Complex64::from_real(s), Complex64::from_real(c)],
                ]
            }
            Gate::Rz(t) => [
                [Complex64::cis(-t / 2.0), Z0],
                [Z0, Complex64::cis(t / 2.0)],
            ],
            Gate::Phase(t) => [[O1, Z0], [Z0, Complex64::cis(t)]],
            Gate::U3(theta, phi, lambda) => {
                let c = (theta / 2.0).cos();
                let s = (theta / 2.0).sin();
                [
                    [Complex64::from_real(c), -Complex64::cis(lambda) * s],
                    [Complex64::cis(phi) * s, Complex64::cis(phi + lambda) * c],
                ]
            }
            _ => panic!("matrix2 called on two-qubit gate {self:?}"),
        }
    }

    /// The 4×4 unitary for two-qubit gates.
    ///
    /// Basis convention: when the gate is applied to qubits `(a, b)`, the
    /// matrix index bit 0 is qubit `a` and bit 1 is qubit `b`. For controlled
    /// gates, qubit `a` is the control.
    ///
    /// # Panics
    ///
    /// Panics if called on a single-qubit gate.
    pub fn matrix4(&self) -> Matrix4 {
        match *self {
            // Control is bit 0 (index odd → control set).
            Gate::Cx => {
                let mut m = identity4();
                // |c=1,t=0⟩ = index 0b01 = 1 ↔ |c=1,t=1⟩ = 0b11 = 3
                m[1] = [Z0, Z0, Z0, O1];
                m[3] = [Z0, O1, Z0, Z0];
                m
            }
            Gate::Cy => {
                let mut m = identity4();
                m[1] = [Z0, Z0, Z0, -IM];
                m[3] = [Z0, IM, Z0, Z0];
                m
            }
            Gate::Cz => {
                let mut m = identity4();
                m[3][3] = -O1;
                m
            }
            Gate::Cphase(t) => {
                let mut m = identity4();
                m[3][3] = Complex64::cis(t);
                m
            }
            Gate::Crz(t) => {
                let mut m = identity4();
                m[1][1] = Complex64::cis(-t / 2.0);
                m[3][3] = Complex64::cis(t / 2.0);
                m
            }
            Gate::Swap => {
                let mut m = [[Z0; 4]; 4];
                m[0][0] = O1;
                m[1][2] = O1;
                m[2][1] = O1;
                m[3][3] = O1;
                m
            }
            Gate::Rxx(t) => {
                let c = Complex64::from_real((t / 2.0).cos());
                let s = Complex64::new(0.0, -(t / 2.0).sin());
                [
                    [c, Z0, Z0, s],
                    [Z0, c, s, Z0],
                    [Z0, s, c, Z0],
                    [s, Z0, Z0, c],
                ]
            }
            Gate::Ryy(t) => {
                let c = Complex64::from_real((t / 2.0).cos());
                let s = Complex64::new(0.0, (t / 2.0).sin());
                let ms = Complex64::new(0.0, -(t / 2.0).sin());
                [
                    [c, Z0, Z0, s],
                    [Z0, c, ms, Z0],
                    [Z0, ms, c, Z0],
                    [s, Z0, Z0, c],
                ]
            }
            Gate::Rzz(t) => {
                let e = Complex64::cis(-t / 2.0);
                let ec = Complex64::cis(t / 2.0);
                [
                    [e, Z0, Z0, Z0],
                    [Z0, ec, Z0, Z0],
                    [Z0, Z0, ec, Z0],
                    [Z0, Z0, Z0, e],
                ]
            }
            _ => panic!("matrix4 called on single-qubit gate {self:?}"),
        }
    }

    /// Returns the gate with its continuous parameter replaced by `theta`.
    ///
    /// Non-parametrized gates are returned unchanged; `U3` rebinds only its
    /// first angle.
    pub fn with_param(&self, theta: f64) -> Gate {
        match *self {
            Gate::Rx(_) => Gate::Rx(theta),
            Gate::Ry(_) => Gate::Ry(theta),
            Gate::Rz(_) => Gate::Rz(theta),
            Gate::Phase(_) => Gate::Phase(theta),
            Gate::U3(_, phi, lambda) => Gate::U3(theta, phi, lambda),
            Gate::Cphase(_) => Gate::Cphase(theta),
            Gate::Crz(_) => Gate::Crz(theta),
            Gate::Rxx(_) => Gate::Rxx(theta),
            Gate::Ryy(_) => Gate::Ryy(theta),
            Gate::Rzz(_) => Gate::Rzz(theta),
            g => g,
        }
    }

    /// The inverse (adjoint) gate.
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::Phase(t) => Gate::Phase(-t),
            Gate::U3(theta, phi, lambda) => Gate::U3(-theta, -lambda, -phi),
            Gate::Cphase(t) => Gate::Cphase(-t),
            Gate::Crz(t) => Gate::Crz(-t),
            Gate::Rxx(t) => Gate::Rxx(-t),
            Gate::Ryy(t) => Gate::Ryy(-t),
            Gate::Rzz(t) => Gate::Rzz(-t),
            Gate::Sx => Gate::Sxdg,
            Gate::Sxdg => Gate::Sx,
            g => g, // I, X, Y, Z, H, Cx, Cy, Cz, Swap are involutions
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Rx(t) => write!(f, "RX({t:.4})"),
            Gate::Ry(t) => write!(f, "RY({t:.4})"),
            Gate::Rz(t) => write!(f, "RZ({t:.4})"),
            Gate::Phase(t) => write!(f, "P({t:.4})"),
            Gate::U3(a, b, c) => write!(f, "U3({a:.4},{b:.4},{c:.4})"),
            Gate::Cphase(t) => write!(f, "CP({t:.4})"),
            Gate::Crz(t) => write!(f, "CRZ({t:.4})"),
            Gate::Rxx(t) => write!(f, "RXX({t:.4})"),
            Gate::Ryy(t) => write!(f, "RYY({t:.4})"),
            Gate::Rzz(t) => write!(f, "RZZ({t:.4})"),
            g => write!(f, "{g:?}"),
        }
    }
}

/// 4×4 identity matrix.
pub fn identity4() -> Matrix4 {
    let mut m = [[Z0; 4]; 4];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = O1;
    }
    m
}

/// Multiplies two 2×2 complex matrices.
pub fn matmul2(a: &Matrix2, b: &Matrix2) -> Matrix2 {
    let mut out = [[Z0; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            let mut acc = Z0;
            for (k, bk) in b.iter().enumerate() {
                acc += a[i][k] * bk[j];
            }
            out[i][j] = acc;
        }
    }
    out
}

/// Multiplies two 4×4 complex matrices.
pub fn matmul4(a: &Matrix4, b: &Matrix4) -> Matrix4 {
    let mut out = [[Z0; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            let mut acc = Z0;
            for (k, bk) in b.iter().enumerate() {
                acc += a[i][k] * bk[j];
            }
            out[i][j] = acc;
        }
    }
    out
}

/// Conjugate transpose of a 2×2 matrix.
pub fn dagger2(m: &Matrix2) -> Matrix2 {
    let mut out = [[Z0; 2]; 2];
    for i in 0..2 {
        for (j, row) in m.iter().enumerate() {
            out[i][j] = row[i].conj();
        }
    }
    out
}

/// Conjugate transpose of a 4×4 matrix.
pub fn dagger4(m: &Matrix4) -> Matrix4 {
    let mut out = [[Z0; 4]; 4];
    for i in 0..4 {
        for (j, row) in m.iter().enumerate() {
            out[i][j] = row[i].conj();
        }
    }
    out
}

/// Checks a 2×2 matrix for unitarity within tolerance `eps`.
pub fn is_unitary2(m: &Matrix2, eps: f64) -> bool {
    let p = matmul2(&dagger2(m), m);
    let id: Matrix2 = [[O1, Z0], [Z0, O1]];
    for i in 0..2 {
        for j in 0..2 {
            if !p[i][j].approx_eq(id[i][j], eps) {
                return false;
            }
        }
    }
    true
}

/// Checks a 4×4 matrix for unitarity within tolerance `eps`.
pub fn is_unitary4(m: &Matrix4, eps: f64) -> bool {
    let p = matmul4(&dagger4(m), m);
    let id = identity4();
    for i in 0..4 {
        for j in 0..4 {
            if !p[i][j].approx_eq(id[i][j], eps) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn all_single() -> Vec<Gate> {
        vec![
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Sxdg,
            Gate::Rx(0.3),
            Gate::Ry(-1.1),
            Gate::Rz(2.7),
            Gate::Phase(0.9),
            Gate::U3(0.4, 1.2, -0.7),
        ]
    }

    fn all_two() -> Vec<Gate> {
        vec![
            Gate::Cx,
            Gate::Cy,
            Gate::Cz,
            Gate::Cphase(0.5),
            Gate::Crz(-0.8),
            Gate::Swap,
            Gate::Rxx(0.6),
            Gate::Ryy(1.3),
            Gate::Rzz(-2.0),
        ]
    }

    #[test]
    fn arities() {
        for g in all_single() {
            assert_eq!(g.arity(), 1, "{g}");
        }
        for g in all_two() {
            assert_eq!(g.arity(), 2, "{g}");
        }
    }

    #[test]
    fn all_single_qubit_gates_are_unitary() {
        for g in all_single() {
            assert!(is_unitary2(&g.matrix2(), EPS), "{g} not unitary");
        }
    }

    #[test]
    fn all_two_qubit_gates_are_unitary() {
        for g in all_two() {
            assert!(is_unitary4(&g.matrix4(), EPS), "{g} not unitary");
        }
    }

    #[test]
    fn pauli_algebra() {
        let x = Gate::X.matrix2();
        let y = Gate::Y.matrix2();
        let z = Gate::Z.matrix2();
        // XY = iZ
        let xy = matmul2(&x, &y);
        for i in 0..2 {
            for j in 0..2 {
                assert!(xy[i][j].approx_eq(IM * z[i][j], EPS));
            }
        }
        // X² = I
        let xx = matmul2(&x, &x);
        assert!(xx[0][0].approx_eq(O1, EPS) && xx[1][1].approx_eq(O1, EPS));
        assert!(xx[0][1].approx_eq(Z0, EPS) && xx[1][0].approx_eq(Z0, EPS));
    }

    #[test]
    fn hadamard_conjugates_x_to_z() {
        let h = Gate::H.matrix2();
        let x = Gate::X.matrix2();
        let z = Gate::Z.matrix2();
        let hxh = matmul2(&matmul2(&h, &x), &h);
        for i in 0..2 {
            for j in 0..2 {
                assert!(hxh[i][j].approx_eq(z[i][j], EPS));
            }
        }
    }

    #[test]
    fn s_squared_is_z_and_t_squared_is_s() {
        let s2 = matmul2(&Gate::S.matrix2(), &Gate::S.matrix2());
        let z = Gate::Z.matrix2();
        let t2 = matmul2(&Gate::T.matrix2(), &Gate::T.matrix2());
        let s = Gate::S.matrix2();
        for i in 0..2 {
            for j in 0..2 {
                assert!(s2[i][j].approx_eq(z[i][j], EPS));
                assert!(t2[i][j].approx_eq(s[i][j], EPS));
            }
        }
    }

    #[test]
    fn sx_squared_is_x() {
        let sx2 = matmul2(&Gate::Sx.matrix2(), &Gate::Sx.matrix2());
        let x = Gate::X.matrix2();
        for i in 0..2 {
            for j in 0..2 {
                assert!(sx2[i][j].approx_eq(x[i][j], EPS));
            }
        }
    }

    #[test]
    fn rotations_compose_additively() {
        for (a, b) in [(0.3, 0.9), (-1.0, 2.0), (0.0, 0.0)] {
            let ra = Gate::Rz(a).matrix2();
            let rb = Gate::Rz(b).matrix2();
            let rab = Gate::Rz(a + b).matrix2();
            let prod = matmul2(&ra, &rb);
            for i in 0..2 {
                for j in 0..2 {
                    assert!(prod[i][j].approx_eq(rab[i][j], EPS));
                }
            }
        }
    }

    #[test]
    fn u3_special_cases() {
        // U3(θ,0,0) = RY(θ)
        let u = Gate::U3(0.7, 0.0, 0.0).matrix2();
        let ry = Gate::Ry(0.7).matrix2();
        for i in 0..2 {
            for j in 0..2 {
                assert!(u[i][j].approx_eq(ry[i][j], EPS));
            }
        }
    }

    #[test]
    fn inverses_cancel_for_matrix2_gates() {
        for g in all_single() {
            let m = g.matrix2();
            let mi = g.inverse().matrix2();
            let p = matmul2(&mi, &m);
            assert!(p[0][0].approx_eq(O1, 1e-10), "{g}");
            assert!(p[1][1].approx_eq(O1, 1e-10), "{g}");
            assert!(p[0][1].approx_eq(Z0, 1e-10), "{g}");
            assert!(p[1][0].approx_eq(Z0, 1e-10), "{g}");
        }
    }

    #[test]
    fn inverses_cancel_for_matrix4_gates() {
        for g in all_two() {
            let m = g.matrix4();
            let mi = g.inverse().matrix4();
            let p = matmul4(&mi, &m);
            let id = identity4();
            for i in 0..4 {
                for j in 0..4 {
                    assert!(p[i][j].approx_eq(id[i][j], 1e-10), "{g}");
                }
            }
        }
    }

    #[test]
    fn with_param_rebinds() {
        assert_eq!(Gate::Rx(0.0).with_param(1.5), Gate::Rx(1.5));
        assert_eq!(Gate::Rzz(0.0).with_param(-0.5), Gate::Rzz(-0.5));
        assert_eq!(Gate::H.with_param(9.9), Gate::H);
        assert!(Gate::Rx(0.1).is_parametrized());
        assert!(!Gate::Cx.is_parametrized());
    }

    #[test]
    fn cx_matrix_truth_table() {
        let m = Gate::Cx.matrix4();
        // control = bit0. Index 0b01=1 (control set, target 0) maps to 0b11=3.
        assert!(m[3][1].approx_eq(O1, EPS));
        assert!(m[1][3].approx_eq(O1, EPS));
        assert!(m[0][0].approx_eq(O1, EPS));
        assert!(m[2][2].approx_eq(O1, EPS));
    }

    #[test]
    fn display_is_nonempty() {
        for g in all_single().into_iter().chain(all_two()) {
            assert!(!g.to_string().is_empty());
        }
    }

    #[test]
    fn rzz_is_diagonal_with_correct_phases() {
        let m = Gate::Rzz(1.0).matrix4();
        assert!(m[0][0].approx_eq(Complex64::cis(-0.5), EPS));
        assert!(m[1][1].approx_eq(Complex64::cis(0.5), EPS));
        assert!(m[2][2].approx_eq(Complex64::cis(0.5), EPS));
        assert!(m[3][3].approx_eq(Complex64::cis(-0.5), EPS));
    }
}
