//! Shot-based estimation of observables.
//!
//! On real hardware an expectation value is never read off exactly: each
//! Pauli term is estimated by rotating into its eigenbasis, sampling `S`
//! shots, and averaging ±1 eigenvalues. The sampling consumes draws from the
//! provided [`Xoshiro256`] stream — which is exactly why the checkpointing
//! layer must capture RNG state to make a resumed run reproduce the same
//! shot noise.

use serde::{Deserialize, Serialize};

use crate::circuit::CircuitError;
use crate::pauli::{PauliString, PauliSum};
use crate::rng::Xoshiro256;
use crate::state::StateVector;

/// How an expectation value should be evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalMode {
    /// Exact expectation from the full state vector (noiseless analysis).
    Exact,
    /// Estimated from the given number of shots per Pauli term.
    Shots(u32),
}

impl EvalMode {
    /// Shots consumed per Pauli term under this mode.
    pub fn shots_per_term(&self) -> u32 {
        match self {
            EvalMode::Exact => 0,
            EvalMode::Shots(s) => *s,
        }
    }
}

/// Estimates `⟨ψ|P|ψ⟩` for a single Pauli string from `shots` samples.
///
/// # Errors
///
/// Propagates circuit/state errors from the basis rotation.
pub fn estimate_pauli(
    state: &StateVector,
    pauli: &PauliString,
    shots: u32,
    rng: &mut Xoshiro256,
) -> Result<f64, CircuitError> {
    if pauli.weight() == 0 {
        // ⟨I⟩ = 1 with zero variance; consume no shots.
        return Ok(1.0);
    }
    let mut rotated = state.clone();
    pauli.basis_rotation().run_on(&mut rotated, &[])?;
    let counts = rotated.sample_counts(shots as usize, rng);
    let mut acc = 0.0;
    for (outcome, count) in counts {
        acc += pauli.eigenvalue(outcome) * count as f64;
    }
    Ok(acc / shots as f64)
}

/// Evaluates `⟨ψ|H|ψ⟩` for a Pauli-sum observable in the given mode.
///
/// In [`EvalMode::Shots`] each term is estimated independently with the full
/// per-term shot budget (the simple, hardware-faithful strategy; grouping
/// commuting terms is an optimization the evaluation does not depend on).
///
/// Returns the estimate together with the number of shots consumed.
///
/// # Errors
///
/// Propagates circuit/state errors from the basis rotations.
pub fn evaluate_observable(
    state: &StateVector,
    observable: &PauliSum,
    mode: EvalMode,
    rng: &mut Xoshiro256,
) -> Result<(f64, u64), CircuitError> {
    match mode {
        EvalMode::Exact => {
            let v = observable.expectation(state)?;
            Ok((v, 0))
        }
        EvalMode::Shots(shots) => {
            let mut acc = 0.0;
            let mut consumed = 0u64;
            for (coeff, pauli) in observable.terms() {
                let est = estimate_pauli(state, pauli, shots, rng)?;
                if pauli.weight() > 0 {
                    consumed += shots as u64;
                }
                acc += coeff * est;
            }
            Ok((acc, consumed))
        }
    }
}

/// Standard error of a single-term shot estimate with true expectation `e`
/// and `shots` samples (binomial variance of a ±1 variable).
pub fn shot_standard_error(e: f64, shots: u32) -> f64 {
    if shots == 0 {
        return 0.0;
    }
    ((1.0 - e * e).max(0.0) / shots as f64).sqrt()
}

/// Estimates the fidelity `|⟨a|b⟩|²` of two pure states with the
/// *destructive SWAP test*: prepare `a ⊗ b`, apply transversal `CX(i, i+n)`
/// and `H(i)`, measure everything, and average
/// `Π_i (−1)^{bit_i(a-half) · bit_i(b-half)}` over shots — the hardware
/// protocol behind shot-based fidelity losses.
///
/// The estimator is unbiased; individual sample means may fall outside
/// `[0, 1]` at low shot counts.
///
/// # Errors
///
/// Returns [`crate::state::StateError::SizeMismatch`] when the registers differ.
///
/// # Panics
///
/// Panics if `shots == 0`.
pub fn swap_test_fidelity(
    a: &StateVector,
    b: &StateVector,
    shots: u32,
    rng: &mut Xoshiro256,
) -> Result<f64, CircuitError> {
    assert!(shots > 0, "need at least one shot");
    let n = a.num_qubits();
    if b.num_qubits() != n {
        return Err(CircuitError::State(
            crate::state::StateError::SizeMismatch {
                left: n,
                right: b.num_qubits(),
            },
        ));
    }
    // a occupies qubits 0..n (low), b occupies n..2n (high).
    let mut joint = a.tensor(b);
    for i in 0..n {
        joint.apply_gate(crate::gate::Gate::Cx, &[i, i + n])?;
        joint.apply_gate(crate::gate::Gate::H, &[i])?;
    }
    let counts = joint.sample_counts(shots as usize, rng);
    let mut acc = 0.0f64;
    for (outcome, count) in counts {
        let low = outcome & ((1usize << n) - 1);
        let high = outcome >> n;
        let parity = (low & high).count_ones();
        let sign = if parity.is_multiple_of(2) { 1.0 } else { -1.0 };
        acc += sign * count as f64;
    }
    Ok(acc / shots as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn exact_mode_consumes_no_shots() {
        let s = StateVector::zero_state(2);
        let h = PauliSum::mean_z(2);
        let mut rng = Xoshiro256::seed_from(1);
        let before = rng.draw_count();
        let (v, consumed) = evaluate_observable(&s, &h, EvalMode::Exact, &mut rng).unwrap();
        assert!((v - 1.0).abs() < 1e-12);
        assert_eq!(consumed, 0);
        assert_eq!(rng.draw_count(), before);
    }

    #[test]
    fn shot_estimate_converges() {
        let mut s = StateVector::zero_state(1);
        s.apply_gate(Gate::Ry(0.7), &[0]).unwrap();
        let z = PauliString::from_str("Z").unwrap();
        let exact = z.expectation(&s).unwrap();
        let mut rng = Xoshiro256::seed_from(3);
        let est = estimate_pauli(&s, &z, 100_000, &mut rng).unwrap();
        assert!(
            (est - exact).abs() < 4.0 * shot_standard_error(exact, 100_000) + 1e-3,
            "estimate {est} too far from {exact}"
        );
    }

    #[test]
    fn shot_estimate_of_x_term_uses_rotation() {
        let mut s = StateVector::zero_state(1);
        s.apply_gate(Gate::H, &[0]).unwrap();
        let x = PauliString::from_str("X").unwrap();
        let mut rng = Xoshiro256::seed_from(5);
        let est = estimate_pauli(&s, &x, 10_000, &mut rng).unwrap();
        // |+⟩ is an X eigenstate; every shot yields +1.
        assert!((est - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_term_is_free() {
        let s = StateVector::zero_state(2);
        let id = PauliString::identity(2);
        let mut rng = Xoshiro256::seed_from(7);
        let before = rng.draw_count();
        let est = estimate_pauli(&s, &id, 1_000, &mut rng).unwrap();
        assert_eq!(est, 1.0);
        assert_eq!(rng.draw_count(), before);
    }

    #[test]
    fn observable_estimate_accounts_shots() {
        let s = StateVector::zero_state(2);
        let h = PauliSum::transverse_ising(2, 1.0, 0.5);
        let mut rng = Xoshiro256::seed_from(9);
        let (_, consumed) = evaluate_observable(&s, &h, EvalMode::Shots(128), &mut rng).unwrap();
        // 1 ZZ term + 2 X terms, 128 shots each.
        assert_eq!(consumed, 3 * 128);
    }

    #[test]
    fn shot_noise_is_reproducible_from_rng_state() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(Gate::H, &[0]).unwrap();
        s.apply_gate(Gate::Cx, &[0, 1]).unwrap();
        let h = PauliSum::transverse_ising(2, 1.0, 1.0);

        let mut rng = Xoshiro256::seed_from(11);
        for _ in 0..17 {
            rng.next_u64();
        }
        let snapshot = rng.state();
        let (a, _) = evaluate_observable(&s, &h, EvalMode::Shots(500), &mut rng).unwrap();
        let mut rng2 = Xoshiro256::from_state(snapshot);
        let (b, _) = evaluate_observable(&s, &h, EvalMode::Shots(500), &mut rng2).unwrap();
        assert_eq!(a.to_bits(), b.to_bits(), "bitwise-identical shot noise");
    }

    #[test]
    fn standard_error_shapes() {
        assert_eq!(shot_standard_error(1.0, 100), 0.0);
        assert!(shot_standard_error(0.0, 100) > shot_standard_error(0.9, 100));
        assert_eq!(shot_standard_error(0.5, 0), 0.0);
    }

    #[test]
    fn eval_mode_shots_per_term() {
        assert_eq!(EvalMode::Exact.shots_per_term(), 0);
        assert_eq!(EvalMode::Shots(42).shots_per_term(), 42);
    }

    #[test]
    fn swap_test_on_identical_states_is_one_in_expectation() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(Gate::H, &[0]).unwrap();
        s.apply_gate(Gate::Cx, &[0, 1]).unwrap();
        let mut rng = Xoshiro256::seed_from(13);
        let est = swap_test_fidelity(&s, &s, 20_000, &mut rng).unwrap();
        assert!((est - 1.0).abs() < 0.03, "est {est}");
    }

    #[test]
    fn swap_test_on_orthogonal_states_is_zero() {
        let a = StateVector::basis_state(2, 0);
        let b = StateVector::basis_state(2, 3);
        let mut rng = Xoshiro256::seed_from(17);
        let est = swap_test_fidelity(&a, &b, 20_000, &mut rng).unwrap();
        assert!(est.abs() < 0.03, "est {est}");
    }

    #[test]
    fn swap_test_matches_exact_fidelity() {
        let mut rng = Xoshiro256::seed_from(19);
        for _ in 0..3 {
            let a = StateVector::random(3, &mut rng);
            let b = StateVector::random(3, &mut rng);
            let exact = a.fidelity(&b).unwrap();
            let est = swap_test_fidelity(&a, &b, 40_000, &mut rng).unwrap();
            assert!(
                (est - exact).abs() < 0.03,
                "swap-test {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn swap_test_rejects_size_mismatch() {
        let a = StateVector::zero_state(2);
        let b = StateVector::zero_state(3);
        let mut rng = Xoshiro256::seed_from(1);
        assert!(swap_test_fidelity(&a, &b, 10, &mut rng).is_err());
    }

    #[test]
    fn swap_test_is_reproducible_from_rng_state() {
        let mut rng = Xoshiro256::seed_from(23);
        let a = StateVector::random(2, &mut rng);
        let b = StateVector::random(2, &mut rng);
        let snap = rng.state();
        let e1 = swap_test_fidelity(&a, &b, 256, &mut rng).unwrap();
        let mut rng2 = Xoshiro256::from_state(snap);
        let e2 = swap_test_fidelity(&a, &b, 256, &mut rng2).unwrap();
        assert_eq!(e1.to_bits(), e2.to_bits());
    }
}
