//! Deterministic, serializable random number generation.
//!
//! Exact resume — the headline property of the checkpointing system — requires
//! that every stochastic draw made by the training loop (shot sampling, noise
//! unravelling, mini-batch shuffling, parameter initialization) comes from a
//! generator whose state can be captured byte-exactly and restored later.
//! External RNG crates do not guarantee a stable serialized representation
//! across versions, so the simulator carries its own small, well-understood
//! generator: [`Xoshiro256`] (xoshiro256**), seeded through SplitMix64 as its
//! authors recommend.
//!
//! # Examples
//!
//! ```
//! use qsim::rng::Xoshiro256;
//!
//! let mut a = Xoshiro256::seed_from(42);
//! let snapshot = a.state();
//! let first = a.next_u64();
//! let mut b = Xoshiro256::from_state(snapshot);
//! assert_eq!(b.next_u64(), first);
//! ```

use serde::{Deserialize, Serialize};

/// SplitMix64 step, used for seeding and stream splitting.
///
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** generator with fully exposed, serializable state.
///
/// The 256-bit state is stored as four `u64` words. Cloning a generator
/// yields an identical future stream; [`Xoshiro256::split`] derives an
/// independent child stream (used to give each training-loop subsystem its
/// own stream so that re-ordering draws in one subsystem cannot perturb
/// another).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Xoshiro256 {
    s: [u64; 4],
    /// Number of `next_u64` calls made since seeding; diagnostic only, but
    /// checkpoint manifests record it so divergence is easy to spot.
    draws: u64,
}

impl Xoshiro256 {
    /// Seeds the generator from a single `u64` via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // The all-zero state is a fixed point of xoshiro; SplitMix64 cannot
        // produce four zero outputs from any seed, but guard anyway.
        let s = if s == [0; 4] { [1, 2, 3, 4] } else { s };
        Xoshiro256 { s, draws: 0 }
    }

    /// Rebuilds a generator from a previously captured [`RngState`].
    pub fn from_state(state: RngState) -> Self {
        Xoshiro256 {
            s: state.words,
            draws: state.draws,
        }
    }

    /// Captures the complete generator state.
    pub fn state(&self) -> RngState {
        RngState {
            words: self.s,
            draws: self.draws,
        }
    }

    /// Number of 64-bit draws made since seeding.
    pub fn draw_count(&self) -> u64 {
        self.draws
    }

    /// Derives an independent child generator.
    ///
    /// The child is seeded by hashing the parent's next draw through
    /// SplitMix64, so parent and child streams are decorrelated and the
    /// operation itself is reproducible.
    pub fn split(&mut self) -> Xoshiro256 {
        let mut seed = self.next_u64();
        let s = [
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
        ];
        let s = if s == [0; 4] { [5, 6, 7, 8] } else { s };
        Xoshiro256 { s, draws: 0 }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        self.draws += 1;
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scaling yields [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire-style rejection to avoid
    /// modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling on the widening multiply.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // threshold = 2^64 mod bound == bound.wrapping_neg() % bound
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Standard normal draw via Box–Muller (deterministic two-draw form).
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid log(0).
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        let n = xs.len();
        for i in (1..n).rev() {
            let j = self.next_below((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }

    /// Samples an index from a discrete probability distribution given as
    /// cumulative weights (last entry is the total mass).
    ///
    /// # Panics
    ///
    /// Panics if `cumulative` is empty.
    pub fn sample_cumulative(&mut self, cumulative: &[f64]) -> usize {
        assert!(!cumulative.is_empty(), "empty distribution");
        let total = *cumulative.last().expect("non-empty");
        let r = self.next_f64() * total;
        match cumulative.partition_point(|&c| c <= r) {
            i if i >= cumulative.len() => cumulative.len() - 1,
            i => i,
        }
    }
}

/// Byte-exact captured state of a [`Xoshiro256`] generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngState {
    /// The four 64-bit state words.
    pub words: [u64; 4],
    /// Draw counter at capture time.
    pub draws: u64,
}

impl RngState {
    /// Serializes the state to a fixed 40-byte little-endian representation.
    pub fn to_bytes(&self) -> [u8; 40] {
        let mut out = [0u8; 40];
        for (i, w) in self.words.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        out[32..40].copy_from_slice(&self.draws.to_le_bytes());
        out
    }

    /// Parses the representation produced by [`RngState::to_bytes`].
    ///
    /// Returns `None` when `bytes` is not exactly 40 bytes long.
    pub fn from_bytes(bytes: &[u8]) -> Option<RngState> {
        if bytes.len() != 40 {
            return None;
        }
        let mut words = [0u64; 4];
        for (i, w) in words.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            *w = u64::from_le_bytes(b);
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[32..40]);
        Some(RngState {
            words,
            draws: u64::from_le_bytes(b),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 (computed from the canonical
        // SplitMix64 definition).
        let mut s = 1234567u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
        // Determinism: same seed, same outputs.
        let mut s2 = 1234567u64;
        assert_eq!(splitmix64(&mut s2), a);
        assert_eq!(splitmix64(&mut s2), b);
    }

    #[test]
    fn deterministic_stream() {
        let mut a = Xoshiro256::seed_from(7);
        let mut b = Xoshiro256::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from(1);
        let mut b = Xoshiro256::seed_from(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn state_capture_resumes_exactly() {
        let mut a = Xoshiro256::seed_from(99);
        for _ in 0..37 {
            a.next_u64();
        }
        let snap = a.state();
        let ahead: Vec<u64> = (0..50).map(|_| a.next_u64()).collect();
        let mut b = Xoshiro256::from_state(snap);
        let replay: Vec<u64> = (0..50).map(|_| b.next_u64()).collect();
        assert_eq!(ahead, replay);
        assert_eq!(b.draw_count(), 37 + 50);
    }

    #[test]
    fn state_bytes_round_trip() {
        let mut a = Xoshiro256::seed_from(3);
        a.next_u64();
        let st = a.state();
        let bytes = st.to_bytes();
        assert_eq!(RngState::from_bytes(&bytes), Some(st));
        assert_eq!(RngState::from_bytes(&bytes[..39]), None);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Xoshiro256::seed_from(6);
        for _ in 0..1_000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_unbiased_enough_and_in_range() {
        let mut rng = Xoshiro256::seed_from(8);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            let x = rng.next_below(7) as usize;
            assert!(x < 7);
            counts[x] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bucket; allow 6 sigma-ish slack.
            assert!((9_300..10_700).contains(&(c as i64 as u32)), "count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256::seed_from(0).next_below(0);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Xoshiro256::seed_from(11);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = rng.next_gaussian();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut rng = Xoshiro256::seed_from(13);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());

        let mut rng2 = Xoshiro256::seed_from(13);
        let mut v2: Vec<u32> = (0..100).collect();
        rng2.shuffle(&mut v2);
        assert_eq!(v, v2);
    }

    #[test]
    fn split_streams_are_independent_and_reproducible() {
        let mut parent = Xoshiro256::seed_from(21);
        let mut child = parent.split();
        let pa: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let ca: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(pa, ca);

        let mut parent2 = Xoshiro256::seed_from(21);
        let mut child2 = parent2.split();
        assert_eq!(ca, (0..8).map(|_| child2.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn sample_cumulative_boundaries() {
        let mut rng = Xoshiro256::seed_from(17);
        let cum = [0.25, 0.5, 1.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[rng.sample_cumulative(&cum)] += 1;
        }
        assert!((counts[0] as f64 / 40_000.0 - 0.25).abs() < 0.02);
        assert!((counts[1] as f64 / 40_000.0 - 0.25).abs() < 0.02);
        assert!((counts[2] as f64 / 40_000.0 - 0.50).abs() < 0.02);
    }

    #[test]
    fn zero_seed_still_works() {
        let mut rng = Xoshiro256::seed_from(0);
        let x = rng.next_u64();
        let y = rng.next_u64();
        assert_ne!(x, y);
    }
}
