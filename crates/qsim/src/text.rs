//! A plain-text circuit format (QASM-flavoured).
//!
//! Circuits are training state too — a run's ansatz must be recorded
//! alongside its parameters for a checkpoint to be self-describing. The
//! binary path uses `serde`; this module adds a stable *human-readable*
//! rendering for logs, diffs and interop:
//!
//! ```text
//! qreg 3
//! h q0
//! cx q0 q1
//! ry(0.5) q2          # fixed angle
//! rz($4) q1           # angle = params[4]
//! rzz($2*0.5) q1 q2   # angle = 0.5 · params[2]
//! ```
//!
//! One op per line; `#` starts a comment; gate names are lowercase.

use crate::circuit::{Circuit, Op, ParamRef};
use crate::gate::Gate;

/// Parse failure with line context.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub detail: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for ParseError {}

fn gate_name(gate: &Gate) -> &'static str {
    match gate {
        Gate::I => "id",
        Gate::X => "x",
        Gate::Y => "y",
        Gate::Z => "z",
        Gate::H => "h",
        Gate::S => "s",
        Gate::Sdg => "sdg",
        Gate::T => "t",
        Gate::Tdg => "tdg",
        Gate::Sx => "sx",
        Gate::Sxdg => "sxdg",
        Gate::Rx(_) => "rx",
        Gate::Ry(_) => "ry",
        Gate::Rz(_) => "rz",
        Gate::Phase(_) => "p",
        Gate::U3(..) => "u3",
        Gate::Cx => "cx",
        Gate::Cy => "cy",
        Gate::Cz => "cz",
        Gate::Cphase(_) => "cp",
        Gate::Crz(_) => "crz",
        Gate::Swap => "swap",
        Gate::Rxx(_) => "rxx",
        Gate::Ryy(_) => "ryy",
        Gate::Rzz(_) => "rzz",
    }
}

/// Renders a circuit to the text format.
///
/// `U3` gates with symbolic first angles render their fixed φ/λ inline.
pub fn to_text(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!("qreg {}\n", circuit.num_qubits()));
    for op in circuit.ops() {
        let name = gate_name(&op.gate);
        let angle = match (&op.param, &op.gate) {
            (None, Gate::U3(t, p, l)) => format!("({t},{p},{l})"),
            (None, g) if g.is_parametrized() => {
                // Parametrized gate carrying a baked-in angle.
                match g {
                    Gate::Rx(v)
                    | Gate::Ry(v)
                    | Gate::Rz(v)
                    | Gate::Phase(v)
                    | Gate::Cphase(v)
                    | Gate::Crz(v)
                    | Gate::Rxx(v)
                    | Gate::Ryy(v)
                    | Gate::Rzz(v) => format!("({v})"),
                    _ => String::new(),
                }
            }
            (None, _) => String::new(),
            (Some(ParamRef::Fixed(v)), _) => format!("({v})"),
            (Some(ParamRef::Sym { index, scale }), _) => {
                if (*scale - 1.0).abs() < f64::EPSILON {
                    format!("(${index})")
                } else {
                    format!("(${index}*{scale})")
                }
            }
        };
        let qubits: Vec<String> = op.qubits.iter().map(|q| format!("q{q}")).collect();
        out.push_str(&format!("{name}{angle} {}\n", qubits.join(" ")));
    }
    out
}

fn parse_gate(name: &str, angle: Option<f64>) -> Option<Gate> {
    let a = angle.unwrap_or(0.0);
    Some(match name {
        "id" => Gate::I,
        "x" => Gate::X,
        "y" => Gate::Y,
        "z" => Gate::Z,
        "h" => Gate::H,
        "s" => Gate::S,
        "sdg" => Gate::Sdg,
        "t" => Gate::T,
        "tdg" => Gate::Tdg,
        "sx" => Gate::Sx,
        "sxdg" => Gate::Sxdg,
        "rx" => Gate::Rx(a),
        "ry" => Gate::Ry(a),
        "rz" => Gate::Rz(a),
        "p" => Gate::Phase(a),
        "cx" => Gate::Cx,
        "cy" => Gate::Cy,
        "cz" => Gate::Cz,
        "cp" => Gate::Cphase(a),
        "crz" => Gate::Crz(a),
        "swap" => Gate::Swap,
        "rxx" => Gate::Rxx(a),
        "ryy" => Gate::Ryy(a),
        "rzz" => Gate::Rzz(a),
        _ => return None,
    })
}

/// Parses the text format back into a circuit.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line.
pub fn from_text(text: &str) -> Result<Circuit, ParseError> {
    let mut circuit: Option<Circuit> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let fail = |detail: String| ParseError { line, detail };
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut tokens = content.split_whitespace();
        let head = tokens.next().expect("non-empty");

        if head == "qreg" {
            if circuit.is_some() {
                return Err(fail("duplicate qreg declaration".into()));
            }
            let n: usize = tokens
                .next()
                .ok_or_else(|| fail("qreg needs a size".into()))?
                .parse()
                .map_err(|_| fail("bad qreg size".into()))?;
            if tokens.next().is_some() {
                return Err(fail("trailing tokens after qreg".into()));
            }
            circuit = Some(Circuit::new(n));
            continue;
        }

        let circuit = circuit
            .as_mut()
            .ok_or_else(|| fail("gate before qreg declaration".into()))?;

        // Split "name(...)" into name + angle expression.
        let (name, angle_expr) = match head.find('(') {
            None => (head, None),
            Some(open) => {
                if !head.ends_with(')') {
                    return Err(fail(format!("unterminated angle in '{head}'")));
                }
                (&head[..open], Some(&head[open + 1..head.len() - 1]))
            }
        };

        // Operand qubits.
        let mut qubits = Vec::new();
        for tok in tokens {
            let idx = tok
                .strip_prefix('q')
                .ok_or_else(|| fail(format!("operand '{tok}' must look like q<N>")))?;
            qubits.push(
                idx.parse::<usize>()
                    .map_err(|_| fail(format!("bad qubit index '{tok}'")))?,
            );
        }

        // u3 has a 3-angle fixed form only.
        if name == "u3" {
            let expr = angle_expr.ok_or_else(|| fail("u3 needs three angles".into()))?;
            let parts: Vec<&str> = expr.split(',').collect();
            if parts.len() != 3 {
                return Err(fail("u3 needs exactly three angles".into()));
            }
            let mut vals = [0.0f64; 3];
            for (v, p) in vals.iter_mut().zip(&parts) {
                *v = p
                    .trim()
                    .parse()
                    .map_err(|_| fail(format!("bad angle '{p}'")))?;
            }
            circuit.push_fixed(Gate::U3(vals[0], vals[1], vals[2]), &qubits);
            validate_last(circuit, line)?;
            continue;
        }

        match angle_expr {
            None => {
                let gate =
                    parse_gate(name, None).ok_or_else(|| fail(format!("unknown gate '{name}'")))?;
                if gate.is_parametrized() {
                    return Err(fail(format!("gate '{name}' needs an angle")));
                }
                circuit.push_fixed(gate, &qubits);
            }
            Some(expr) if expr.starts_with('$') => {
                // "$index" or "$index*scale"
                let body = &expr[1..];
                let (index_str, scale) = match body.split_once('*') {
                    None => (body, 1.0),
                    Some((i, s)) => (
                        i,
                        s.trim()
                            .parse::<f64>()
                            .map_err(|_| fail(format!("bad scale '{s}'")))?,
                    ),
                };
                let index: usize = index_str
                    .trim()
                    .parse()
                    .map_err(|_| fail(format!("bad parameter index '{index_str}'")))?;
                let gate = parse_gate(name, Some(0.0))
                    .ok_or_else(|| fail(format!("unknown gate '{name}'")))?;
                if !gate.is_parametrized() {
                    return Err(fail(format!("gate '{name}' takes no angle")));
                }
                circuit.push_sym_scaled(gate, &qubits, index, scale);
            }
            Some(expr) => {
                let v: f64 = expr
                    .trim()
                    .parse()
                    .map_err(|_| fail(format!("bad angle '{expr}'")))?;
                let gate = parse_gate(name, Some(v))
                    .ok_or_else(|| fail(format!("unknown gate '{name}'")))?;
                if !gate.is_parametrized() {
                    return Err(fail(format!("gate '{name}' takes no angle")));
                }
                circuit.push_fixed(gate, &qubits);
            }
        }
        validate_last(circuit, line)?;
    }
    circuit.ok_or(ParseError {
        line: 0,
        detail: "missing qreg declaration".into(),
    })
}

fn validate_last(circuit: &Circuit, line: usize) -> Result<(), ParseError> {
    let op: &Op = circuit.ops().last().expect("just pushed");
    if op.qubits.len() != op.gate.arity() {
        return Err(ParseError {
            line,
            detail: format!(
                "gate {} expects {} operands, got {}",
                op.gate,
                op.gate.arity(),
                op.qubits.len()
            ),
        });
    }
    for &q in &op.qubits {
        if q >= circuit.num_qubits() {
            return Err(ParseError {
                line,
                detail: format!("qubit q{q} out of range"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let mut c = Circuit::new(3);
        c.push_fixed(Gate::H, &[0]);
        c.push_fixed(Gate::Cx, &[0, 1]);
        c.push_fixed(Gate::Ry(0.5), &[2]);
        c.push_sym(Gate::Rz(0.0), &[1], 4);
        c.push_sym_scaled(Gate::Rzz(0.0), &[1, 2], 2, 0.5);
        c.push_fixed(Gate::U3(0.1, 0.2, 0.3), &[0]);
        c.push_fixed(Gate::Tdg, &[2]);

        let text = to_text(&c);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed.num_qubits(), 3);
        assert_eq!(parsed.len(), c.len());
        // Semantics round-trip: identical states for identical params.
        let params = [0.0, 0.0, 1.3, 0.0, -0.7];
        let a = c.run(&params).unwrap();
        let b = parsed.run(&params).unwrap();
        assert!((a.fidelity(&b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn text_shape_is_stable() {
        let mut c = Circuit::new(2);
        c.push_fixed(Gate::H, &[0]);
        c.push_sym(Gate::Ry(0.0), &[1], 0);
        let text = to_text(&c);
        assert_eq!(text, "qreg 2\nh q0\nry($0) q1\n");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# a comment\nqreg 2\n\nh q0   # trailing comment\ncx q0 q1\n";
        let c = from_text(text).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn parse_errors_name_the_line() {
        let cases = [
            ("h q0\n", "before qreg"),
            ("qreg 2\nfrobnicate q0\n", "unknown gate"),
            ("qreg 2\nrx q0\n", "needs an angle"),
            ("qreg 2\nh(0.5) q0\n", "takes no angle"),
            ("qreg 2\ncx q0\n", "expects 2 operands"),
            ("qreg 2\nh q5\n", "out of range"),
            ("qreg 2\nh x0\n", "must look like"),
            ("qreg 2\nrx(abc) q0\n", "bad angle"),
            ("qreg 2\nrx($a) q0\n", "bad parameter index"),
            ("qreg 2\nqreg 3\n", "duplicate"),
            ("# nothing\n", "missing qreg"),
            ("qreg 2\nu3(1,2) q0\n", "exactly three"),
        ];
        for (text, expected) in cases {
            let err = from_text(text).unwrap_err();
            assert!(
                err.to_string().contains(expected),
                "{text:?} → {err} (wanted {expected})"
            );
        }
    }

    #[test]
    fn scaled_symbol_round_trips() {
        let text = "qreg 1\nry($3*0.25) q0\n";
        let c = from_text(text).unwrap();
        assert_eq!(c.num_params(), 4);
        let rendered = to_text(&c);
        assert_eq!(rendered, text);
    }

    #[test]
    fn all_gates_survive_round_trip() {
        let mut c = Circuit::new(3);
        for g in [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Sxdg,
        ] {
            c.push_fixed(g, &[0]);
        }
        for g in [
            Gate::Rx(0.1),
            Gate::Ry(0.2),
            Gate::Rz(0.3),
            Gate::Phase(0.4),
        ] {
            c.push_fixed(g, &[1]);
        }
        for g in [Gate::Cx, Gate::Cy, Gate::Cz, Gate::Swap] {
            c.push_fixed(g, &[0, 2]);
        }
        for g in [
            Gate::Cphase(0.5),
            Gate::Crz(0.6),
            Gate::Rxx(0.7),
            Gate::Ryy(0.8),
            Gate::Rzz(0.9),
        ] {
            c.push_fixed(g, &[1, 2]);
        }
        let parsed = from_text(&to_text(&c)).unwrap();
        let a = c.run(&[]).unwrap();
        let b = parsed.run(&[]).unwrap();
        assert!((a.fidelity(&b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ansatz_sized_circuit_round_trips() {
        // A realistic parametrized circuit shape.
        let mut c = Circuit::new(4);
        let mut p = 0;
        for _ in 0..3 {
            for q in 0..4 {
                c.push_sym(Gate::Ry(0.0), &[q], p);
                p += 1;
            }
            for q in 0..4 {
                c.push_fixed(Gate::Cx, &[q, (q + 1) % 4]);
            }
        }
        let parsed = from_text(&to_text(&c)).unwrap();
        assert_eq!(parsed.num_params(), c.num_params());
        let params: Vec<f64> = (0..p).map(|i| 0.1 * i as f64).collect();
        let a = c.run(&params).unwrap();
        let b = parsed.run(&params).unwrap();
        assert!((a.fidelity(&b).unwrap() - 1.0).abs() < 1e-12);
    }
}
