//! Parametrized quantum circuits.
//!
//! A [`Circuit`] is a serializable list of operations over a fixed-width
//! qubit register. Gate angles may be fixed constants or symbolic references
//! into an external parameter vector ([`ParamRef::Sym`]); binding a parameter
//! vector yields a concrete state evolution. Circuits-as-data is load-bearing
//! for the checkpointing story: the circuit itself is part of the training
//! state inventory and must round-trip byte-exactly.

use serde::{Deserialize, Serialize};

use crate::complex::Complex64;
use crate::gate::{Gate, Matrix2, Matrix4};
use crate::state::{StateError, StateVector};

/// 2×2 complex matrix product `a · b`.
pub(crate) fn mat2_mul(a: &Matrix2, b: &Matrix2) -> Matrix2 {
    let mut out = [[Complex64::ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

/// Whether a 2×2 matrix is diagonal.
pub(crate) fn is_diag2(m: &Matrix2) -> bool {
    m[0][1] == Complex64::ZERO && m[1][0] == Complex64::ZERO
}

/// Whether a 4×4 matrix has any row with more than one non-zero entry
/// (i.e. it will take the dense kernel anyway).
pub(crate) fn is_dense4(m: &Matrix4) -> bool {
    m.iter()
        .any(|row| row.iter().filter(|c| **c != Complex64::ZERO).count() > 1)
}

/// Whether every entry of a 4×4 matrix is exactly zero or exactly one —
/// the gate is a pure amplitude permutation (`Cx`, `Swap`, `Cx·Swap`
/// products). Pending 1q factors are never folded into such gates: the
/// plan scheduler defers coefficient-free gates as composed index maps
/// (see `plan`), so both executors instead flush the pending product as
/// its own 1q sweep — identical arithmetic, and the permutation stays
/// free to fuse.
pub(crate) fn is_unit_perm4(m: &Matrix4) -> bool {
    let mut units = 0usize;
    for row in m {
        for e in row {
            if *e == Complex64::ZERO {
                continue;
            }
            if e.re != 1.0 || e.im != 0.0 {
                return false;
            }
            units += 1;
        }
    }
    // Unitary + all entries in {0, 1} forces one unit per row/column.
    units == 4
}

/// Folds a pending single-qubit matrix into a 4×4 gate matrix:
/// `m · (p on operand bit)` where `bit` is 0 for the first operand and 1
/// for the second (matching the [`crate::gate::Matrix4`] basis convention).
#[allow(clippy::needless_range_loop)] // k is a basis bit pattern, not a position
pub(crate) fn mat4_fold1q(m: &Matrix4, p: &Matrix2, bit: usize) -> Matrix4 {
    let mut out = [[Complex64::ZERO; 4]; 4];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            // kron(P on `bit`, I elsewhere)[k][j]
            let mut acc = Complex64::ZERO;
            for k in 0..4 {
                let (kb, jb) = ((k >> bit) & 1, (j >> bit) & 1);
                let other_equal = (k & !(1 << bit)) == (j & !(1 << bit));
                if other_equal {
                    acc += m[i][k] * p[kb][jb];
                }
            }
            *cell = acc;
        }
    }
    out
}

/// A gate angle: fixed, or a (possibly scaled) reference into a parameter
/// vector.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ParamRef {
    /// A constant angle baked into the circuit.
    Fixed(f64),
    /// `scale * params[index]`; the parameter-shift rule differentiates
    /// through these.
    Sym {
        /// Index into the bound parameter vector.
        index: usize,
        /// Multiplier applied to the bound value.
        scale: f64,
    },
}

impl ParamRef {
    /// A plain symbolic reference with unit scale.
    pub fn sym(index: usize) -> Self {
        ParamRef::Sym { index, scale: 1.0 }
    }

    /// Resolves the angle against a parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if a symbolic index is out of range (circuit/parameter-vector
    /// mismatch is a programming error, validated by [`Circuit::validate`]).
    pub fn resolve(&self, params: &[f64]) -> f64 {
        match *self {
            ParamRef::Fixed(v) => v,
            ParamRef::Sym { index, scale } => scale * params[index],
        }
    }
}

/// One operation in a circuit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Op {
    /// Gate kind; for parametrized gates the embedded angle is a placeholder
    /// that is overridden by `param` at execution time.
    pub gate: Gate,
    /// Operand qubits (1 or 2 entries).
    pub qubits: Vec<usize>,
    /// Angle source for parametrized gates; `None` for fixed gates.
    pub param: Option<ParamRef>,
}

/// Errors raised while validating or executing circuits.
#[derive(Clone, Debug, PartialEq)]
pub enum CircuitError {
    /// An operation refers to a qubit outside the register.
    QubitOutOfRange {
        /// Index of the offending op.
        op_index: usize,
        /// The offending qubit.
        qubit: usize,
        /// Register width.
        num_qubits: usize,
    },
    /// A symbolic parameter index is not covered by the parameter vector.
    ParamOutOfRange {
        /// Index of the offending op.
        op_index: usize,
        /// The symbolic index.
        param_index: usize,
        /// Provided parameter-vector length.
        num_params: usize,
    },
    /// Operand count does not match gate arity.
    ArityMismatch {
        /// Index of the offending op.
        op_index: usize,
        /// Expected operand count.
        expected: usize,
        /// Provided operand count.
        got: usize,
    },
    /// Underlying state error during execution.
    State(StateError),
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::QubitOutOfRange {
                op_index,
                qubit,
                num_qubits,
            } => write!(
                f,
                "op {op_index}: qubit {qubit} out of range for {num_qubits}-qubit circuit"
            ),
            CircuitError::ParamOutOfRange {
                op_index,
                param_index,
                num_params,
            } => write!(
                f,
                "op {op_index}: parameter index {param_index} out of range (have {num_params})"
            ),
            CircuitError::ArityMismatch {
                op_index,
                expected,
                got,
            } => write!(f, "op {op_index}: expected {expected} operands, got {got}"),
            CircuitError::State(e) => write!(f, "state error: {e}"),
        }
    }
}

impl std::error::Error for CircuitError {}

impl From<StateError> for CircuitError {
    fn from(e: StateError) -> Self {
        CircuitError::State(e)
    }
}

/// A serializable, parametrized quantum circuit.
///
/// # Examples
///
/// ```
/// use qsim::circuit::Circuit;
/// use qsim::gate::Gate;
///
/// let mut c = Circuit::new(2);
/// c.push_fixed(Gate::H, &[0]);
/// c.push_sym(Gate::Ry(0.0), &[1], 0); // angle = params[0]
/// c.push_fixed(Gate::Cx, &[0, 1]);
///
/// let psi = c.run(&[std::f64::consts::PI]).unwrap();
/// assert_eq!(psi.num_qubits(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Op>,
    num_params: usize,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            ops: Vec::new(),
            num_params: 0,
        }
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of distinct symbolic parameters referenced (1 + max index).
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the circuit contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operation list.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Appends a fixed (non-symbolic) gate.
    pub fn push_fixed(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        self.ops.push(Op {
            gate,
            qubits: qubits.to_vec(),
            param: None,
        });
        self
    }

    /// Appends a gate whose angle is `params[param_index]`.
    pub fn push_sym(&mut self, gate: Gate, qubits: &[usize], param_index: usize) -> &mut Self {
        self.push_sym_scaled(gate, qubits, param_index, 1.0)
    }

    /// Appends a gate whose angle is `scale * params[param_index]`.
    pub fn push_sym_scaled(
        &mut self,
        gate: Gate,
        qubits: &[usize],
        param_index: usize,
        scale: f64,
    ) -> &mut Self {
        self.ops.push(Op {
            gate,
            qubits: qubits.to_vec(),
            param: Some(ParamRef::Sym {
                index: param_index,
                scale,
            }),
        });
        self.num_params = self.num_params.max(param_index + 1);
        self
    }

    /// Appends all operations of `other` (qubit indices unchanged), merging
    /// parameter spaces by offsetting `other`'s symbolic indices by
    /// `param_offset`.
    pub fn extend_offset(&mut self, other: &Circuit, param_offset: usize) {
        for op in &other.ops {
            let param = op.param.map(|p| match p {
                ParamRef::Fixed(v) => ParamRef::Fixed(v),
                ParamRef::Sym { index, scale } => ParamRef::Sym {
                    index: index + param_offset,
                    scale,
                },
            });
            self.ops.push(Op {
                gate: op.gate,
                qubits: op.qubits.clone(),
                param,
            });
        }
        self.num_params = self.num_params.max(other.num_params + param_offset);
        self.num_qubits = self.num_qubits.max(other.num_qubits);
    }

    /// Indices of ops that reference symbolic parameters, with the parameter
    /// index each one reads. Used by the parameter-shift differentiator.
    pub fn sym_ops(&self) -> Vec<(usize, usize)> {
        self.ops
            .iter()
            .enumerate()
            .filter_map(|(i, op)| match op.param {
                Some(ParamRef::Sym { index, .. }) => Some((i, index)),
                _ => None,
            })
            .collect()
    }

    /// Gate-count statistics: (single-qubit gates, two-qubit gates).
    pub fn gate_counts(&self) -> (usize, usize) {
        let mut one = 0;
        let mut two = 0;
        for op in &self.ops {
            match op.gate.arity() {
                1 => one += 1,
                _ => two += 1,
            }
        }
        (one, two)
    }

    /// Validates all ops against the register width and `num_params`.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found.
    pub fn validate(&self, num_params: usize) -> Result<(), CircuitError> {
        for (i, op) in self.ops.iter().enumerate() {
            let expected = op.gate.arity();
            if op.qubits.len() != expected {
                return Err(CircuitError::ArityMismatch {
                    op_index: i,
                    expected,
                    got: op.qubits.len(),
                });
            }
            for &q in &op.qubits {
                if q >= self.num_qubits {
                    return Err(CircuitError::QubitOutOfRange {
                        op_index: i,
                        qubit: q,
                        num_qubits: self.num_qubits,
                    });
                }
            }
            if let Some(ParamRef::Sym { index, .. }) = op.param {
                if index >= num_params {
                    return Err(CircuitError::ParamOutOfRange {
                        op_index: i,
                        param_index: index,
                        num_params,
                    });
                }
            }
        }
        Ok(())
    }

    /// Executes the circuit on `|0…0⟩` with the given parameter binding.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] if validation or gate application fails.
    pub fn run(&self, params: &[f64]) -> Result<StateVector, CircuitError> {
        let mut state = StateVector::zero_state(self.num_qubits);
        self.run_on(&mut state, params)?;
        Ok(state)
    }

    /// Executes the circuit on an existing state in place.
    ///
    /// This is a thin wrapper over the executor selected by
    /// [`crate::plan::ExecMode`] (`QSIM_EXEC`, default `plan`):
    ///
    /// * **plan** — compile → bind → tiled execution through
    ///   [`Circuit::compile`] (see [`crate::plan`]). Loops that run the
    ///   same circuit repeatedly should compile once and reuse the
    ///   [`crate::plan::ExecPlan`] instead of calling this.
    /// * **interp** — the historical fused op-by-op interpreter.
    ///
    /// Both executors fuse identically: consecutive single-qubit gates
    /// compose into one 2×2 matrix per qubit (applied lazily), and
    /// pending diagonal factors fold into the next two-qubit gate on
    /// their wire — halving the number of full passes over the `2^n`
    /// amplitudes for rotation-layer + entangler circuits. Fusion
    /// decisions depend only on the circuit and parameters, so results
    /// are bit-identical across executors and thread counts.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] if validation or gate application fails.
    pub fn run_on(&self, state: &mut StateVector, params: &[f64]) -> Result<(), CircuitError> {
        if crate::plan::ExecMode::current() == crate::plan::ExecMode::Plan {
            // No separate validate: compile checks structure and bind
            // checks the parameter vector, surfacing the same errors.
            return self.compile()?.run_on(state, params);
        }
        self.validate(params.len())?;
        self.run_fused(state, |_, op| match op.param {
            Some(p) => op.gate.with_param(p.resolve(params)),
            None => op.gate,
        })
    }

    /// Shared fused executor behind [`Circuit::run_on`] and
    /// [`Circuit::run_on_with_op_shift`]; `gate_at` resolves the concrete
    /// gate for each op.
    fn run_fused(
        &self,
        state: &mut StateVector,
        mut gate_at: impl FnMut(usize, &Op) -> Gate,
    ) -> Result<(), CircuitError> {
        // The state may be narrower than the circuit declares; gate
        // application bypasses `apply_gate`'s per-op validation, so check
        // every operand against the actual register width up front (the
        // historical behavior errored on the first out-of-range op).
        let width = state.num_qubits();
        for op in &self.ops {
            for &q in &op.qubits {
                if q >= width {
                    return Err(CircuitError::State(StateError::QubitOutOfRange {
                        qubit: q,
                        num_qubits: width,
                    }));
                }
            }
        }
        // Pending 1q work per qubit, kept factored as `diag · dense`
        // (`dense` applies first). The factoring preserves the cheap
        // structure of each half: the dense factor of a rotation layer
        // (`Ry` — usually all-real) flushes through the specialized real
        // kernel, while the diagonal factor (`Rz`) folds into the next
        // *arithmetic* two-qubit gate by column scaling. Pure-permutation
        // gates (`Cx`, `Swap`) never receive folds — the pending product
        // flushes as its own sweep so the permutation stays
        // coefficient-free and the plan scheduler can defer it as a
        // composed index map (bit-identical either way; see `plan`).
        let mut dense: Vec<Option<Matrix2>> = vec![None; self.num_qubits];
        let mut diag: Vec<Option<Matrix2>> = vec![None; self.num_qubits];
        for (i, op) in self.ops.iter().enumerate() {
            let gate = gate_at(i, op);
            match gate.arity() {
                1 => {
                    let q = op.qubits[0];
                    let m = gate.matrix2();
                    if is_diag2(&m) {
                        diag[q] = Some(match diag[q] {
                            Some(prev) => mat2_mul(&m, &prev),
                            None => m,
                        });
                    } else {
                        // A dense gate after a diagonal factor collapses the
                        // whole pending product into one dense factor.
                        let m = match diag[q].take() {
                            Some(g) => mat2_mul(&m, &g),
                            None => m,
                        };
                        dense[q] = Some(match dense[q] {
                            Some(prev) => mat2_mul(&m, &prev),
                            None => m,
                        });
                    }
                }
                _ => {
                    let (a, b) = (op.qubits[0], op.qubits[1]);
                    if a == b {
                        return Err(CircuitError::State(StateError::DuplicateQubits(a)));
                    }
                    let mut m4 = gate.matrix4();
                    let dense4 = is_dense4(&m4);
                    let pure_perm = is_unit_perm4(&m4);
                    for (q, bit) in [(a, 0usize), (b, 1usize)] {
                        match (dense[q].take(), diag[q].take()) {
                            (Some(d), g) => {
                                if dense4 {
                                    // The 2q kernel is dense anyway: fold
                                    // the whole pending product in for free.
                                    let whole = match g {
                                        Some(g) => mat2_mul(&g, &d),
                                        None => d,
                                    };
                                    m4 = mat4_fold1q(&m4, &whole, bit);
                                } else if pure_perm {
                                    // Keep pure permutations coefficient-free
                                    // (fusable): flush the pending product as
                                    // one 1q sweep instead of folding.
                                    let whole = match g {
                                        Some(g) => mat2_mul(&g, &d),
                                        None => d,
                                    };
                                    state.apply_matrix2(&whole, q);
                                } else {
                                    state.apply_matrix2(&d, q);
                                    if let Some(g) = g {
                                        m4 = mat4_fold1q(&m4, &g, bit);
                                    }
                                }
                            }
                            (None, Some(g)) => {
                                if pure_perm {
                                    state.apply_matrix2(&g, q);
                                } else {
                                    m4 = mat4_fold1q(&m4, &g, bit);
                                }
                            }
                            (None, None) => {}
                        }
                    }
                    state.apply_matrix4(&m4, a, b);
                }
            }
        }
        for q in 0..self.num_qubits {
            match (dense[q].take(), diag[q].take()) {
                (Some(d), Some(g)) => state.apply_matrix2(&mat2_mul(&g, &d), q),
                (Some(d), None) => state.apply_matrix2(&d, q),
                (None, Some(g)) => state.apply_matrix2(&g, q),
                (None, None) => {}
            }
        }
        Ok(())
    }

    /// Executes the circuit with a single parameter shifted by `delta`
    /// (convenience for the parameter-shift rule).
    ///
    /// # Errors
    ///
    /// Propagates [`Circuit::run`] errors; `param_index` out of range of
    /// `params` is a [`CircuitError::ParamOutOfRange`].
    pub fn run_shifted(
        &self,
        params: &[f64],
        param_index: usize,
        delta: f64,
    ) -> Result<StateVector, CircuitError> {
        if param_index >= params.len() {
            return Err(CircuitError::ParamOutOfRange {
                op_index: usize::MAX,
                param_index,
                num_params: params.len(),
            });
        }
        let mut shifted = params.to_vec();
        shifted[param_index] += delta;
        self.run(&shifted)
    }

    /// Executes the circuit with the angle of the single operation at
    /// `op_index` offset by `delta` (the op-level primitive behind the
    /// generalized parameter-shift rule, correct even when several ops share
    /// one parameter).
    ///
    /// # Errors
    ///
    /// Fails when `op_index` does not refer to a parametrized op, or on any
    /// [`Circuit::run`] error.
    pub fn run_with_op_shift(
        &self,
        params: &[f64],
        op_index: usize,
        delta: f64,
    ) -> Result<StateVector, CircuitError> {
        let op = self.ops.get(op_index).ok_or(CircuitError::ArityMismatch {
            op_index,
            expected: 0,
            got: 0,
        })?;
        if op.param.is_none() {
            return Err(CircuitError::ArityMismatch {
                op_index,
                expected: 1,
                got: 0,
            });
        }
        let mut state = StateVector::zero_state(self.num_qubits);
        self.run_on_with_op_shift(&mut state, params, op_index, delta)?;
        Ok(state)
    }

    /// Like [`Circuit::run_with_op_shift`] but evolving an existing state in
    /// place (used when the circuit is preceded by a data-encoding prefix).
    ///
    /// # Errors
    ///
    /// As [`Circuit::run_on`].
    pub fn run_on_with_op_shift(
        &self,
        state: &mut StateVector,
        params: &[f64],
        op_index: usize,
        delta: f64,
    ) -> Result<(), CircuitError> {
        if crate::plan::ExecMode::current() == crate::plan::ExecMode::Plan {
            return self
                .compile()?
                .run_on_with_op_shift(state, params, op_index, delta);
        }
        self.validate(params.len())?;
        self.run_fused(state, |i, op| match op.param {
            Some(p) => {
                let mut angle = p.resolve(params);
                if i == op_index {
                    angle += delta;
                }
                op.gate.with_param(angle)
            }
            None => op.gate,
        })
    }

    /// The adjoint circuit (all gates inverted, order reversed). Symbolic
    /// parameters keep their indices with negated scale.
    pub fn inverse(&self) -> Circuit {
        let mut ops = Vec::with_capacity(self.ops.len());
        for op in self.ops.iter().rev() {
            match op.param {
                None => ops.push(Op {
                    gate: op.gate.inverse(),
                    qubits: op.qubits.clone(),
                    param: None,
                }),
                Some(ParamRef::Fixed(v)) => ops.push(Op {
                    gate: op.gate,
                    qubits: op.qubits.clone(),
                    param: Some(ParamRef::Fixed(-v)),
                }),
                Some(ParamRef::Sym { index, scale }) => ops.push(Op {
                    gate: op.gate,
                    qubits: op.qubits.clone(),
                    param: Some(ParamRef::Sym {
                        index,
                        scale: -scale,
                    }),
                }),
            }
        }
        Circuit {
            num_qubits: self.num_qubits,
            ops,
            num_params: self.num_params,
        }
    }

    /// Rough serialized size in bytes (for the state-inventory table):
    /// each op ≈ gate tag + params + operand list.
    pub fn approx_byte_size(&self) -> usize {
        self.ops
            .iter()
            .map(|op| 8 + 24 + op.qubits.len() * 8 + 17)
            .sum::<usize>()
            + 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;

    const EPS: f64 = 1e-12;

    #[test]
    fn empty_circuit_runs_to_zero_state() {
        let c = Circuit::new(2);
        assert!(c.is_empty());
        let s = c.run(&[]).unwrap();
        assert!((s.probability(0) - 1.0).abs() < EPS);
    }

    #[test]
    fn fixed_gates_execute() {
        let mut c = Circuit::new(2);
        c.push_fixed(Gate::H, &[0]).push_fixed(Gate::Cx, &[0, 1]);
        let s = c.run(&[]).unwrap();
        assert!((s.probability(0b00) - 0.5).abs() < EPS);
        assert!((s.probability(0b11) - 0.5).abs() < EPS);
    }

    #[test]
    fn symbolic_binding_works() {
        let mut c = Circuit::new(1);
        c.push_sym(Gate::Ry(0.0), &[0], 0);
        // RY(π)|0⟩ = |1⟩
        let s = c.run(&[std::f64::consts::PI]).unwrap();
        assert!((s.probability(1) - 1.0).abs() < EPS);
        // RY(0)|0⟩ = |0⟩
        let s = c.run(&[0.0]).unwrap();
        assert!((s.probability(0) - 1.0).abs() < EPS);
    }

    #[test]
    fn scaled_symbols() {
        let mut c = Circuit::new(1);
        c.push_sym_scaled(Gate::Ry(0.0), &[0], 0, 2.0);
        let s = c.run(&[std::f64::consts::FRAC_PI_2]).unwrap();
        assert!((s.probability(1) - 1.0).abs() < EPS);
    }

    #[test]
    fn num_params_tracks_max_index() {
        let mut c = Circuit::new(2);
        c.push_sym(Gate::Rx(0.0), &[0], 3);
        assert_eq!(c.num_params(), 4);
        c.push_sym(Gate::Rz(0.0), &[1], 1);
        assert_eq!(c.num_params(), 4);
    }

    #[test]
    fn missing_params_is_error() {
        let mut c = Circuit::new(1);
        c.push_sym(Gate::Rx(0.0), &[0], 2);
        let err = c.run(&[0.1]).unwrap_err();
        assert!(matches!(
            err,
            CircuitError::ParamOutOfRange { param_index: 2, .. }
        ));
    }

    #[test]
    fn validate_catches_bad_qubits_and_arity() {
        let mut c = Circuit::new(1);
        c.push_fixed(Gate::X, &[1]);
        assert!(matches!(
            c.validate(0),
            Err(CircuitError::QubitOutOfRange { qubit: 1, .. })
        ));

        let mut c2 = Circuit::new(2);
        c2.ops.push(Op {
            gate: Gate::Cx,
            qubits: vec![0],
            param: None,
        });
        assert!(matches!(
            c2.validate(0),
            Err(CircuitError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn inverse_circuit_undoes_forward() {
        let mut c = Circuit::new(3);
        c.push_fixed(Gate::H, &[0]);
        c.push_sym(Gate::Ry(0.0), &[1], 0);
        c.push_fixed(Gate::Cx, &[0, 2]);
        c.push_sym_scaled(Gate::Rzz(0.0), &[1, 2], 1, 0.5);
        c.push_fixed(Gate::T, &[2]);

        let params = [0.63, -1.2];
        let fwd = c.run(&params).unwrap();
        let mut state = fwd.clone();
        c.inverse().run_on(&mut state, &params).unwrap();
        let zero = StateVector::zero_state(3);
        assert!((state.fidelity(&zero).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn extend_offset_merges_parameter_spaces() {
        let mut a = Circuit::new(1);
        a.push_sym(Gate::Rx(0.0), &[0], 0);
        let mut b = Circuit::new(1);
        b.push_sym(Gate::Ry(0.0), &[0], 0);
        a.extend_offset(&b, 1);
        assert_eq!(a.num_params(), 2);
        assert_eq!(a.len(), 2);
        // Both parameters act independently.
        let s = a.run(&[0.0, std::f64::consts::PI]).unwrap();
        assert!((s.probability(1) - 1.0).abs() < EPS);
    }

    #[test]
    fn run_shifted_shifts_one_parameter() {
        let mut c = Circuit::new(1);
        c.push_sym(Gate::Ry(0.0), &[0], 0);
        let base = c.run(&[0.5]).unwrap();
        let shifted = c.run_shifted(&[0.5], 0, 0.25).unwrap();
        let direct = c.run(&[0.75]).unwrap();
        assert!((shifted.fidelity(&direct).unwrap() - 1.0).abs() < EPS);
        assert!(shifted.fidelity(&base).unwrap() < 1.0);
    }

    #[test]
    fn run_shifted_out_of_range() {
        let mut c = Circuit::new(1);
        c.push_sym(Gate::Ry(0.0), &[0], 0);
        assert!(c.run_shifted(&[0.5], 3, 0.1).is_err());
    }

    #[test]
    fn run_with_op_shift_shifts_only_that_op() {
        // Two ops sharing parameter 0; shifting op 1 must not move op 0.
        let mut c = Circuit::new(1);
        c.push_sym(Gate::Ry(0.0), &[0], 0);
        c.push_sym(Gate::Ry(0.0), &[0], 0);
        let shifted = c.run_with_op_shift(&[0.3], 1, 0.2).unwrap();
        let mut reference = Circuit::new(1);
        reference.push_fixed(Gate::Ry(0.3), &[0]);
        reference.push_fixed(Gate::Ry(0.5), &[0]);
        let expected = reference.run(&[]).unwrap();
        assert!((shifted.fidelity(&expected).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn run_with_op_shift_rejects_fixed_ops() {
        let mut c = Circuit::new(1);
        c.push_fixed(Gate::H, &[0]);
        assert!(c.run_with_op_shift(&[], 0, 0.1).is_err());
        assert!(c.run_with_op_shift(&[], 5, 0.1).is_err());
    }

    #[test]
    fn sym_ops_lists_parametrized_positions() {
        let mut c = Circuit::new(2);
        c.push_fixed(Gate::H, &[0]);
        c.push_sym(Gate::Rx(0.0), &[0], 0);
        c.push_fixed(Gate::Cx, &[0, 1]);
        c.push_sym(Gate::Rz(0.0), &[1], 1);
        assert_eq!(c.sym_ops(), vec![(1, 0), (3, 1)]);
    }

    #[test]
    fn gate_counts() {
        let mut c = Circuit::new(2);
        c.push_fixed(Gate::H, &[0]);
        c.push_fixed(Gate::Cx, &[0, 1]);
        c.push_sym(Gate::Ry(0.0), &[1], 0);
        assert_eq!(c.gate_counts(), (2, 1));
    }

    #[test]
    fn run_on_existing_state() {
        let mut c = Circuit::new(1);
        c.push_fixed(Gate::X, &[0]);
        let mut s = StateVector::from_amplitudes(vec![Complex64::ZERO, Complex64::ONE]).unwrap();
        c.run_on(&mut s, &[]).unwrap();
        assert!((s.probability(0) - 1.0).abs() < EPS);
    }

    #[test]
    fn run_on_narrow_state_errors_instead_of_panicking() {
        // The fused executor bypasses apply_gate's per-op validation; a
        // state narrower than the circuit must still surface
        // QubitOutOfRange (regression: the diag index kernel used to panic
        // and other kernels silently no-opped).
        let mut c = Circuit::new(3);
        c.push_fixed(Gate::Rz(0.4), &[2]);
        let mut narrow = StateVector::zero_state(1);
        match c.run_on(&mut narrow, &[]) {
            Err(CircuitError::State(StateError::QubitOutOfRange {
                qubit: 2,
                num_qubits: 1,
            })) => {}
            other => panic!("expected QubitOutOfRange, got {other:?}"),
        }
        let mut c2 = Circuit::new(3);
        c2.push_fixed(Gate::Cx, &[0, 2]);
        assert!(c2.run_on(&mut StateVector::zero_state(2), &[]).is_err());
        // A wider state than the circuit declares keeps working.
        let mut wide = StateVector::zero_state(4);
        c.run_on(&mut wide, &[]).unwrap();
    }

    #[test]
    fn approx_byte_size_is_positive_and_monotone() {
        let mut c = Circuit::new(2);
        let s0 = c.approx_byte_size();
        c.push_fixed(Gate::H, &[0]);
        let s1 = c.approx_byte_size();
        assert!(s1 > s0);
    }
}
