//! Pauli strings and weighted Pauli-sum observables.
//!
//! Observables are what hybrid training loops actually evaluate: a VQE loss
//! is `⟨ψ(θ)|H|ψ(θ)⟩` for a Hamiltonian `H` expressed as a weighted sum of
//! Pauli strings. Expectations can be computed exactly (noiseless analysis,
//! tests) or estimated from sampled shots (see [`crate::measure`]), which is
//! the mode the checkpointing experiments care about because it draws from
//! the serializable RNG stream.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::circuit::Circuit;
use crate::complex::Complex64;
use crate::gate::Gate;
use crate::state::{StateError, StateVector};

/// A single-qubit Pauli operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A tensor product of single-qubit Paulis over an `n`-qubit register.
///
/// # Examples
///
/// ```
/// use qsim::pauli::{Pauli, PauliString};
///
/// let zz = PauliString::from_str("ZZ").unwrap();
/// assert_eq!(zz.num_qubits(), 2);
/// assert_eq!(zz.weight(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PauliString {
    paulis: Vec<Pauli>,
}

impl PauliString {
    /// The all-identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            paulis: vec![Pauli::I; n],
        }
    }

    /// Builds a string from explicit per-qubit Paulis; index 0 = qubit 0.
    pub fn new(paulis: Vec<Pauli>) -> Self {
        PauliString { paulis }
    }

    /// A string with a single non-identity Pauli at `qubit`.
    pub fn single(n: usize, qubit: usize, p: Pauli) -> Self {
        let mut paulis = vec![Pauli::I; n];
        paulis[qubit] = p;
        PauliString { paulis }
    }

    /// Parses a textual string such as `"XIZ"`. Character 0 acts on qubit 0.
    ///
    /// # Errors
    ///
    /// Returns the offending character on anything outside `IXYZ`.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Result<Self, char> {
        let mut paulis = Vec::with_capacity(s.len());
        for ch in s.chars() {
            paulis.push(match ch {
                'I' | 'i' => Pauli::I,
                'X' | 'x' => Pauli::X,
                'Y' | 'y' => Pauli::Y,
                'Z' | 'z' => Pauli::Z,
                other => return Err(other),
            });
        }
        Ok(PauliString { paulis })
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.paulis.len()
    }

    /// Per-qubit Pauli factors.
    pub fn paulis(&self) -> &[Pauli] {
        &self.paulis
    }

    /// Number of non-identity factors.
    pub fn weight(&self) -> usize {
        self.paulis.iter().filter(|p| **p != Pauli::I).count()
    }

    /// The qubits on which the string acts non-trivially.
    pub fn support(&self) -> Vec<usize> {
        self.paulis
            .iter()
            .enumerate()
            .filter(|(_, p)| **p != Pauli::I)
            .map(|(i, _)| i)
            .collect()
    }

    /// Applies the string to a state (producing `P|ψ⟩`).
    ///
    /// # Errors
    ///
    /// Returns [`StateError::SizeMismatch`] when register widths differ.
    pub fn apply(&self, state: &StateVector) -> Result<StateVector, StateError> {
        if state.num_qubits() != self.num_qubits() {
            return Err(StateError::SizeMismatch {
                left: self.num_qubits(),
                right: state.num_qubits(),
            });
        }
        let mut out = state.clone();
        for (q, p) in self.paulis.iter().enumerate() {
            match p {
                Pauli::I => {}
                Pauli::X => out.apply_matrix2(&Gate::X.matrix2(), q),
                Pauli::Y => out.apply_matrix2(&Gate::Y.matrix2(), q),
                Pauli::Z => out.apply_matrix2(&Gate::Z.matrix2(), q),
            }
        }
        Ok(out)
    }

    /// Exact expectation `⟨ψ|P|ψ⟩` (real because `P` is Hermitian).
    ///
    /// # Errors
    ///
    /// Returns [`StateError::SizeMismatch`] when register widths differ.
    pub fn expectation(&self, state: &StateVector) -> Result<f64, StateError> {
        let applied = self.apply(state)?;
        let ip: Complex64 = state.inner(&applied)?;
        Ok(ip.re)
    }

    /// Circuit of basis rotations mapping this string's eigenbasis to the
    /// computational basis (H for X, S†·H for Y).
    pub fn basis_rotation(&self) -> Circuit {
        let mut c = Circuit::new(self.num_qubits());
        for (q, p) in self.paulis.iter().enumerate() {
            match p {
                Pauli::X => {
                    c.push_fixed(Gate::H, &[q]);
                }
                Pauli::Y => {
                    c.push_fixed(Gate::Sdg, &[q]);
                    c.push_fixed(Gate::H, &[q]);
                }
                _ => {}
            }
        }
        c
    }

    /// Eigenvalue (±1) of this string for a computational-basis outcome,
    /// assuming the basis rotation has been applied.
    pub fn eigenvalue(&self, outcome: usize) -> f64 {
        let mut parity = 0u32;
        for (q, p) in self.paulis.iter().enumerate() {
            if *p != Pauli::I && (outcome >> q) & 1 == 1 {
                parity ^= 1;
            }
        }
        if parity == 0 {
            1.0
        } else {
            -1.0
        }
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.paulis {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// A weighted sum of Pauli strings: `H = Σ_k c_k · P_k`.
///
/// # Examples
///
/// ```
/// use qsim::pauli::{PauliSum, PauliString};
/// use qsim::state::StateVector;
///
/// // H = Z₀ on one qubit; ⟨0|Z|0⟩ = 1.
/// let h = PauliSum::from_terms(vec![(1.0, PauliString::from_str("Z").unwrap())]);
/// let psi = StateVector::zero_state(1);
/// assert!((h.expectation(&psi).unwrap() - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PauliSum {
    num_qubits: usize,
    terms: Vec<(f64, PauliString)>,
}

impl PauliSum {
    /// Builds an observable from `(coefficient, string)` terms.
    ///
    /// # Panics
    ///
    /// Panics if terms have inconsistent register widths or the list is
    /// empty.
    pub fn from_terms(terms: Vec<(f64, PauliString)>) -> Self {
        assert!(!terms.is_empty(), "observable needs at least one term");
        let num_qubits = terms[0].1.num_qubits();
        for (_, t) in &terms {
            assert_eq!(t.num_qubits(), num_qubits, "inconsistent term widths");
        }
        PauliSum { num_qubits, terms }
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The `(coefficient, string)` terms.
    pub fn terms(&self) -> &[(f64, PauliString)] {
        &self.terms
    }

    /// Exact expectation `⟨ψ|H|ψ⟩`.
    ///
    /// Terms are independent, so for multi-term observables on registers of
    /// at least [`crate::state::PARALLEL_MIN_AMPS`] amplitudes each term is
    /// evaluated on its own thread (ambient [`qpar::current_threads`]).
    /// Per-term values are identical to the serial path and are accumulated
    /// in term order, so the result is bit-identical at every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::SizeMismatch`] when register widths differ.
    pub fn expectation(&self, state: &StateVector) -> Result<f64, StateError> {
        let threads = qpar::current_threads();
        if threads > 1
            && self.terms.len() > 1
            && state.amplitudes().len() >= crate::state::PARALLEL_MIN_AMPS
        {
            let per_term: Vec<Result<f64, StateError>> =
                qpar::map_threads(threads, self.terms.iter().collect(), |(c, p)| {
                    // Keep the nested kernels serial on worker threads: the
                    // term fan-out already owns the parallelism budget, and
                    // worker threads would otherwise re-resolve the ambient
                    // thread count and fan out again (threads² workers).
                    qpar::with_threads(1, || Ok(c * p.expectation(state)?))
                });
            let mut acc = 0.0;
            for v in per_term {
                acc += v?;
            }
            return Ok(acc);
        }
        let mut acc = 0.0;
        for (c, p) in &self.terms {
            acc += c * p.expectation(state)?;
        }
        Ok(acc)
    }

    /// Sum of |coefficients| — an upper bound on the spectral norm, used for
    /// shot-budget heuristics.
    pub fn coeff_l1(&self) -> f64 {
        self.terms.iter().map(|(c, _)| c.abs()).sum()
    }

    /// Transverse-field Ising chain Hamiltonian on `n` qubits:
    /// `H = -J Σ Z_i Z_{i+1} - g Σ X_i` (open boundary).
    ///
    /// The workhorse Hamiltonian of the VQE workloads in the evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn transverse_ising(n: usize, j: f64, g: f64) -> Self {
        assert!(n >= 2, "chain needs at least two sites");
        let mut terms = Vec::new();
        for i in 0..n - 1 {
            let mut paulis = vec![Pauli::I; n];
            paulis[i] = Pauli::Z;
            paulis[i + 1] = Pauli::Z;
            terms.push((-j, PauliString::new(paulis)));
        }
        for i in 0..n {
            terms.push((-g, PauliString::single(n, i, Pauli::X)));
        }
        PauliSum::from_terms(terms)
    }

    /// Heisenberg XXZ chain: `H = Σ (X_i X_{i+1} + Y_i Y_{i+1} + Δ Z_i Z_{i+1})`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn heisenberg_xxz(n: usize, delta: f64) -> Self {
        assert!(n >= 2, "chain needs at least two sites");
        let mut terms = Vec::new();
        for i in 0..n - 1 {
            for (p, c) in [(Pauli::X, 1.0), (Pauli::Y, 1.0), (Pauli::Z, delta)] {
                let mut paulis = vec![Pauli::I; n];
                paulis[i] = p;
                paulis[i + 1] = p;
                terms.push((c, PauliString::new(paulis)));
            }
        }
        PauliSum::from_terms(terms)
    }

    /// Single Z on each qubit, averaged — a cheap "magnetization" observable
    /// used by classification heads.
    pub fn mean_z(n: usize) -> Self {
        let terms = (0..n)
            .map(|q| (1.0 / n as f64, PauliString::single(n, q, Pauli::Z)))
            .collect();
        PauliSum::from_terms(terms)
    }
}

impl fmt::Display for PauliSum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (c, p)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}·{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    const EPS: f64 = 1e-12;

    #[test]
    fn parse_and_display() {
        let p = PauliString::from_str("XIZy").unwrap();
        assert_eq!(p.paulis()[0], Pauli::X);
        assert_eq!(p.paulis()[1], Pauli::I);
        assert_eq!(p.paulis()[2], Pauli::Z);
        assert_eq!(p.paulis()[3], Pauli::Y);
        assert_eq!(p.to_string(), "XIZY");
        assert_eq!(PauliString::from_str("XQ").unwrap_err(), 'Q');
    }

    #[test]
    fn weight_and_support() {
        let p = PauliString::from_str("XIZI").unwrap();
        assert_eq!(p.weight(), 2);
        assert_eq!(p.support(), vec![0, 2]);
        assert_eq!(PauliString::identity(3).weight(), 0);
    }

    #[test]
    fn z_expectation_on_basis_states() {
        let z = PauliString::from_str("Z").unwrap();
        assert!((z.expectation(&StateVector::basis_state(1, 0)).unwrap() - 1.0).abs() < EPS);
        assert!((z.expectation(&StateVector::basis_state(1, 1)).unwrap() + 1.0).abs() < EPS);
    }

    #[test]
    fn x_expectation_on_plus_state() {
        let mut s = StateVector::zero_state(1);
        s.apply_gate(Gate::H, &[0]).unwrap();
        let x = PauliString::from_str("X").unwrap();
        assert!((x.expectation(&s).unwrap() - 1.0).abs() < EPS);
        let z = PauliString::from_str("Z").unwrap();
        assert!(z.expectation(&s).unwrap().abs() < EPS);
    }

    #[test]
    fn zz_on_bell_state_is_one() {
        let mut s = StateVector::zero_state(2);
        s.apply_gate(Gate::H, &[0]).unwrap();
        s.apply_gate(Gate::Cx, &[0, 1]).unwrap();
        let zz = PauliString::from_str("ZZ").unwrap();
        assert!((zz.expectation(&s).unwrap() - 1.0).abs() < EPS);
        let xx = PauliString::from_str("XX").unwrap();
        assert!((xx.expectation(&s).unwrap() - 1.0).abs() < EPS);
        // YY on |Φ+⟩ is -1.
        let yy = PauliString::from_str("YY").unwrap();
        assert!((yy.expectation(&s).unwrap() + 1.0).abs() < EPS);
    }

    #[test]
    fn expectation_size_mismatch() {
        let p = PauliString::from_str("Z").unwrap();
        let s = StateVector::zero_state(2);
        assert!(p.expectation(&s).is_err());
    }

    #[test]
    fn eigenvalue_parity() {
        let p = PauliString::from_str("ZIZ").unwrap();
        assert_eq!(p.eigenvalue(0b000), 1.0);
        assert_eq!(p.eigenvalue(0b001), -1.0);
        assert_eq!(p.eigenvalue(0b101), 1.0);
        assert_eq!(p.eigenvalue(0b010), 1.0); // identity position ignored
    }

    #[test]
    fn basis_rotation_diagonalizes_x_and_y() {
        let mut rng = Xoshiro256::seed_from(31);
        for s in ["X", "Y", "XY", "IYX"] {
            let p = PauliString::from_str(s).unwrap();
            let n = p.num_qubits();
            let state = StateVector::random(n, &mut rng);
            let exact = p.expectation(&state).unwrap();
            // Rotate, then evaluate as a Z-type parity expectation.
            let mut rotated = state.clone();
            p.basis_rotation().run_on(&mut rotated, &[]).unwrap();
            let mut est = 0.0;
            for (idx, amp) in rotated.amplitudes().iter().enumerate() {
                est += amp.norm_sqr() * p.eigenvalue(idx);
            }
            assert!((exact - est).abs() < 1e-10, "{s}: {exact} vs {est}");
        }
    }

    #[test]
    fn pauli_sum_linearity() {
        let mut s = StateVector::zero_state(1);
        s.apply_gate(Gate::H, &[0]).unwrap();
        let h = PauliSum::from_terms(vec![
            (0.5, PauliString::from_str("Z").unwrap()),
            (2.0, PauliString::from_str("X").unwrap()),
        ]);
        assert!((h.expectation(&s).unwrap() - 2.0).abs() < EPS);
        assert!((h.coeff_l1() - 2.5).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "inconsistent term widths")]
    fn pauli_sum_rejects_mixed_widths() {
        PauliSum::from_terms(vec![
            (1.0, PauliString::from_str("Z").unwrap()),
            (1.0, PauliString::from_str("ZZ").unwrap()),
        ]);
    }

    #[test]
    fn tfim_ground_state_bounds() {
        // For J=1, g=0 the TFIM ground energy on n sites is -(n-1) and the
        // all-zeros state achieves it.
        let h = PauliSum::transverse_ising(4, 1.0, 0.0);
        let s = StateVector::zero_state(4);
        assert!((h.expectation(&s).unwrap() + 3.0).abs() < EPS);
    }

    #[test]
    fn tfim_transverse_limit() {
        // For J=0, g=1 the ground state is |+⟩^n with energy -n.
        let n = 3;
        let h = PauliSum::transverse_ising(n, 0.0, 1.0);
        let mut s = StateVector::zero_state(n);
        for q in 0..n {
            s.apply_gate(Gate::H, &[q]).unwrap();
        }
        assert!((h.expectation(&s).unwrap() + n as f64).abs() < EPS);
    }

    #[test]
    fn heisenberg_term_count() {
        let h = PauliSum::heisenberg_xxz(4, 0.5);
        assert_eq!(h.terms().len(), 9);
        assert_eq!(h.num_qubits(), 4);
    }

    #[test]
    fn mean_z_on_basis_states() {
        let h = PauliSum::mean_z(2);
        assert!((h.expectation(&StateVector::basis_state(2, 0)).unwrap() - 1.0).abs() < EPS);
        assert!((h.expectation(&StateVector::basis_state(2, 3)).unwrap() + 1.0).abs() < EPS);
        assert!(
            h.expectation(&StateVector::basis_state(2, 1))
                .unwrap()
                .abs()
                < EPS
        );
    }
}
