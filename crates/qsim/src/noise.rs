//! Stochastic (trajectory) noise simulation.
//!
//! NISQ hardware applies noisy channels, not unitaries. The simulator models
//! this with Monte-Carlo unravelling: after each gate, with some probability,
//! a random Pauli error is injected on the operand qubits; readout may flip
//! bits. Averaging trajectories converges to the channel semantics, which
//! the exact [`crate::density`] simulator cross-validates on small registers.
//!
//! Every stochastic choice is drawn from the caller's [`Xoshiro256`], so a
//! checkpointed noise stream resumes exactly.

use serde::{Deserialize, Serialize};

use crate::circuit::{Circuit, CircuitError, ParamRef};
use crate::gate::Gate;
use crate::rng::Xoshiro256;
use crate::state::StateVector;

/// A depolarizing + readout-error noise model.
///
/// `p1`/`p2` are the depolarizing probabilities applied after every single-
/// and two-qubit gate respectively; `readout_flip` is the per-bit
/// classification error applied to sampled outcomes.
///
/// # Examples
///
/// ```
/// use qsim::noise::NoiseModel;
///
/// let nm = NoiseModel::new(1e-3, 1e-2, 0.01).unwrap();
/// assert!(nm.p1() < nm.p2());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    p1: f64,
    p2: f64,
    readout_flip: f64,
}

/// Errors constructing a noise model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InvalidProbability(pub f64);

impl std::fmt::Display for InvalidProbability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "probability {} outside [0, 1]", self.0)
    }
}

impl std::error::Error for InvalidProbability {}

impl NoiseModel {
    /// Creates a model; all probabilities must lie in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbability`] for any argument outside `[0, 1]`.
    pub fn new(p1: f64, p2: f64, readout_flip: f64) -> Result<Self, InvalidProbability> {
        for p in [p1, p2, readout_flip] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(InvalidProbability(p));
            }
        }
        Ok(NoiseModel {
            p1,
            p2,
            readout_flip,
        })
    }

    /// The noiseless model.
    pub fn noiseless() -> Self {
        NoiseModel {
            p1: 0.0,
            p2: 0.0,
            readout_flip: 0.0,
        }
    }

    /// A model resembling 2021-era superconducting hardware
    /// (`p1 = 1.2e-3`, `p2 = 3.14e-2`, 1% readout error), scaled by `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative or scales any probability above 1.
    pub fn calibrated(k: f64) -> Self {
        NoiseModel::new(1.2e-3 * k, 3.14e-2 * k, 1e-2 * k).expect("scale factor out of range")
    }

    /// Single-qubit depolarizing probability.
    pub fn p1(&self) -> f64 {
        self.p1
    }

    /// Two-qubit depolarizing probability.
    pub fn p2(&self) -> f64 {
        self.p2
    }

    /// Readout bit-flip probability.
    pub fn readout_flip(&self) -> f64 {
        self.readout_flip
    }

    /// Whether the model is exactly noiseless.
    pub fn is_noiseless(&self) -> bool {
        self.p1 == 0.0 && self.p2 == 0.0 && self.readout_flip == 0.0
    }

    fn maybe_pauli_error(&self, state: &mut StateVector, q: usize, p: f64, rng: &mut Xoshiro256) {
        if p > 0.0 && rng.next_f64() < p {
            // Uniform choice among X, Y, Z (depolarizing unravelling).
            let which = rng.next_below(3);
            let g = match which {
                0 => Gate::X,
                1 => Gate::Y,
                _ => Gate::Z,
            };
            state.apply_matrix2(&g.matrix2(), q);
        }
    }

    /// Applies post-gate noise for a gate on the given operands.
    pub fn after_gate(&self, state: &mut StateVector, qubits: &[usize], rng: &mut Xoshiro256) {
        let p = if qubits.len() == 1 { self.p1 } else { self.p2 };
        for &q in qubits {
            self.maybe_pauli_error(state, q, p, rng);
        }
    }

    /// Applies readout error to a sampled outcome word.
    pub fn corrupt_readout(
        &self,
        outcome: usize,
        num_qubits: usize,
        rng: &mut Xoshiro256,
    ) -> usize {
        if self.readout_flip == 0.0 {
            return outcome;
        }
        let mut out = outcome;
        for q in 0..num_qubits {
            if rng.next_f64() < self.readout_flip {
                out ^= 1 << q;
            }
        }
        out
    }
}

/// Runs one noisy trajectory of a circuit from `|0…0⟩`.
///
/// # Errors
///
/// Propagates validation/execution errors from the underlying circuit.
pub fn run_trajectory(
    circuit: &Circuit,
    params: &[f64],
    noise: &NoiseModel,
    rng: &mut Xoshiro256,
) -> Result<StateVector, CircuitError> {
    circuit.validate(params.len())?;
    let mut state = StateVector::zero_state(circuit.num_qubits());
    for op in circuit.ops() {
        let gate = match op.param {
            Some(ParamRef::Fixed(v)) => op.gate.with_param(v),
            Some(p @ ParamRef::Sym { .. }) => op.gate.with_param(p.resolve(params)),
            None => op.gate,
        };
        state.apply_gate(gate, &op.qubits)?;
        noise.after_gate(&mut state, &op.qubits, rng);
    }
    Ok(state)
}

/// Estimates an observable expectation under noise by averaging
/// `trajectories` Monte-Carlo runs (exact per-trajectory expectations).
///
/// # Errors
///
/// Propagates circuit/state errors.
pub fn noisy_expectation(
    circuit: &Circuit,
    params: &[f64],
    observable: &crate::pauli::PauliSum,
    noise: &NoiseModel,
    trajectories: u32,
    rng: &mut Xoshiro256,
) -> Result<f64, CircuitError> {
    assert!(trajectories > 0, "need at least one trajectory");
    let mut acc = 0.0;
    for _ in 0..trajectories {
        let state = run_trajectory(circuit, params, noise, rng)?;
        acc += observable.expectation(&state)?;
    }
    Ok(acc / trajectories as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pauli::PauliSum;

    #[test]
    fn construction_validates_probabilities() {
        assert!(NoiseModel::new(0.0, 0.5, 1.0).is_ok());
        assert_eq!(
            NoiseModel::new(-0.1, 0.0, 0.0).unwrap_err(),
            InvalidProbability(-0.1)
        );
        assert_eq!(
            NoiseModel::new(0.0, 1.5, 0.0).unwrap_err(),
            InvalidProbability(1.5)
        );
        assert!(NoiseModel::new(0.0, f64::NAN, 0.0).is_err());
    }

    #[test]
    fn noiseless_model_is_identity() {
        let nm = NoiseModel::noiseless();
        assert!(nm.is_noiseless());
        let mut c = Circuit::new(2);
        c.push_fixed(Gate::H, &[0]);
        c.push_fixed(Gate::Cx, &[0, 1]);
        let mut rng = Xoshiro256::seed_from(0);
        let noisy = run_trajectory(&c, &[], &nm, &mut rng).unwrap();
        let clean = c.run(&[]).unwrap();
        assert!((noisy.fidelity(&clean).unwrap() - 1.0).abs() < 1e-12);
        // No RNG draws in the noiseless path.
        assert_eq!(rng.draw_count(), 0);
    }

    #[test]
    fn full_depolarizing_destroys_z_expectation() {
        // p1 = 1 injects a Pauli after every gate; averaging over X/Y/Z
        // errors on |0⟩ after an identity-like RZ gives <Z> = 1/3·(−1−1+1)… —
        // just check the noisy value moved meaningfully away from clean.
        let mut c = Circuit::new(1);
        c.push_fixed(Gate::Rz(0.0), &[0]);
        let nm = NoiseModel::new(1.0, 0.0, 0.0).unwrap();
        let h = PauliSum::mean_z(1);
        let mut rng = Xoshiro256::seed_from(5);
        let v = noisy_expectation(&c, &[], &h, &nm, 3000, &mut rng).unwrap();
        // Expected: (1/3)(-1) + (1/3)(-1) + (1/3)(+1) = -1/3.
        assert!((v + 1.0 / 3.0).abs() < 0.05, "got {v}");
    }

    #[test]
    fn mild_noise_degrades_bell_fidelity() {
        let mut c = Circuit::new(2);
        c.push_fixed(Gate::H, &[0]);
        c.push_fixed(Gate::Cx, &[0, 1]);
        let clean = c.run(&[]).unwrap();
        let nm = NoiseModel::new(0.05, 0.10, 0.0).unwrap();
        let mut rng = Xoshiro256::seed_from(21);
        let mut fid = 0.0;
        let trials = 2000;
        for _ in 0..trials {
            let s = run_trajectory(&c, &[], &nm, &mut rng).unwrap();
            fid += s.fidelity(&clean).unwrap();
        }
        fid /= trials as f64;
        assert!(fid < 0.999, "noise had no effect: {fid}");
        assert!(fid > 0.5, "noise unexpectedly destructive: {fid}");
    }

    #[test]
    fn readout_corruption_flips_bits() {
        let nm = NoiseModel::new(0.0, 0.0, 1.0).unwrap();
        let mut rng = Xoshiro256::seed_from(3);
        // flip probability 1 → every bit flips.
        assert_eq!(nm.corrupt_readout(0b010, 3, &mut rng), 0b101);
        let nm0 = NoiseModel::noiseless();
        assert_eq!(nm0.corrupt_readout(0b010, 3, &mut rng), 0b010);
    }

    #[test]
    fn trajectories_are_reproducible() {
        let mut c = Circuit::new(2);
        c.push_fixed(Gate::H, &[0]);
        c.push_fixed(Gate::Cx, &[0, 1]);
        let nm = NoiseModel::new(0.2, 0.3, 0.0).unwrap();
        let mut r1 = Xoshiro256::seed_from(8);
        let mut r2 = Xoshiro256::seed_from(8);
        let a = run_trajectory(&c, &[], &nm, &mut r1).unwrap();
        let b = run_trajectory(&c, &[], &nm, &mut r2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn calibrated_scales() {
        let base = NoiseModel::calibrated(1.0);
        let half = NoiseModel::calibrated(0.5);
        assert!((half.p2() - base.p2() / 2.0).abs() < 1e-12);
        assert!(NoiseModel::calibrated(0.0).is_noiseless());
    }
}
