//! Exact density-matrix simulation for small registers.
//!
//! Used as ground truth: the stochastic trajectory noise of
//! [`crate::noise`] must converge to the exact channel semantics computed
//! here. The density matrix costs `4^n` complex numbers, so this simulator
//! is intended for `n ≤ 8` (tests use `n ≤ 4`).

use crate::complex::Complex64;
use crate::gate::{Gate, Matrix2};
use crate::pauli::PauliSum;
use crate::state::{StateError, StateVector};

/// A mixed quantum state `ρ` over `n` qubits, stored row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct DensityMatrix {
    num_qubits: usize,
    dim: usize,
    /// Row-major `dim × dim` entries.
    elems: Vec<Complex64>,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Panics
    ///
    /// Panics for registers above 12 qubits (16 MiB+ of matrix).
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(num_qubits <= 12, "density matrix too large");
        let dim = 1usize << num_qubits;
        let mut elems = vec![Complex64::ZERO; dim * dim];
        elems[0] = Complex64::ONE;
        DensityMatrix {
            num_qubits,
            dim,
            elems,
        }
    }

    /// Builds `|ψ⟩⟨ψ|` from a pure state.
    pub fn from_pure(state: &StateVector) -> Self {
        let dim = state.amplitudes().len();
        let mut elems = vec![Complex64::ZERO; dim * dim];
        for (i, a) in state.amplitudes().iter().enumerate() {
            for (j, b) in state.amplitudes().iter().enumerate() {
                elems[i * dim + j] = *a * b.conj();
            }
        }
        DensityMatrix {
            num_qubits: state.num_qubits(),
            dim,
            elems,
        }
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Matrix entry `ρ[i][j]`.
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        self.elems[i * self.dim + j]
    }

    /// Trace of `ρ` (1 for a valid state).
    pub fn trace(&self) -> Complex64 {
        (0..self.dim).map(|i| self.get(i, i)).sum()
    }

    /// Purity `tr(ρ²)`; 1 for pure states, `1/2ⁿ` for maximally mixed.
    pub fn purity(&self) -> f64 {
        let mut acc = Complex64::ZERO;
        for i in 0..self.dim {
            for j in 0..self.dim {
                acc += self.get(i, j) * self.get(j, i);
            }
        }
        acc.re
    }

    /// Applies `U ρ U†` for a single-qubit unitary on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_matrix2(&mut self, m: &Matrix2, q: usize) {
        assert!(q < self.num_qubits, "qubit out of range");
        let bit = 1usize << q;
        let dim = self.dim;
        // Threshold mirrors qsim::state: below it scoped-thread fan-out
        // costs more than the kernel.
        let threads = if self.elems.len() >= crate::state::PARALLEL_MIN_AMPS {
            qpar::current_threads()
        } else {
            1
        };
        // Left-multiply by U. Row r pairs with row r|bit; flattening a
        // block of 2·bit rows, the first bit·dim elements pair elementwise
        // with the second bit·dim — one contiguous zip per block (cache-
        // friendly, and each block is an independent parallel work item).
        let row_bit = bit * dim;
        let left = |(lo, hi): (&mut [Complex64], &mut [Complex64])| {
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let a0 = *a;
                let a1 = *b;
                *a = m[0][0] * a0 + m[0][1] * a1;
                *b = m[1][0] * a0 + m[1][1] * a1;
            }
        };
        let pairs: Vec<(&mut [Complex64], &mut [Complex64])> = self
            .elems
            .chunks_mut(row_bit << 1)
            .map(|block| block.split_at_mut(row_bit))
            .collect();
        if threads <= 1 {
            pairs.into_iter().for_each(left);
        } else {
            qpar::for_each_threads(threads, pairs, left);
        }
        // Right-multiply by U†: column pairs within each row — rows are
        // independent work items. (ρU†)[r][c] = Σ_k ρ[r][k]·conj(U[c][k]).
        let right = |row: &mut [Complex64]| {
            for block in row.chunks_mut(bit << 1) {
                let (lo, hi) = block.split_at_mut(bit);
                for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                    let a0 = *a;
                    let a1 = *b;
                    *a = a0 * m[0][0].conj() + a1 * m[0][1].conj();
                    *b = a0 * m[1][0].conj() + a1 * m[1][1].conj();
                }
            }
        };
        let rows: Vec<&mut [Complex64]> = self.elems.chunks_mut(dim).collect();
        if threads <= 1 {
            rows.into_iter().for_each(right);
        } else {
            qpar::for_each_threads(threads, rows, right);
        }
    }

    /// Applies a gate (`ρ → U ρ U†`).
    ///
    /// # Errors
    ///
    /// Returns [`StateError::QubitOutOfRange`] or
    /// [`StateError::DuplicateQubits`] on bad operands.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) -> Result<(), StateError> {
        for &q in qubits {
            if q >= self.num_qubits {
                return Err(StateError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        match gate.arity() {
            1 => {
                self.apply_matrix2(&gate.matrix2(), qubits[0]);
                Ok(())
            }
            _ => {
                if qubits[0] == qubits[1] {
                    return Err(StateError::DuplicateQubits(qubits[0]));
                }
                // Two-qubit path: vectorize through columns using the
                // state-vector kernel on each column, then on each row.
                let m = gate.matrix4();
                let qa = qubits[0];
                let qb = qubits[1];
                // U ρ
                let mut new = self.elems.clone();
                let ba = 1usize << qa;
                let bb = 1usize << qb;
                for col in 0..self.dim {
                    for i in 0..self.dim {
                        if i & ba != 0 || i & bb != 0 {
                            continue;
                        }
                        let idx = [i, i | ba, i | bb, i | ba | bb];
                        let vals = idx.map(|r| self.elems[r * self.dim + col]);
                        for (k, &r) in idx.iter().enumerate() {
                            let mut acc = Complex64::ZERO;
                            for (j, v) in vals.iter().enumerate() {
                                acc += m[k][j] * *v;
                            }
                            new[r * self.dim + col] = acc;
                        }
                    }
                }
                // (Uρ) U†
                let src = new.clone();
                for row in 0..self.dim {
                    for i in 0..self.dim {
                        if i & ba != 0 || i & bb != 0 {
                            continue;
                        }
                        let idx = [i, i | ba, i | bb, i | ba | bb];
                        let vals = idx.map(|c| src[row * self.dim + c]);
                        for (k, &c) in idx.iter().enumerate() {
                            let mut acc = Complex64::ZERO;
                            for (j, v) in vals.iter().enumerate() {
                                acc += *v * m[k][j].conj();
                            }
                            new[row * self.dim + c] = acc;
                        }
                    }
                }
                self.elems = new;
                Ok(())
            }
        }
    }

    /// Applies a single-qubit Kraus channel `ρ → Σ_k K_k ρ K_k†` on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range or `kraus` is empty.
    pub fn apply_kraus1(&mut self, kraus: &[Matrix2], q: usize) {
        assert!(!kraus.is_empty(), "empty Kraus set");
        let mut acc = vec![Complex64::ZERO; self.elems.len()];
        for k in kraus {
            let mut branch = self.clone();
            branch.apply_matrix2_nonunitary(k, q);
            for (a, b) in acc.iter_mut().zip(branch.elems) {
                *a += b;
            }
        }
        self.elems = acc;
    }

    /// `ρ → K ρ K†` for a (possibly non-unitary) 2×2 operator.
    fn apply_matrix2_nonunitary(&mut self, m: &Matrix2, q: usize) {
        self.apply_matrix2(m, q);
    }

    /// Depolarizing channel with probability `p` on qubit `q`.
    pub fn depolarize(&mut self, q: usize, p: f64) {
        let sq = |x: f64| Complex64::from_real(x.sqrt());
        let i = Gate::I.matrix2();
        let x = Gate::X.matrix2();
        let y = Gate::Y.matrix2();
        let z = Gate::Z.matrix2();
        let scale = |m: &Matrix2, s: Complex64| -> Matrix2 {
            [[m[0][0] * s, m[0][1] * s], [m[1][0] * s, m[1][1] * s]]
        };
        let kraus = [
            scale(&i, sq(1.0 - p)),
            scale(&x, sq(p / 3.0)),
            scale(&y, sq(p / 3.0)),
            scale(&z, sq(p / 3.0)),
        ];
        self.apply_kraus1(&kraus, q);
    }

    /// Amplitude-damping channel with decay probability `gamma` on qubit `q`.
    pub fn amplitude_damp(&mut self, q: usize, gamma: f64) {
        let k0: Matrix2 = [
            [Complex64::ONE, Complex64::ZERO],
            [Complex64::ZERO, Complex64::from_real((1.0 - gamma).sqrt())],
        ];
        let k1: Matrix2 = [
            [Complex64::ZERO, Complex64::from_real(gamma.sqrt())],
            [Complex64::ZERO, Complex64::ZERO],
        ];
        self.apply_kraus1(&[k0, k1], q);
    }

    /// Exact expectation `tr(ρ H)` of a Pauli-sum observable.
    ///
    /// # Panics
    ///
    /// Panics if register widths differ.
    pub fn expectation(&self, observable: &PauliSum) -> f64 {
        assert_eq!(observable.num_qubits(), self.num_qubits);
        let mut total = 0.0;
        for (coeff, pauli) in observable.terms() {
            // tr(ρ P): apply P to basis vectors implicitly. P maps basis
            // state |j⟩ to phase·|j'⟩; tr(ρP) = Σ_j ⟨j|ρP|j⟩ = Σ_j ρ[j][j''],
            // computed via P's action. Easiest: build P's action per index.
            let mut acc = Complex64::ZERO;
            for j in 0..self.dim {
                let (target, phase) = pauli_action(pauli.paulis(), j);
                // (ρ P)[j][j] = Σ_k ρ[j][k] P[k][j]; P[k][j] nonzero only for
                // k = target(j), with value phase.
                acc += self.get(j, target) * phase;
            }
            total += coeff * acc.re;
        }
        total
    }
}

/// Computes `P|j⟩ = phase · |target⟩` for a Pauli string.
fn pauli_action(paulis: &[crate::pauli::Pauli], j: usize) -> (usize, Complex64) {
    use crate::pauli::Pauli;
    let mut target = j;
    let mut phase = Complex64::ONE;
    for (q, p) in paulis.iter().enumerate() {
        let bit = (j >> q) & 1;
        match p {
            Pauli::I => {}
            Pauli::X => target ^= 1 << q,
            Pauli::Y => {
                target ^= 1 << q;
                // Y|0⟩ = i|1⟩, Y|1⟩ = -i|0⟩
                phase *= if bit == 0 {
                    Complex64::I
                } else {
                    -Complex64::I
                };
            }
            Pauli::Z => {
                if bit == 1 {
                    phase = -phase;
                }
            }
        }
    }
    (target, phase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::noise::{run_trajectory, NoiseModel};
    use crate::pauli::PauliString;
    use crate::rng::Xoshiro256;

    const EPS: f64 = 1e-10;

    #[test]
    fn zero_state_properties() {
        let rho = DensityMatrix::zero_state(2);
        assert!((rho.trace().re - 1.0).abs() < EPS);
        assert!((rho.purity() - 1.0).abs() < EPS);
        assert!(rho.get(0, 0).approx_eq(Complex64::ONE, EPS));
    }

    #[test]
    fn from_pure_matches_statevector_expectations() {
        let mut rng = Xoshiro256::seed_from(2);
        let psi = StateVector::random(3, &mut rng);
        let rho = DensityMatrix::from_pure(&psi);
        let h = PauliSum::transverse_ising(3, 1.0, 0.7);
        let sv = h.expectation(&psi).unwrap();
        let dm = rho.expectation(&h);
        assert!((sv - dm).abs() < EPS, "{sv} vs {dm}");
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        let mut c = Circuit::new(2);
        c.push_fixed(Gate::H, &[0]);
        c.push_fixed(Gate::Cx, &[0, 1]);
        c.push_fixed(Gate::Ry(0.4), &[1]);
        c.push_fixed(Gate::Rzz(0.9), &[0, 1]);

        let psi = c.run(&[]).unwrap();
        let mut rho = DensityMatrix::zero_state(2);
        for op in c.ops() {
            rho.apply_gate(op.gate, &op.qubits).unwrap();
        }
        let h = PauliSum::heisenberg_xxz(2, 0.3);
        assert!((rho.expectation(&h) - h.expectation(&psi).unwrap()).abs() < EPS);
        assert!((rho.purity() - 1.0).abs() < EPS);
        assert!((rho.trace().re - 1.0).abs() < EPS);
    }

    #[test]
    fn depolarizing_reduces_purity_and_preserves_trace() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.depolarize(0, 0.5);
        assert!((rho.trace().re - 1.0).abs() < EPS);
        assert!(rho.purity() < 1.0);
        // Full depolarization of |0⟩: ρ = (1-p)|0⟩⟨0| + p/3(X|0..| + ...)
        // With p = 3/4 this is maximally mixed.
        let mut rho2 = DensityMatrix::zero_state(1);
        rho2.depolarize(0, 0.75);
        assert!((rho2.purity() - 0.5).abs() < EPS);
    }

    #[test]
    fn amplitude_damping_fixed_point() {
        // |1⟩ decays toward |0⟩.
        let mut psi = StateVector::zero_state(1);
        psi.apply_gate(Gate::X, &[0]).unwrap();
        let mut rho = DensityMatrix::from_pure(&psi);
        rho.amplitude_damp(0, 1.0);
        // Fully damped → |0⟩⟨0|.
        assert!(rho.get(0, 0).approx_eq(Complex64::ONE, EPS));
        assert!(rho.get(1, 1).approx_eq(Complex64::ZERO, EPS));
        assert!((rho.trace().re - 1.0).abs() < EPS);
    }

    #[test]
    fn trajectory_average_converges_to_exact_channel() {
        // Circuit: RY(0.8) then depolarizing p. Exact channel vs Monte Carlo.
        let p = 0.2;
        let mut c = Circuit::new(1);
        c.push_fixed(Gate::Ry(0.8), &[0]);

        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_gate(Gate::Ry(0.8), &[0]).unwrap();
        rho.depolarize(0, p);
        let h = PauliSum::mean_z(1);
        let exact = rho.expectation(&h);

        let nm = NoiseModel::new(p, 0.0, 0.0).unwrap();
        let mut rng = Xoshiro256::seed_from(42);
        let trials = 20_000;
        let mut acc = 0.0;
        for _ in 0..trials {
            let s = run_trajectory(&c, &[], &nm, &mut rng).unwrap();
            acc += h.expectation(&s).unwrap();
        }
        let mc = acc / trials as f64;
        assert!((mc - exact).abs() < 0.02, "MC {mc} vs exact {exact}");
    }

    #[test]
    fn two_qubit_gate_on_density_matrix() {
        // Bell state density matrix: check ZZ and XX correlations.
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_gate(Gate::H, &[0]).unwrap();
        rho.apply_gate(Gate::Cx, &[0, 1]).unwrap();
        let zz = PauliSum::from_terms(vec![(1.0, PauliString::from_str("ZZ").unwrap())]);
        let xx = PauliSum::from_terms(vec![(1.0, PauliString::from_str("XX").unwrap())]);
        assert!((rho.expectation(&zz) - 1.0).abs() < EPS);
        assert!((rho.expectation(&xx) - 1.0).abs() < EPS);
    }

    #[test]
    fn pauli_action_phases() {
        use crate::pauli::Pauli;
        // Y|0⟩ = i|1⟩
        let (t, ph) = pauli_action(&[Pauli::Y], 0);
        assert_eq!(t, 1);
        assert!(ph.approx_eq(Complex64::I, EPS));
        // Y|1⟩ = -i|0⟩
        let (t, ph) = pauli_action(&[Pauli::Y], 1);
        assert_eq!(t, 0);
        assert!(ph.approx_eq(-Complex64::I, EPS));
        // Z|1⟩ = -|1⟩
        let (t, ph) = pauli_action(&[Pauli::Z], 1);
        assert_eq!(t, 1);
        assert!(ph.approx_eq(-Complex64::ONE, EPS));
    }

    #[test]
    fn errors_on_bad_operands() {
        let mut rho = DensityMatrix::zero_state(2);
        assert!(rho.apply_gate(Gate::X, &[4]).is_err());
        assert!(rho.apply_gate(Gate::Cx, &[1, 1]).is_err());
    }
}
