//! Compiled execution plans: compile → bind → schedule → execute.
//!
//! The op-by-op interpreter ([`Circuit::run_on`] in `interp` mode)
//! re-validates, re-fuses and re-classifies the same circuit on every
//! call — acceptable for one run, wasteful for a training loop that
//! evaluates the same ansatz thousands of times (parameter-shift
//! training costs `2·sites + 1` evaluations per gradient step). This
//! module splits execution into phases so everything parameter-
//! independent is paid once:
//!
//! 1. **Compile** ([`Circuit::compile`] → [`ExecPlan`]): structural
//!    validation, one op record per circuit op, and the numeric matrix
//!    of every op whose angle is already known (non-parametrized gates
//!    and [`ParamRef::Fixed`] angles — the trig calls happen here, not
//!    per run). Plans are parameter-independent: one plan serves every
//!    parameter vector and every ±π/2 shift evaluation.
//! 2. **Bind** ([`ExecPlan::bind`] → [`BoundPlan`]): resolves symbolic
//!    angles against a parameter vector (shift sites patch resolved
//!    angles here), runs the same 1q-fusion + diagonal-folding algorithm
//!    as the interpreter, and classifies each resulting matrix into its
//!    kernel (`Kernel2`/`Kernel4`) exactly once. Binding is `O(ops)`
//!    small-matrix work — microseconds against the milliseconds of a
//!    16-qubit state sweep.
//! 3. **Schedule**: consecutive bound gates whose operand qubits all fit
//!    a cache-sized tile (`2^T` amplitudes, see [`tile_qubits`]) are
//!    grouped into a *tile block*; gates touching a qubit ≥ `T` become
//!    sweep boundaries.
//! 4. **Execute** ([`BoundPlan::run_on`]): a tile block makes **one**
//!    sweep over the state, applying all its gates tile by tile while
//!    the tile is cache-resident — where the interpreter paid one full
//!    memory pass per gate, a block of `k` low-qubit gates now pays one.
//!    Sweep gates use the classic whole-array kernels.
//!
//! ## Bit-exactness
//!
//! Plan execution is bit-identical to the interpreter at every thread
//! count, for both the pooled and the scoped-thread executor
//! (`crates/qsim/tests/plan_equivalence.rs` proves it over random
//! circuits):
//!
//! * binding reuses the interpreter's fusion helpers and matrix-product
//!   order, so the bound gate sequence carries the exact matrices the
//!   interpreter would apply;
//! * kernels update disjoint amplitude pairs/quads independently, so
//!   applying a gate tile-by-tile (any region decomposition into whole
//!   pair/quad blocks) is bit-identical to one whole-array pass;
//! * parallel execution hands each worker whole tiles; per-tile
//!   arithmetic does not depend on which thread (or which executor —
//!   pooled or scoped) runs the tile.
//!
//! ## Executor selection
//!
//! `QSIM_EXEC=interp|plan` (default `plan`) picks the executor behind
//! [`Circuit::run_on`] and friends; [`with_exec_mode`] overrides it per
//! thread for tests. In `interp` mode plans still bind but execute every
//! gate as a whole-array sweep — the pre-tiling behavior.

use std::cell::Cell;
use std::ops::Range;
use std::sync::{Arc, OnceLock};

use crate::circuit::{is_dense4, is_diag2, mat2_mul, mat4_fold1q, Circuit, CircuitError, ParamRef};
use crate::complex::Complex64;
use crate::gate::{Gate, Matrix2, Matrix4};
use crate::state::{Kernel2, Kernel4, StateError, StateVector, PARALLEL_MIN_AMPS};

/// Name of the environment variable selecting the executor.
pub const EXEC_ENV: &str = "QSIM_EXEC";

/// Name of the environment variable overriding the tile size exponent.
pub const TILE_ENV: &str = "QSIM_TILE_QUBITS";

/// Default tile size exponent: `2^13` amplitudes = 128 KiB of state per
/// tile. Large enough that gates up to qubit 12 tile (fewer sweep
/// boundaries), small enough to stay L2-resident on every mainstream
/// core; `QSIM_TILE_QUBITS` overrides for tuning.
pub const DEFAULT_TILE_QUBITS: usize = 13;

/// Minimum number of gates before a run of tileable gates is worth a
/// tile block (a single gate executes faster as one whole-array sweep,
/// which also keeps its built-in threading).
const MIN_TILE_GROUP: usize = 2;

/// Largest state (in amplitudes) the parallel tile executor hands to the
/// persistent pool. Pooled dispatch passes *owned* stripes (two copy
/// passes over the state) to stay `unsafe`-free; above this size the
/// copies cost more than the ~140 µs scoped-thread spawn they avoid, so
/// bigger states take the zero-copy scoped path.
const POOLED_TILE_MAX_AMPS: usize = 1 << 17;

/// Which executor [`Circuit::run_on`] and friends use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// The historical fused op-by-op interpreter (one pass per gate).
    Interp,
    /// Compiled plans with cache-blocked tile scheduling (the default).
    Plan,
}

static ENV_EXEC: OnceLock<ExecMode> = OnceLock::new();

thread_local! {
    /// 0 = inherit env, 1 = force interp, 2 = force plan.
    static LOCAL_EXEC: Cell<u8> = const { Cell::new(0) };
}

impl ExecMode {
    /// The executor in effect on this thread: a [`with_exec_mode`]
    /// override first, then `QSIM_EXEC`, then [`ExecMode::Plan`].
    pub fn current() -> ExecMode {
        match LOCAL_EXEC.with(Cell::get) {
            1 => ExecMode::Interp,
            2 => ExecMode::Plan,
            _ => *ENV_EXEC.get_or_init(|| {
                match std::env::var(EXEC_ENV).ok().as_deref().map(str::trim) {
                    Some("interp") => ExecMode::Interp,
                    _ => ExecMode::Plan,
                }
            }),
        }
    }
}

/// Runs `f` with a thread-local executor override — the hook the
/// equivalence tests use to compare both executors inside one process.
pub fn with_exec_mode<R>(mode: ExecMode, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_EXEC.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_EXEC.with(Cell::get);
    let _restore = Restore(prev);
    LOCAL_EXEC.with(|c| {
        c.set(match mode {
            ExecMode::Interp => 1,
            ExecMode::Plan => 2,
        })
    });
    f()
}

/// The tile size exponent in effect: `QSIM_TILE_QUBITS` (clamped to
/// `2..=24`) or [`DEFAULT_TILE_QUBITS`].
pub fn tile_qubits() -> usize {
    static TILE: OnceLock<usize> = OnceLock::new();
    *TILE.get_or_init(|| {
        std::env::var(TILE_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|t| t.clamp(2, 24))
            .unwrap_or(DEFAULT_TILE_QUBITS)
    })
}

/// One compiled circuit op: the original gate plus everything knowable
/// without a parameter vector.
#[derive(Clone, Debug)]
struct OpRecord {
    gate: Gate,
    qubits: [usize; 2],
    arity: u8,
    param: Option<ParamRef>,
    /// Numeric matrix when the angle is compile-time known (fixed gates
    /// and `ParamRef::Fixed`); `None` for symbolic angles.
    fixed: Option<FixedMat>,
}

#[derive(Clone, Copy, Debug)]
enum FixedMat {
    One(Matrix2),
    Two(Matrix4),
}

/// A compiled, parameter-independent execution plan for one circuit.
///
/// Built once per ansatz by [`Circuit::compile`]; reused across every
/// epoch and every parameter-shift evaluation. Binding a parameter
/// vector ([`ExecPlan::bind`]) yields a [`BoundPlan`] ready to execute.
///
/// # Examples
///
/// ```
/// use qsim::circuit::Circuit;
/// use qsim::gate::Gate;
///
/// let mut c = Circuit::new(2);
/// c.push_fixed(Gate::H, &[0]);
/// c.push_sym(Gate::Ry(0.0), &[1], 0);
/// c.push_fixed(Gate::Cx, &[0, 1]);
///
/// let plan = c.compile().unwrap();
/// let a = plan.run(&[0.4]).unwrap();     // compile once …
/// let b = plan.run(&[0.9]).unwrap();     // … run many
/// assert_eq!(a.num_qubits(), b.num_qubits());
/// ```
#[derive(Clone, Debug)]
pub struct ExecPlan {
    num_qubits: usize,
    num_params: usize,
    records: Vec<OpRecord>,
    /// Operand qubits flattened in op order — the width pre-check at
    /// execution time reports the same qubit the interpreter would.
    op_qubits: Vec<usize>,
    tile_qubits: usize,
}

/// One gate of a bound plan: resolved matrix + precompiled kernel.
///
/// The `Two` variant is 4× the size of `One` (a 4×4 complex matrix);
/// bound gates live in one contiguous `Vec` that the executor scans
/// linearly, so boxing the large variant would trade cache locality for
/// nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Copy, Debug)]
enum BoundGate {
    One {
        q: usize,
        kernel: Kernel2,
        m: Matrix2,
    },
    Two {
        qa: usize,
        qb: usize,
        kernel: Kernel4,
        m: Matrix4,
    },
}

impl BoundGate {
    fn max_qubit(&self) -> usize {
        match *self {
            BoundGate::One { q, .. } => q,
            BoundGate::Two { qa, qb, .. } => qa.max(qb),
        }
    }

    /// Applies the gate to one contiguous region made of whole pair/quad
    /// blocks (a cache tile). `lvl` is the SIMD level the executor
    /// resolved on the calling thread before fanning out.
    fn run_region(&self, lvl: qsimd::Level, region: &mut [Complex64]) {
        match self {
            BoundGate::One { q, kernel, m } => kernel.run_region(lvl, m, region, 1usize << q),
            BoundGate::Two { qa, qb, kernel, m } => kernel.run_region4(lvl, m, region, *qa, *qb),
        }
    }
}

/// One step of the schedule.
#[derive(Clone, Debug)]
enum Step {
    /// A run of gates whose operands all fit one tile: applied tile by
    /// tile in a single sweep over the state.
    Tile(Range<usize>),
    /// A gate touching a high qubit (or standing alone): one classic
    /// whole-array pass.
    Sweep(usize),
}

/// A plan bound to a concrete parameter vector: fused matrices, kernel
/// descriptors and the tile schedule, ready to execute any number of
/// times.
#[derive(Clone, Debug)]
pub struct BoundPlan<'p> {
    plan: &'p ExecPlan,
    gates: Vec<BoundGate>,
    steps: Vec<Step>,
}

impl Circuit {
    /// Compiles the circuit into a parameter-independent [`ExecPlan`]:
    /// structural validation and fixed-angle matrix materialization
    /// happen here, once, instead of on every run.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem ([`Circuit::validate`]).
    pub fn compile(&self) -> Result<ExecPlan, CircuitError> {
        self.validate(self.num_params())?;
        let mut records = Vec::with_capacity(self.len());
        let mut op_qubits = Vec::new();
        for op in self.ops() {
            let arity = op.gate.arity() as u8;
            let qubits = match arity {
                1 => [op.qubits[0], 0],
                _ => [op.qubits[0], op.qubits[1]],
            };
            op_qubits.extend_from_slice(&op.qubits);
            // Fixed angles resolve at compile time; `with_param` on a
            // non-parametrized gate is the identity, so the `Fixed(v)`
            // arm covers both shapes run_on would produce.
            let fixed = match op.param {
                Some(ParamRef::Sym { .. }) => None,
                Some(ParamRef::Fixed(v)) => Some(materialize(op.gate.with_param(v), arity)),
                None => Some(materialize(op.gate, arity)),
            };
            records.push(OpRecord {
                gate: op.gate,
                qubits,
                arity,
                param: op.param,
                fixed,
            });
        }
        Ok(ExecPlan {
            num_qubits: self.num_qubits(),
            num_params: self.num_params(),
            records,
            op_qubits,
            tile_qubits: tile_qubits(),
        })
    }
}

fn materialize(gate: Gate, arity: u8) -> FixedMat {
    match arity {
        1 => FixedMat::One(gate.matrix2()),
        _ => FixedMat::Two(gate.matrix4()),
    }
}

impl ExecPlan {
    /// Register width the plan was compiled for.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of symbolic parameters the plan reads.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Number of compiled op records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the plan holds no operations.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Binds a parameter vector: resolves angles, fuses, classifies and
    /// schedules. The result executes any number of times.
    ///
    /// # Errors
    ///
    /// [`CircuitError::ParamOutOfRange`] when the vector is shorter than
    /// the plan's parameter space, [`CircuitError::State`] on duplicate
    /// two-qubit operands.
    pub fn bind(&self, params: &[f64]) -> Result<BoundPlan<'_>, CircuitError> {
        self.bind_impl(params, None)
    }

    /// [`ExecPlan::bind`] with the angle of the op at `op_index` offset
    /// by `delta` — the shift-site patch behind the generalized
    /// parameter-shift rule.
    ///
    /// # Errors
    ///
    /// As [`ExecPlan::bind`].
    pub fn bind_shifted(
        &self,
        params: &[f64],
        op_index: usize,
        delta: f64,
    ) -> Result<BoundPlan<'_>, CircuitError> {
        self.bind_impl(params, Some((op_index, delta)))
    }

    /// Executes the plan on `|0…0⟩` with the given binding.
    ///
    /// # Errors
    ///
    /// As [`ExecPlan::bind`] plus execution-time state errors.
    pub fn run(&self, params: &[f64]) -> Result<StateVector, CircuitError> {
        let mut state = StateVector::zero_state(self.num_qubits);
        self.bind(params)?.run_on(&mut state)?;
        Ok(state)
    }

    /// Binds and executes on an existing state in place (one-shot
    /// convenience; loops that rebind should hold the [`BoundPlan`]).
    ///
    /// # Errors
    ///
    /// As [`ExecPlan::bind`] plus execution-time state errors.
    pub fn run_on(&self, state: &mut StateVector, params: &[f64]) -> Result<(), CircuitError> {
        self.bind(params)?.run_on(state)
    }

    /// Like [`ExecPlan::run_on`] with one op's angle offset by `delta`.
    ///
    /// # Errors
    ///
    /// As [`ExecPlan::bind_shifted`] plus execution-time state errors.
    pub fn run_on_with_op_shift(
        &self,
        state: &mut StateVector,
        params: &[f64],
        op_index: usize,
        delta: f64,
    ) -> Result<(), CircuitError> {
        self.bind_shifted(params, op_index, delta)?.run_on(state)
    }

    /// The bind-time twin of the interpreter's fused executor: identical
    /// fusion decisions and matrix-product order, but emitting bound
    /// gates instead of touching a state.
    fn bind_impl(
        &self,
        params: &[f64],
        op_shift: Option<(usize, f64)>,
    ) -> Result<BoundPlan<'_>, CircuitError> {
        // Mirror `Circuit::validate(params.len())`'s parameter check (the
        // structural half already ran at compile time).
        for (i, rec) in self.records.iter().enumerate() {
            if let Some(ParamRef::Sym { index, .. }) = rec.param {
                if index >= params.len() {
                    return Err(CircuitError::ParamOutOfRange {
                        op_index: i,
                        param_index: index,
                        num_params: params.len(),
                    });
                }
            }
        }
        let mut gates: Vec<BoundGate> = Vec::with_capacity(self.records.len());
        // Pending 1q work per qubit, factored as `diag · dense` exactly
        // like the interpreter (see `Circuit::run_on` for why the
        // factoring preserves cheap kernel structure).
        let mut dense: Vec<Option<Matrix2>> = vec![None; self.num_qubits];
        let mut diag: Vec<Option<Matrix2>> = vec![None; self.num_qubits];
        let emit2 = |q: usize, m: Matrix2, gates: &mut Vec<BoundGate>| {
            gates.push(BoundGate::One {
                q,
                kernel: Kernel2::classify(&m),
                m,
            });
        };
        for (i, rec) in self.records.iter().enumerate() {
            let shift = match op_shift {
                Some((op, delta)) if op == i => Some(delta),
                _ => None,
            };
            match rec.arity {
                1 => {
                    let q = rec.qubits[0];
                    let m = resolve2(rec, params, shift);
                    if is_diag2(&m) {
                        diag[q] = Some(match diag[q] {
                            Some(prev) => mat2_mul(&m, &prev),
                            None => m,
                        });
                    } else {
                        let m = match diag[q].take() {
                            Some(g) => mat2_mul(&m, &g),
                            None => m,
                        };
                        dense[q] = Some(match dense[q] {
                            Some(prev) => mat2_mul(&m, &prev),
                            None => m,
                        });
                    }
                }
                _ => {
                    let (a, b) = (rec.qubits[0], rec.qubits[1]);
                    if a == b {
                        return Err(CircuitError::State(StateError::DuplicateQubits(a)));
                    }
                    let mut m4 = resolve4(rec, params, shift);
                    let dense4 = is_dense4(&m4);
                    for (q, bit) in [(a, 0usize), (b, 1usize)] {
                        match (dense[q].take(), diag[q].take()) {
                            (Some(d), g) => {
                                if dense4 {
                                    let whole = match g {
                                        Some(g) => mat2_mul(&g, &d),
                                        None => d,
                                    };
                                    m4 = mat4_fold1q(&m4, &whole, bit);
                                } else {
                                    emit2(q, d, &mut gates);
                                    if let Some(g) = g {
                                        m4 = mat4_fold1q(&m4, &g, bit);
                                    }
                                }
                            }
                            (None, Some(g)) => {
                                m4 = mat4_fold1q(&m4, &g, bit);
                            }
                            (None, None) => {}
                        }
                    }
                    gates.push(BoundGate::Two {
                        qa: a,
                        qb: b,
                        kernel: Kernel4::classify(&m4),
                        m: m4,
                    });
                }
            }
        }
        for q in 0..self.num_qubits {
            match (dense[q].take(), diag[q].take()) {
                (Some(d), Some(g)) => emit2(q, mat2_mul(&g, &d), &mut gates),
                (Some(d), None) => emit2(q, d, &mut gates),
                (None, Some(g)) => emit2(q, g, &mut gates),
                (None, None) => {}
            }
        }
        let steps = schedule(&gates, self.tile_qubits);
        Ok(BoundPlan {
            plan: self,
            gates,
            steps,
        })
    }
}

/// Resolves one 1q record's numeric matrix, reusing the compile-time
/// matrix when no angle resolution is needed.
fn resolve2(rec: &OpRecord, params: &[f64], shift: Option<f64>) -> Matrix2 {
    match (shift, rec.fixed) {
        (None, Some(FixedMat::One(m))) => m,
        _ => {
            let angle =
                rec.param.map(|p| p.resolve(params)).unwrap_or_default() + shift.unwrap_or(0.0);
            match rec.param {
                Some(_) => rec.gate.with_param(angle).matrix2(),
                None => rec.gate.matrix2(),
            }
        }
    }
}

/// Resolves one 2q record's numeric matrix (see [`resolve2`]).
fn resolve4(rec: &OpRecord, params: &[f64], shift: Option<f64>) -> Matrix4 {
    match (shift, rec.fixed) {
        (None, Some(FixedMat::Two(m))) => m,
        _ => {
            let angle =
                rec.param.map(|p| p.resolve(params)).unwrap_or_default() + shift.unwrap_or(0.0);
            match rec.param {
                Some(_) => rec.gate.with_param(angle).matrix4(),
                None => rec.gate.matrix4(),
            }
        }
    }
}

/// Groups consecutive gates whose operands all fit one `2^tile_qubits`
/// tile into tile blocks; everything else (high-qubit gates, singleton
/// runs) executes as a whole-array sweep.
fn schedule(gates: &[BoundGate], tile_qubits: usize) -> Vec<Step> {
    let mut steps = Vec::new();
    let mut run_start: Option<usize> = None;
    let flush = |start: Option<usize>, end: usize, steps: &mut Vec<Step>| {
        if let Some(s) = start {
            if end - s >= MIN_TILE_GROUP {
                steps.push(Step::Tile(s..end));
            } else {
                for g in s..end {
                    steps.push(Step::Sweep(g));
                }
            }
        }
    };
    for (i, gate) in gates.iter().enumerate() {
        if gate.max_qubit() < tile_qubits {
            run_start.get_or_insert(i);
        } else {
            flush(run_start.take(), i, &mut steps);
            steps.push(Step::Sweep(i));
        }
    }
    flush(run_start.take(), gates.len(), &mut steps);
    steps
}

impl BoundPlan<'_> {
    /// Number of bound (post-fusion) gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of full passes over the state this plan will make — the
    /// figure tiling minimizes (one per tile block + one per sweep gate).
    pub fn num_passes(&self) -> usize {
        self.steps.len()
    }

    /// Executes the bound plan on an existing state in place.
    ///
    /// Respects [`ExecMode`]: in `interp` mode every gate runs as a
    /// whole-array sweep (the pre-tiling behavior); in `plan` mode tile
    /// blocks run cache-blocked. Both produce bit-identical amplitudes.
    ///
    /// # Errors
    ///
    /// [`StateError::QubitOutOfRange`] (wrapped) when the state is
    /// narrower than an operand qubit — checked up front for every op,
    /// like the interpreter, so a failing run never half-evolves the
    /// state.
    pub fn run_on(&self, state: &mut StateVector) -> Result<(), CircuitError> {
        let width = state.num_qubits();
        for &q in &self.plan.op_qubits {
            if q >= width {
                return Err(CircuitError::State(StateError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: width,
                }));
            }
        }
        if ExecMode::current() == ExecMode::Interp {
            for gate in &self.gates {
                self.sweep(state, gate);
            }
            return Ok(());
        }
        for step in &self.steps {
            match step {
                Step::Sweep(g) => self.sweep(state, &self.gates[*g]),
                Step::Tile(range) => self.run_tiled(state, &self.gates[range.clone()]),
            }
        }
        Ok(())
    }

    /// One whole-array pass through the classic threaded kernels, with
    /// the bind-time kernel descriptor (no per-call reclassification).
    fn sweep(&self, state: &mut StateVector, gate: &BoundGate) {
        match gate {
            BoundGate::One { q, kernel, m } => state.apply_matrix2_with(*kernel, m, *q),
            BoundGate::Two { qa, qb, kernel, m } => state.apply_matrix4_with(*kernel, m, *qa, *qb),
        }
    }

    /// One sweep over the state applying a whole tile block: every tile
    /// is loaded into cache once and receives all gates of the block.
    fn run_tiled(&self, state: &mut StateVector, gates: &[BoundGate]) {
        let amps = state.amplitudes_mut();
        let n = amps.len();
        let tile = (1usize << self.plan.tile_qubits).min(n);
        // SIMD level resolved here, on the calling thread, before any
        // fan-out — pool workers cannot see the caller's thread-local
        // override.
        let lvl = qsimd::active();
        let threads = if n < PARALLEL_MIN_AMPS {
            1
        } else {
            qpar::current_threads()
        };
        let n_tiles = n / tile;
        if threads <= 1 || n_tiles <= 1 {
            for region in amps.chunks_mut(tile) {
                run_block_region(gates, region, tile, lvl);
            }
            return;
        }
        // Whole tiles per worker stripe; per-tile arithmetic is
        // independent, so any stripe assignment is bit-exact.
        let stripe = n_tiles.div_ceil(threads).max(1) * tile;
        if n <= POOLED_TILE_MAX_AMPS && qpar::pool::active(threads) {
            // Pooled executor: ownership-passing — each worker receives
            // its stripe by value and returns it transformed (two copy
            // passes buy spawn-free fan-out; the scoped path below stays
            // zero-copy as the fallback).
            let block: Arc<Vec<BoundGate>> = Arc::new(gates.to_vec());
            let stripes: Vec<Vec<Complex64>> = amps.chunks(stripe).map(<[_]>::to_vec).collect();
            let parts = qpar::map_owned(threads, stripes, move |mut part| {
                run_block_region(&block, &mut part, tile, lvl);
                part
            });
            let mut offset = 0;
            for part in parts {
                amps[offset..offset + part.len()].copy_from_slice(&part);
                offset += part.len();
            }
        } else {
            let items: Vec<&mut [Complex64]> = amps.chunks_mut(stripe).collect();
            qpar::for_each_threads(threads, items, |chunk| {
                run_block_region(gates, chunk, tile, lvl);
            });
        }
    }
}

/// Applies all gates of a block to a contiguous region, tile by tile.
fn run_block_region(gates: &[BoundGate], region: &mut [Complex64], tile: usize, lvl: qsimd::Level) {
    for tile_region in region.chunks_mut(tile) {
        for gate in gates {
            gate.run_region(lvl, tile_region);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    const EPS: f64 = 1e-12;

    fn bits(s: &StateVector) -> Vec<(u64, u64)> {
        s.amplitudes()
            .iter()
            .map(|a| (a.re.to_bits(), a.im.to_bits()))
            .collect()
    }

    fn sample_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        let mut p = 0;
        for layer in 0..3 {
            for q in 0..n {
                c.push_sym(Gate::Ry(0.0), &[q], p);
                p += 1;
                c.push_sym(Gate::Rz(0.0), &[q], p);
                p += 1;
            }
            for q in 0..n - 1 {
                c.push_fixed(Gate::Cx, &[q, q + 1]);
            }
            if layer == 1 {
                c.push_fixed(Gate::Swap, &[0, n - 1]);
                c.push_sym_scaled(Gate::Rzz(0.0), &[1, n - 2], 0, 0.5);
            }
        }
        c
    }

    #[test]
    fn plan_matches_interpreter_exactly() {
        let c = sample_circuit(6);
        let params: Vec<f64> = (0..c.num_params()).map(|i| 0.17 * i as f64 - 1.0).collect();
        let interp = with_exec_mode(ExecMode::Interp, || c.run(&params).unwrap());
        let plan = c.compile().unwrap();
        let planned = plan.run(&params).unwrap();
        assert_eq!(bits(&interp), bits(&planned));
    }

    #[test]
    fn plan_reuse_across_parameter_vectors() {
        let c = sample_circuit(4);
        let plan = c.compile().unwrap();
        for seed in 0..4u64 {
            let mut rng = Xoshiro256::seed_from(seed);
            let params: Vec<f64> = (0..c.num_params())
                .map(|_| rng.next_f64() * 4.0 - 2.0)
                .collect();
            let interp = with_exec_mode(ExecMode::Interp, || c.run(&params).unwrap());
            assert_eq!(bits(&interp), bits(&plan.run(&params).unwrap()));
        }
    }

    #[test]
    fn shifted_bind_matches_interpreter_shift() {
        let c = sample_circuit(4);
        let plan = c.compile().unwrap();
        let params: Vec<f64> = (0..c.num_params()).map(|i| 0.3 + 0.05 * i as f64).collect();
        let delta = std::f64::consts::FRAC_PI_2;
        for (op, _) in c.sym_ops() {
            let interp =
                with_exec_mode(ExecMode::Interp, || c.run_with_op_shift(&params, op, delta))
                    .unwrap();
            let mut s = StateVector::zero_state(4);
            plan.run_on_with_op_shift(&mut s, &params, op, delta)
                .unwrap();
            assert_eq!(bits(&interp), bits(&s), "op {op}");
        }
    }

    #[test]
    fn tiling_kicks_in_for_low_qubit_runs() {
        // All operands below the tile exponent → one tile block, one pass.
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.push_fixed(Gate::H, &[q]);
        }
        c.push_fixed(Gate::Cx, &[0, 1]);
        c.push_fixed(Gate::Cx, &[2, 3]);
        let plan = c.compile().unwrap();
        let bound = plan.bind(&[]).unwrap();
        assert_eq!(bound.num_passes(), 1, "all-low circuit must fully tile");
        assert!(bound.num_gates() >= 2);
    }

    #[test]
    fn high_qubit_gates_are_sweep_boundaries() {
        // A 15-qubit circuit with the default tile exponent of 13: gates
        // on qubits 13/14 must split the tile runs.
        let mut c = Circuit::new(15);
        c.push_fixed(Gate::H, &[0]);
        c.push_fixed(Gate::Cx, &[0, 1]);
        c.push_fixed(Gate::Cx, &[13, 14]); // sweep boundary
        c.push_fixed(Gate::H, &[2]);
        c.push_fixed(Gate::Cx, &[2, 3]);
        let plan = c.compile().unwrap();
        let bound = plan.bind(&[]).unwrap();
        assert_eq!(bound.num_passes(), 3, "tile, sweep, tile");
        let s = plan.run(&[]).unwrap();
        let interp = with_exec_mode(ExecMode::Interp, || c.run(&[]).unwrap());
        assert_eq!(bits(&interp), bits(&s));
    }

    #[test]
    fn plan_errors_match_interpreter_errors() {
        // Missing parameters.
        let mut c = Circuit::new(1);
        c.push_sym(Gate::Rx(0.0), &[0], 2);
        let plan = c.compile().unwrap();
        assert!(matches!(
            plan.run(&[0.1]).unwrap_err(),
            CircuitError::ParamOutOfRange { param_index: 2, .. }
        ));
        // Narrow state: same error, and the state stays untouched.
        let mut c2 = Circuit::new(3);
        c2.push_fixed(Gate::H, &[0]);
        c2.push_fixed(Gate::Rz(0.4), &[2]);
        let plan2 = c2.compile().unwrap();
        let mut narrow = StateVector::zero_state(1);
        match plan2.run_on(&mut narrow, &[]) {
            Err(CircuitError::State(StateError::QubitOutOfRange {
                qubit: 2,
                num_qubits: 1,
            })) => {}
            other => panic!("expected QubitOutOfRange, got {other:?}"),
        }
        assert!((narrow.probability(0) - 1.0).abs() < EPS, "no half-run");
        // Structural problems surface at compile time.
        let mut c3 = Circuit::new(1);
        c3.push_fixed(Gate::X, &[1]);
        assert!(matches!(
            c3.compile(),
            Err(CircuitError::QubitOutOfRange { qubit: 1, .. })
        ));
    }

    #[test]
    fn empty_plan_runs() {
        let c = Circuit::new(3);
        let plan = c.compile().unwrap();
        assert!(plan.is_empty());
        let s = plan.run(&[]).unwrap();
        assert!((s.probability(0) - 1.0).abs() < EPS);
    }

    #[test]
    fn wider_state_than_plan_works() {
        let mut c = Circuit::new(2);
        c.push_fixed(Gate::X, &[1]);
        let plan = c.compile().unwrap();
        let mut wide = StateVector::zero_state(4);
        plan.run_on(&mut wide, &[]).unwrap();
        assert!((wide.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn exec_mode_override_nests_and_restores() {
        let ambient = ExecMode::current();
        with_exec_mode(ExecMode::Interp, || {
            assert_eq!(ExecMode::current(), ExecMode::Interp);
            with_exec_mode(ExecMode::Plan, || {
                assert_eq!(ExecMode::current(), ExecMode::Plan);
            });
            assert_eq!(ExecMode::current(), ExecMode::Interp);
        });
        assert_eq!(ExecMode::current(), ambient);
    }
}
