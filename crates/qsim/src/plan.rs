//! Compiled execution plans: compile → bind → schedule → execute.
//!
//! The op-by-op interpreter ([`Circuit::run_on`] in `interp` mode)
//! re-validates, re-fuses and re-classifies the same circuit on every
//! call — acceptable for one run, wasteful for a training loop that
//! evaluates the same ansatz thousands of times (parameter-shift
//! training costs `2·sites + 1` evaluations per gradient step). This
//! module splits execution into phases so everything parameter-
//! independent is paid once:
//!
//! 1. **Compile** ([`Circuit::compile`] → [`ExecPlan`]): structural
//!    validation, one op record per circuit op, and the numeric matrix
//!    of every op whose angle is already known (non-parametrized gates
//!    and [`ParamRef::Fixed`] angles — the trig calls happen here, not
//!    per run). Plans are parameter-independent: one plan serves every
//!    parameter vector and every ±π/2 shift evaluation.
//! 2. **Bind** ([`ExecPlan::bind`] → [`BoundPlan`]): resolves symbolic
//!    angles against a parameter vector (shift sites patch resolved
//!    angles here), runs the same 1q-fusion + diagonal-folding algorithm
//!    as the interpreter, and classifies each resulting matrix into its
//!    kernel (`Kernel2`/`Kernel4`) exactly once. Binding is `O(ops)`
//!    small-matrix work — microseconds against the milliseconds of a
//!    16-qubit state sweep.
//! 3. **Schedule**: consecutive bound gates whose operand qubits all fit
//!    a cache-sized tile (`2^T` amplitudes, see [`tile_qubits`]) are
//!    grouped into a *tile block*; gates touching a qubit ≥ `T` become
//!    sweep boundaries. On top of tiling, **pass fusion** lifts gates
//!    that are pure amplitude permutations (CX, X, Swap — every kernel
//!    coefficient exactly `1`) out of the gate stream entirely: their
//!    index maps are composed into one affine GF(2) map
//!    ([`AffinePerm`], `i ↦ L·i ⊕ t`) that is deferred past any gate it
//!    does not overlap and flushed as a single gather pass
//!    ([`Step::Permute`]). An entangler ring that cost `N` sweeps costs
//!    one; a layered ansatz drops from `~2N` to `N + 1` passes per
//!    layer. Permutations do no arithmetic, so deferral and composition
//!    are byte-preserving by construction — gates that *scale*
//!    amplitudes (CZ, Rzz) never fuse. `QSIM_FUSE=off` (or
//!    [`with_fuse_mode`]) forces the per-gate schedule.
//! 4. **Execute** ([`BoundPlan::run_on`]): a tile block makes **one**
//!    sweep over the state, applying all its gates tile by tile while
//!    the tile is cache-resident — where the interpreter paid one full
//!    memory pass per gate, a block of `k` low-qubit gates now pays one.
//!    Sweep gates use the classic whole-array kernels; permutation
//!    flushes gather into a reused thread-local scratch buffer and swap.
//!
//! The schedule is observable: [`BoundPlan::passes`] counts gate visits
//! under the per-gate traffic model, [`BoundPlan::num_passes`] counts
//! physical memory passes, and [`BoundPlan::amp_bytes_swept`] is a
//! deterministic bytes-moved model — `bench_parallel` records all three
//! so the traffic reduction is counter-verified, not just timed.
//!
//! ## Bit-exactness
//!
//! Plan execution is bit-identical to the interpreter at every thread
//! count, for both the pooled and the scoped-thread executor
//! (`crates/qsim/tests/plan_equivalence.rs` proves it over random
//! circuits):
//!
//! * binding reuses the interpreter's fusion helpers and matrix-product
//!   order, so the bound gate sequence carries the exact matrices the
//!   interpreter would apply;
//! * kernels update disjoint amplitude pairs/quads independently, so
//!   applying a gate tile-by-tile (any region decomposition into whole
//!   pair/quad blocks) is bit-identical to one whole-array pass;
//! * parallel execution hands each worker whole tiles; per-tile
//!   arithmetic does not depend on which thread (or which executor —
//!   pooled or scoped) runs the tile.
//!
//! ## Executor selection
//!
//! `QSIM_EXEC=interp|plan` (default `plan`) picks the executor behind
//! [`Circuit::run_on`] and friends; [`with_exec_mode`] overrides it per
//! thread for tests. In `interp` mode plans still bind but execute every
//! gate as a whole-array sweep — the pre-tiling behavior.

use std::cell::{Cell, RefCell};
use std::ops::Range;
use std::sync::{Arc, OnceLock};

use crate::circuit::{
    is_dense4, is_diag2, is_unit_perm4, mat2_mul, mat4_fold1q, Circuit, CircuitError, ParamRef,
};
use crate::complex::Complex64;
use crate::gate::{Gate, Matrix2, Matrix4};
use crate::state::{Kernel2, Kernel4, StateError, StateVector, PARALLEL_MIN_AMPS};

/// Name of the environment variable selecting the executor.
pub const EXEC_ENV: &str = "QSIM_EXEC";

/// Name of the environment variable toggling pass-fusion scheduling
/// (`QSIM_FUSE=off` forces the per-gate schedule — the escape hatch that
/// keeps the pre-fusion path testable forever).
pub const FUSE_ENV: &str = "QSIM_FUSE";

/// Name of the environment variable overriding the tile size exponent.
pub const TILE_ENV: &str = "QSIM_TILE_QUBITS";

/// Default tile size exponent: `2^13` amplitudes = 128 KiB of state per
/// tile. Large enough that gates up to qubit 12 tile (fewer sweep
/// boundaries), small enough to stay L2-resident on every mainstream
/// core; `QSIM_TILE_QUBITS` overrides for tuning.
pub const DEFAULT_TILE_QUBITS: usize = 13;

/// Minimum number of gates before a run of tileable gates is worth a
/// tile block (a single gate executes faster as one whole-array sweep,
/// which also keeps its built-in threading).
const MIN_TILE_GROUP: usize = 2;

/// Largest state (in amplitudes) the parallel tile executor hands to the
/// persistent pool. Pooled dispatch passes *owned* stripes (two copy
/// passes over the state) to stay `unsafe`-free; above this size the
/// copies cost more than the ~140 µs scoped-thread spawn they avoid, so
/// bigger states take the zero-copy scoped path.
const POOLED_TILE_MAX_AMPS: usize = 1 << 17;

/// Widest plan the permutation scheduler handles: affine index maps are
/// stored as one `u32` bit-column per qubit. Plans wider than this (far
/// beyond any state that fits in memory) simply schedule without fusion.
const MAX_PERM_QUBITS: usize = 32;

/// Which executor [`Circuit::run_on`] and friends use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// The historical fused op-by-op interpreter (one pass per gate).
    Interp,
    /// Compiled plans with cache-blocked tile scheduling (the default).
    Plan,
}

static ENV_EXEC: OnceLock<ExecMode> = OnceLock::new();

thread_local! {
    /// 0 = inherit env, 1 = force interp, 2 = force plan.
    static LOCAL_EXEC: Cell<u8> = const { Cell::new(0) };
}

impl ExecMode {
    /// The executor in effect on this thread: a [`with_exec_mode`]
    /// override first, then `QSIM_EXEC`, then [`ExecMode::Plan`].
    pub fn current() -> ExecMode {
        match LOCAL_EXEC.with(Cell::get) {
            1 => ExecMode::Interp,
            2 => ExecMode::Plan,
            _ => *ENV_EXEC.get_or_init(|| {
                match std::env::var(EXEC_ENV).ok().as_deref().map(str::trim) {
                    Some("interp") => ExecMode::Interp,
                    _ => ExecMode::Plan,
                }
            }),
        }
    }
}

/// Runs `f` with a thread-local executor override — the hook the
/// equivalence tests use to compare both executors inside one process.
pub fn with_exec_mode<R>(mode: ExecMode, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_EXEC.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_EXEC.with(Cell::get);
    let _restore = Restore(prev);
    LOCAL_EXEC.with(|c| {
        c.set(match mode {
            ExecMode::Interp => 1,
            ExecMode::Plan => 2,
        })
    });
    f()
}

/// Whether the scheduler fuses pure-permutation gates (CX rings, swaps,
/// X bands) into deferred index-permutation passes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuseMode {
    /// Pass-fusion scheduling (the default): pure-permutation gates are
    /// composed into one affine index map and executed as a single
    /// gather pass; arithmetic gates with disjoint support hop past the
    /// pending permutation.
    On,
    /// The per-gate schedule: every bound gate executes as its own
    /// tile-block member or sweep, exactly as before fusion existed.
    Off,
}

static ENV_FUSE: OnceLock<FuseMode> = OnceLock::new();

thread_local! {
    /// 0 = inherit env, 1 = force on, 2 = force off.
    static LOCAL_FUSE: Cell<u8> = const { Cell::new(0) };
}

impl FuseMode {
    /// The fusion mode in effect on this thread: a [`with_fuse_mode`]
    /// override first, then `QSIM_FUSE`, then [`FuseMode::On`]. Resolved
    /// at *bind* time — a [`BoundPlan`]'s schedule is fixed once built.
    pub fn current() -> FuseMode {
        match LOCAL_FUSE.with(Cell::get) {
            1 => FuseMode::On,
            2 => FuseMode::Off,
            _ => *ENV_FUSE.get_or_init(|| {
                match std::env::var(FUSE_ENV).ok().as_deref().map(str::trim) {
                    Some("off") | Some("0") => FuseMode::Off,
                    _ => FuseMode::On,
                }
            }),
        }
    }
}

/// Runs `f` with a thread-local fusion override — the hook the
/// equivalence tests use to pin both schedules inside one process.
pub fn with_fuse_mode<R>(mode: FuseMode, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_FUSE.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_FUSE.with(Cell::get);
    let _restore = Restore(prev);
    LOCAL_FUSE.with(|c| {
        c.set(match mode {
            FuseMode::On => 1,
            FuseMode::Off => 2,
        })
    });
    f()
}

/// The tile size exponent in effect: `QSIM_TILE_QUBITS` (clamped to
/// `2..=24`) or [`DEFAULT_TILE_QUBITS`].
pub fn tile_qubits() -> usize {
    static TILE: OnceLock<usize> = OnceLock::new();
    *TILE.get_or_init(|| {
        std::env::var(TILE_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|t| t.clamp(2, 24))
            .unwrap_or(DEFAULT_TILE_QUBITS)
    })
}

/// One compiled circuit op: the original gate plus everything knowable
/// without a parameter vector.
#[derive(Clone, Debug)]
struct OpRecord {
    gate: Gate,
    qubits: [usize; 2],
    arity: u8,
    param: Option<ParamRef>,
    /// Numeric matrix when the angle is compile-time known (fixed gates
    /// and `ParamRef::Fixed`); `None` for symbolic angles.
    fixed: Option<FixedMat>,
}

#[derive(Clone, Copy, Debug)]
enum FixedMat {
    One(Matrix2),
    Two(Matrix4),
}

/// A compiled, parameter-independent execution plan for one circuit.
///
/// Built once per ansatz by [`Circuit::compile`]; reused across every
/// epoch and every parameter-shift evaluation. Binding a parameter
/// vector ([`ExecPlan::bind`]) yields a [`BoundPlan`] ready to execute.
///
/// # Examples
///
/// ```
/// use qsim::circuit::Circuit;
/// use qsim::gate::Gate;
///
/// let mut c = Circuit::new(2);
/// c.push_fixed(Gate::H, &[0]);
/// c.push_sym(Gate::Ry(0.0), &[1], 0);
/// c.push_fixed(Gate::Cx, &[0, 1]);
///
/// let plan = c.compile().unwrap();
/// let a = plan.run(&[0.4]).unwrap();     // compile once …
/// let b = plan.run(&[0.9]).unwrap();     // … run many
/// assert_eq!(a.num_qubits(), b.num_qubits());
/// ```
#[derive(Clone, Debug)]
pub struct ExecPlan {
    num_qubits: usize,
    num_params: usize,
    records: Vec<OpRecord>,
    /// Operand qubits flattened in op order — the width pre-check at
    /// execution time reports the same qubit the interpreter would.
    op_qubits: Vec<usize>,
    tile_qubits: usize,
}

/// One gate of a bound plan: resolved matrix + precompiled kernel.
///
/// The `Two` variant is 4× the size of `One` (a 4×4 complex matrix);
/// bound gates live in one contiguous `Vec` that the executor scans
/// linearly, so boxing the large variant would trade cache locality for
/// nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Copy, Debug)]
enum BoundGate {
    One {
        q: usize,
        kernel: Kernel2,
        m: Matrix2,
    },
    Two {
        qa: usize,
        qb: usize,
        kernel: Kernel4,
        m: Matrix4,
    },
}

impl BoundGate {
    fn max_qubit(&self) -> usize {
        match *self {
            BoundGate::One { q, .. } => q,
            BoundGate::Two { qa, qb, .. } => qa.max(qb),
        }
    }

    /// Applies the gate to one contiguous region made of whole pair/quad
    /// blocks (a cache tile). `lvl` is the SIMD level the executor
    /// resolved on the calling thread before fanning out.
    fn run_region(&self, lvl: qsimd::Level, region: &mut [Complex64]) {
        match self {
            BoundGate::One { q, kernel, m } => kernel.run_region(lvl, m, region, 1usize << q),
            BoundGate::Two { qa, qb, kernel, m } => kernel.run_region4(lvl, m, region, *qa, *qb),
        }
    }

    /// Operand qubits as a bit mask (only called on plans narrow enough
    /// for the permutation scheduler, i.e. ≤ [`MAX_PERM_QUBITS`]).
    fn support_mask(&self) -> u32 {
        match *self {
            BoundGate::One { q, .. } => 1 << q,
            BoundGate::Two { qa, qb, .. } => (1 << qa) | (1 << qb),
        }
    }

    /// When the bound gate is a *pure* basis-state permutation — every
    /// nonzero matrix entry exactly `1` (CX, Swap, X, their products) —
    /// returns `(support mask, affine index map)`. Gates with any
    /// phase/scaling coefficient return `None`: a scalar multiply does
    /// not commute bit-wise with neighboring rotations, so only
    /// arithmetic-free moves are safe to defer.
    fn as_perm(&self, n: usize) -> Option<(u32, AffinePerm)> {
        let one = Complex64::ONE;
        match *self {
            BoundGate::One { q, kernel, m } => match kernel {
                // Fused-to-identity 1q chains: nothing moves.
                Kernel2::Diag if m[0][0] == one && m[1][1] == one => {
                    Some((0, AffinePerm::identity(n)))
                }
                // Unit anti-diagonal = X: flip one index bit.
                Kernel2::Anti if m[0][1] == one && m[1][0] == one => {
                    let mut p = AffinePerm::identity(n);
                    p.t = 1 << q;
                    Some((1 << q, p))
                }
                _ => None,
            },
            BoundGate::Two { qa, qb, kernel, .. } => {
                // Row map of the monomial: `new[i] = old[rows[i]]`.
                let rows: [u8; 4] = match kernel {
                    Kernel4::Diag(c) if c == [one; 4] => [0, 1, 2, 3],
                    Kernel4::Transposition {
                        i,
                        j,
                        ci,
                        cj,
                        fixed,
                        ..
                    } if ci == one && cj == one && fixed == [one, one] => {
                        let mut p = [0u8, 1, 2, 3];
                        p.swap(i as usize, j as usize);
                        p
                    }
                    Kernel4::Monomial { perm, coef } if coef == [one; 4] => perm,
                    _ => return None,
                };
                // Index map: the amplitude at sub-index `s` moves to `g(s)`
                // with `rows[g(s)] = s` — the inverse of the row map.
                let mut g = [0u8; 4];
                for (i, &r) in rows.iter().enumerate() {
                    g[r as usize] = i as u8;
                }
                Some((
                    (1u32 << qa) | (1u32 << qb),
                    AffinePerm::from_two(n, qa, qb, g),
                ))
            }
        }
    }
}

/// An accumulated basis-state permutation, kept in the affine normal
/// form `P(i) = L·i ⊕ t` over GF(2): `L` as one bit-mask column per
/// qubit, `t` a translation mask. Every pure-permutation gate is affine
/// (for two qubits, S₄ ≅ AGL(2,2) — *all* 24 sub-permutations qualify),
/// composition is closed, and the form makes two scheduler facts
/// checkable in O(1): whether a qubit is untouched (unit column, unit
/// row, clear `t` bit — the hop-past test) and whether the whole map is
/// the identity (cancelled rings cost nothing).
#[derive(Clone, Copy, Debug)]
struct AffinePerm {
    /// `cols[k]` = image of basis bit `e_k` under `L`.
    cols: [u32; MAX_PERM_QUBITS],
    /// Translation mask.
    t: u32,
    /// Meaningful columns (the plan width).
    n: usize,
}

impl AffinePerm {
    fn identity(n: usize) -> Self {
        let mut cols = [0u32; MAX_PERM_QUBITS];
        for (k, c) in cols.iter_mut().enumerate().take(n) {
            *c = 1 << k;
        }
        AffinePerm { cols, t: 0, n }
    }

    fn is_identity(&self) -> bool {
        self.t == 0
            && self
                .cols
                .iter()
                .enumerate()
                .take(self.n)
                .all(|(k, &c)| c == 1 << k)
    }

    /// `L·x` (linear part only).
    fn lin(&self, x: u32) -> u32 {
        let mut r = 0u32;
        let mut rest = x;
        while rest != 0 {
            let k = rest.trailing_zeros() as usize;
            r ^= self.cols[k];
            rest &= rest - 1;
        }
        r
    }

    /// The composition applying `prev` first, then `self`.
    fn after(&self, prev: &AffinePerm) -> AffinePerm {
        let mut cols = [0u32; MAX_PERM_QUBITS];
        for (c, p) in cols.iter_mut().zip(prev.cols.iter()).take(self.n) {
            *c = self.lin(*p);
        }
        AffinePerm {
            cols,
            t: self.lin(prev.t) ^ self.t,
            n: self.n,
        }
    }

    /// The affine map of one two-qubit sub-permutation `g` (matrix-basis
    /// bit 0 ↔ `qa`, bit 1 ↔ `qb`, matching the kernel quad layout
    /// `offs = [0, ba, bb, ba|bb]`). Decomposed as `c = g(0)`,
    /// `A·e₁ = g(1) ⊕ c`, `A·e₂ = g(2) ⊕ c`; `g(3) = g(1) ⊕ g(2) ⊕ g(0)`
    /// holds for every permutation of GF(2)², so the form is exact.
    fn from_two(n: usize, qa: usize, qb: usize, g: [u8; 4]) -> AffinePerm {
        let mb = |v: u8| -> u32 {
            let mut m = 0;
            if v & 1 != 0 {
                m |= 1 << qa;
            }
            if v & 2 != 0 {
                m |= 1 << qb;
            }
            m
        };
        let c = g[0];
        let mut p = AffinePerm::identity(n);
        p.cols[qa] = mb(g[1] ^ c);
        p.cols[qb] = mb(g[2] ^ c);
        p.t = mb(c);
        p
    }

    /// Inverts the map into an executable gather spec (`out[j] =
    /// in[P⁻¹(j)]`) by GF(2) Gauss–Jordan elimination. The linear part
    /// is a composition of invertible gate maps, so a pivot always
    /// exists.
    fn inverse_spec(&self) -> PermSpec {
        let n = self.n;
        // Row view of `L` (bit k of `rows[r]` = L[r][k]), augmented with
        // the identity.
        let mut rows = [0u32; MAX_PERM_QUBITS];
        let mut aug = [0u32; MAX_PERM_QUBITS];
        for r in 0..n {
            for (k, &c) in self.cols.iter().enumerate().take(n) {
                if c >> r & 1 != 0 {
                    rows[r] |= 1 << k;
                }
            }
            aug[r] = 1 << r;
        }
        for c in 0..n {
            let pivot = (c..n)
                .find(|&r| rows[r] >> c & 1 != 0)
                .expect("gate permutation maps are invertible");
            rows.swap(c, pivot);
            aug.swap(c, pivot);
            for r in 0..n {
                if r != c && rows[r] >> c & 1 != 0 {
                    rows[r] ^= rows[c];
                    aug[r] ^= aug[c];
                }
            }
        }
        // `aug` now holds L⁻¹ in row view; store it column-wise for the
        // gather's incremental addressing.
        let mut inv_cols = [0u32; MAX_PERM_QUBITS];
        for (r, &a) in aug.iter().enumerate().take(n) {
            for (k, ic) in inv_cols.iter_mut().enumerate().take(n) {
                if a >> k & 1 != 0 {
                    *ic |= 1 << r;
                }
            }
        }
        let mut spec = PermSpec {
            inv_cols,
            inv_t: 0,
            n: n as u32,
        };
        spec.inv_t = spec.lin_inv(self.t);
        spec
    }
}

/// One executable permutation pass: the *inverse* affine index map, so
/// execution is a pure output-ordered gather — sequential writes, no
/// arithmetic, bit-exact by construction at any thread count.
#[derive(Clone, Copy, Debug)]
struct PermSpec {
    /// `inv_cols[k]` = image of `e_k` under `L⁻¹`.
    inv_cols: [u32; MAX_PERM_QUBITS],
    /// `P⁻¹(j) = L⁻¹·j ⊕ inv_t` (with `inv_t = L⁻¹·t`).
    inv_t: u32,
    /// Plan bits the map covers; higher state bits pass through
    /// untouched (states may be wider than the plan).
    n: u32,
}

impl PermSpec {
    /// `L⁻¹·x` over the covered bits.
    fn lin_inv(&self, x: u32) -> u32 {
        let mut r = 0u32;
        let mut rest = x;
        while rest != 0 {
            let k = rest.trailing_zeros() as usize;
            r ^= self.inv_cols[k];
            rest &= rest - 1;
        }
        r
    }

    /// Source index feeding output index `j`, identity-extended above
    /// the plan width.
    fn src(&self, j: usize) -> usize {
        let mask = (1usize << self.n) - 1;
        let low = (j & mask) as u32;
        (j & !mask) | (self.lin_inv(low) ^ self.inv_t) as usize
    }
}

thread_local! {
    /// Reusable gather buffer for permutation passes. It is swapped with
    /// the state's amplitude vector after each pass, so steady-state
    /// permutes (training loops) allocate nothing.
    static PERM_SCRATCH: RefCell<Vec<Complex64>> = const { RefCell::new(Vec::new()) };
}

/// Executes one permutation pass: gathers `out[j] = in[P⁻¹(j)]` into the
/// thread-local scratch buffer, then swaps buffers. Output-ordered, so
/// writes stream sequentially and parallel workers own disjoint output
/// chunks; the source index advances incrementally — stepping `j → j+1`
/// flips the low `tz(j+1)+1` bits, so the source moves by the XOR-prefix
/// of the inverse columns instead of a fresh matrix-vector product.
fn run_permute(state: &mut StateVector, spec: &PermSpec) {
    let amps = state.amplitudes_mut();
    let len = amps.len();
    let bits = len.trailing_zeros() as usize;
    // prefix[k] = inv_cols[0] ⊕ … ⊕ inv_cols[k], identity-extended above
    // the plan width. prefix[bits] stays 0: it is only indexed on the
    // final wrap (j+1 == a power of two ≥ the chunk end).
    let mut prefix = [0usize; 65];
    let mut acc = 0usize;
    for (k, p) in prefix.iter_mut().enumerate().take(bits) {
        acc ^= if k < spec.n as usize {
            spec.inv_cols[k] as usize
        } else {
            1usize << k
        };
        *p = acc;
    }
    let threads = if len < PARALLEL_MIN_AMPS {
        1
    } else {
        qpar::current_threads()
    };
    PERM_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        // The gather overwrites every slot, so the zero-fill only matters
        // when the buffer grows; steady-state permutes skip the memset.
        if scratch.len() != len {
            scratch.clear();
            scratch.resize(len, Complex64::ZERO);
        }
        if threads <= 1 {
            gather_permuted(amps, &mut scratch, 0, spec, &prefix);
        } else {
            // Scoped threads only: gathers read the shared input slice
            // and write disjoint output chunks — moves, never arithmetic,
            // so any chunking is trivially bit-exact.
            let chunk = len.div_ceil(threads);
            let input: &[Complex64] = amps;
            let items: Vec<(usize, &mut [Complex64])> = scratch
                .chunks_mut(chunk)
                .enumerate()
                .map(|(i, c)| (i * chunk, c))
                .collect();
            qpar::for_each_threads(threads, items, |(start, out)| {
                gather_permuted(input, out, start, spec, &prefix);
            });
        }
        std::mem::swap(amps, &mut *scratch);
    });
}

/// Gathers one output chunk starting at global index `start`.
fn gather_permuted(
    input: &[Complex64],
    out: &mut [Complex64],
    start: usize,
    spec: &PermSpec,
    prefix: &[usize; 65],
) {
    let mut src = spec.src(start);
    let mut j = start;
    for slot in out.iter_mut() {
        *slot = input[src];
        j += 1;
        src ^= prefix[j.trailing_zeros() as usize];
    }
}

/// One step of the schedule. `Tile`/`Sweep` index into [`BoundPlan`]'s
/// `sched` vector (execution order — distinct from bound order once
/// gates hop past deferred permutations).
///
/// `Permute` inlines its spec: it is the large variant, but steps live
/// in one short linear-scanned `Vec` and the spec is read every
/// execution, so boxing would trade locality for a per-bind allocation.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
enum Step {
    /// A run of gates whose operands all fit one tile: applied tile by
    /// tile in a single sweep over the state.
    Tile(Range<u32>),
    /// A gate touching a high qubit (or standing alone): one classic
    /// whole-array pass.
    Sweep(u32),
    /// One deferred basis-permutation pass (a fused CX ring / swap /
    /// X-band accumulation): a single gather sweep.
    Permute(PermSpec),
}

/// Executed plan-mode passes by step kind, and their wall time. The
/// counters mirror the deterministic traffic model ([`BoundPlan::passes`])
/// with live execution counts; `QOBS=off` skips all of them.
static OBS_SWEEP_PASSES: qobs::LazyCounter =
    qobs::LazyCounter::new("qsim_passes_total{kind=\"sweep\"}");
static OBS_TILE_PASSES: qobs::LazyCounter =
    qobs::LazyCounter::new("qsim_passes_total{kind=\"tile\"}");
static OBS_PERMUTE_PASSES: qobs::LazyCounter =
    qobs::LazyCounter::new("qsim_passes_total{kind=\"permute\"}");
static OBS_SWEEP_NS: qobs::LazyHistogram = qobs::LazyHistogram::new("qsim_sweep_ns");
static OBS_TILE_NS: qobs::LazyHistogram = qobs::LazyHistogram::new("qsim_tile_ns");
static OBS_PERMUTE_NS: qobs::LazyHistogram = qobs::LazyHistogram::new("qsim_permute_ns");
static OBS_AMP_BYTES: qobs::LazyCounter = qobs::LazyCounter::new("qsim_amp_bytes_swept_total");

/// A plan bound to a concrete parameter vector: fused matrices, kernel
/// descriptors and the pass schedule, ready to execute any number of
/// times — and to *rebind* in place ([`BoundPlan::rebind`]), so
/// bind-heavy loops (parameter-shift training does `2·sites + 1` binds
/// per step) stop paying per-bind allocation.
#[derive(Clone, Debug)]
pub struct BoundPlan<'p> {
    plan: &'p ExecPlan,
    /// Bound gates in bound (interpreter) order — the `interp`-mode
    /// oracle walks exactly this sequence, fusion or not.
    gates: Vec<BoundGate>,
    /// Gates in execution order (pure-permutation gates elided when the
    /// schedule fused them into `Step::Permute` passes).
    sched: Vec<BoundGate>,
    steps: Vec<Step>,
    /// Whether this binding was scheduled with pass fusion (resolved
    /// from [`FuseMode::current`] at bind time).
    fused: bool,
    /// Bind scratch: pending 1q fusion state, reused across rebinds.
    dense: Vec<Option<Matrix2>>,
    diag: Vec<Option<Matrix2>>,
}

impl Circuit {
    /// Compiles the circuit into a parameter-independent [`ExecPlan`]:
    /// structural validation and fixed-angle matrix materialization
    /// happen here, once, instead of on every run.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem ([`Circuit::validate`]).
    pub fn compile(&self) -> Result<ExecPlan, CircuitError> {
        self.validate(self.num_params())?;
        let mut records = Vec::with_capacity(self.len());
        let mut op_qubits = Vec::new();
        for op in self.ops() {
            let arity = op.gate.arity() as u8;
            let qubits = match arity {
                1 => [op.qubits[0], 0],
                _ => [op.qubits[0], op.qubits[1]],
            };
            op_qubits.extend_from_slice(&op.qubits);
            // Fixed angles resolve at compile time; `with_param` on a
            // non-parametrized gate is the identity, so the `Fixed(v)`
            // arm covers both shapes run_on would produce.
            let fixed = match op.param {
                Some(ParamRef::Sym { .. }) => None,
                Some(ParamRef::Fixed(v)) => Some(materialize(op.gate.with_param(v), arity)),
                None => Some(materialize(op.gate, arity)),
            };
            records.push(OpRecord {
                gate: op.gate,
                qubits,
                arity,
                param: op.param,
                fixed,
            });
        }
        Ok(ExecPlan {
            num_qubits: self.num_qubits(),
            num_params: self.num_params(),
            records,
            op_qubits,
            tile_qubits: tile_qubits(),
        })
    }
}

fn materialize(gate: Gate, arity: u8) -> FixedMat {
    match arity {
        1 => FixedMat::One(gate.matrix2()),
        _ => FixedMat::Two(gate.matrix4()),
    }
}

impl ExecPlan {
    /// Register width the plan was compiled for.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of symbolic parameters the plan reads.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Number of compiled op records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the plan holds no operations.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Binds a parameter vector: resolves angles, fuses, classifies and
    /// schedules. The result executes any number of times.
    ///
    /// # Errors
    ///
    /// [`CircuitError::ParamOutOfRange`] when the vector is shorter than
    /// the plan's parameter space, [`CircuitError::State`] on duplicate
    /// two-qubit operands.
    pub fn bind(&self, params: &[f64]) -> Result<BoundPlan<'_>, CircuitError> {
        let mut bound = BoundPlan::empty(self);
        bound.rebind(params)?;
        Ok(bound)
    }

    /// [`ExecPlan::bind`] with the angle of the op at `op_index` offset
    /// by `delta` — the shift-site patch behind the generalized
    /// parameter-shift rule.
    ///
    /// # Errors
    ///
    /// As [`ExecPlan::bind`].
    pub fn bind_shifted(
        &self,
        params: &[f64],
        op_index: usize,
        delta: f64,
    ) -> Result<BoundPlan<'_>, CircuitError> {
        let mut bound = BoundPlan::empty(self);
        bound.rebind_shifted(params, op_index, delta)?;
        Ok(bound)
    }

    /// Executes the plan on `|0…0⟩` with the given binding.
    ///
    /// # Errors
    ///
    /// As [`ExecPlan::bind`] plus execution-time state errors.
    pub fn run(&self, params: &[f64]) -> Result<StateVector, CircuitError> {
        let mut state = StateVector::zero_state(self.num_qubits);
        self.bind(params)?.run_on(&mut state)?;
        Ok(state)
    }

    /// Binds and executes on an existing state in place (one-shot
    /// convenience; loops that rebind should hold the [`BoundPlan`]).
    ///
    /// # Errors
    ///
    /// As [`ExecPlan::bind`] plus execution-time state errors.
    pub fn run_on(&self, state: &mut StateVector, params: &[f64]) -> Result<(), CircuitError> {
        self.bind(params)?.run_on(state)
    }

    /// Like [`ExecPlan::run_on`] with one op's angle offset by `delta`.
    ///
    /// # Errors
    ///
    /// As [`ExecPlan::bind_shifted`] plus execution-time state errors.
    pub fn run_on_with_op_shift(
        &self,
        state: &mut StateVector,
        params: &[f64],
        op_index: usize,
        delta: f64,
    ) -> Result<(), CircuitError> {
        self.bind_shifted(params, op_index, delta)?.run_on(state)
    }

    /// An empty, reusable [`BoundPlan`] shell whose buffers survive
    /// across [`BoundPlan::rebind`] / [`BoundPlan::rebind_shifted`]
    /// calls — the bind-scratch for loops that bind many parameter
    /// vectors against one plan (a parameter-shift gradient performs
    /// `2·sites + 1` binds per step). The shell holds no binding until
    /// the first rebind; running it executes zero gates.
    pub fn bind_scratch(&self) -> BoundPlan<'_> {
        BoundPlan::empty(self)
    }
}

impl<'p> BoundPlan<'p> {
    /// An unbound shell holding reusable buffers; filled by
    /// [`BoundPlan::rebind`].
    fn empty(plan: &'p ExecPlan) -> Self {
        BoundPlan {
            plan,
            gates: Vec::with_capacity(plan.records.len()),
            sched: Vec::with_capacity(plan.records.len()),
            steps: Vec::new(),
            fused: false,
            dense: vec![None; plan.num_qubits],
            diag: vec![None; plan.num_qubits],
        }
    }

    /// Re-binds this plan to a new parameter vector **in place**,
    /// reusing every buffer of the previous binding — the allocation-free
    /// path for bind-heavy loops (a parameter-shift gradient rebinds
    /// `2·sites + 1` times per step).
    ///
    /// # Errors
    ///
    /// As [`ExecPlan::bind`]. On error the binding is left cleared, not
    /// half-built.
    pub fn rebind(&mut self, params: &[f64]) -> Result<(), CircuitError> {
        self.rebind_impl(params, None)
    }

    /// [`BoundPlan::rebind`] with the angle of the op at `op_index`
    /// offset by `delta` (the parameter-shift patch).
    ///
    /// # Errors
    ///
    /// As [`ExecPlan::bind`].
    pub fn rebind_shifted(
        &mut self,
        params: &[f64],
        op_index: usize,
        delta: f64,
    ) -> Result<(), CircuitError> {
        self.rebind_impl(params, Some((op_index, delta)))
    }

    /// The bind-time twin of the interpreter's fused executor: identical
    /// fusion decisions and matrix-product order, but emitting bound
    /// gates instead of touching a state.
    fn rebind_impl(
        &mut self,
        params: &[f64],
        op_shift: Option<(usize, f64)>,
    ) -> Result<(), CircuitError> {
        let plan = self.plan;
        self.gates.clear();
        self.sched.clear();
        self.steps.clear();
        // Mirror `Circuit::validate(params.len())`'s parameter check (the
        // structural half already ran at compile time).
        for (i, rec) in plan.records.iter().enumerate() {
            if let Some(ParamRef::Sym { index, .. }) = rec.param {
                if index >= params.len() {
                    return Err(CircuitError::ParamOutOfRange {
                        op_index: i,
                        param_index: index,
                        num_params: params.len(),
                    });
                }
            }
        }
        let gates = &mut self.gates;
        // Pending 1q work per qubit, factored as `diag · dense` exactly
        // like the interpreter (see `Circuit::run_on` for why the
        // factoring preserves cheap kernel structure). The buffers hold
        // `None` everywhere between bindings (every path below drains
        // them), so rebinding needs no reset.
        let dense = &mut self.dense;
        let diag = &mut self.diag;
        debug_assert!(dense.iter().chain(diag.iter()).all(Option::is_none));
        let emit2 = |q: usize, m: Matrix2, gates: &mut Vec<BoundGate>| {
            gates.push(BoundGate::One {
                q,
                kernel: Kernel2::classify(&m),
                m,
            });
        };
        for (i, rec) in plan.records.iter().enumerate() {
            let shift = match op_shift {
                Some((op, delta)) if op == i => Some(delta),
                _ => None,
            };
            match rec.arity {
                1 => {
                    let q = rec.qubits[0];
                    let m = resolve2(rec, params, shift);
                    if is_diag2(&m) {
                        diag[q] = Some(match diag[q] {
                            Some(prev) => mat2_mul(&m, &prev),
                            None => m,
                        });
                    } else {
                        let m = match diag[q].take() {
                            Some(g) => mat2_mul(&m, &g),
                            None => m,
                        };
                        dense[q] = Some(match dense[q] {
                            Some(prev) => mat2_mul(&m, &prev),
                            None => m,
                        });
                    }
                }
                _ => {
                    let (a, b) = (rec.qubits[0], rec.qubits[1]);
                    if a == b {
                        // Drain the pending-1q buffers so a failed rebind
                        // leaves them clean for the next one.
                        dense.fill(None);
                        diag.fill(None);
                        return Err(CircuitError::State(StateError::DuplicateQubits(a)));
                    }
                    let mut m4 = resolve4(rec, params, shift);
                    let dense4 = is_dense4(&m4);
                    let pure_perm = is_unit_perm4(&m4);
                    for (q, bit) in [(a, 0usize), (b, 1usize)] {
                        match (dense[q].take(), diag[q].take()) {
                            (Some(d), g) => {
                                if dense4 {
                                    let whole = match g {
                                        Some(g) => mat2_mul(&g, &d),
                                        None => d,
                                    };
                                    m4 = mat4_fold1q(&m4, &whole, bit);
                                } else if pure_perm {
                                    // Mirror the interpreter: pure
                                    // permutations stay coefficient-free
                                    // so the scheduler can defer them.
                                    let whole = match g {
                                        Some(g) => mat2_mul(&g, &d),
                                        None => d,
                                    };
                                    emit2(q, whole, gates);
                                } else {
                                    emit2(q, d, gates);
                                    if let Some(g) = g {
                                        m4 = mat4_fold1q(&m4, &g, bit);
                                    }
                                }
                            }
                            (None, Some(g)) => {
                                if pure_perm {
                                    emit2(q, g, gates);
                                } else {
                                    m4 = mat4_fold1q(&m4, &g, bit);
                                }
                            }
                            (None, None) => {}
                        }
                    }
                    gates.push(BoundGate::Two {
                        qa: a,
                        qb: b,
                        kernel: Kernel4::classify(&m4),
                        m: m4,
                    });
                }
            }
        }
        for q in 0..plan.num_qubits {
            match (dense[q].take(), diag[q].take()) {
                (Some(d), Some(g)) => emit2(q, mat2_mul(&g, &d), gates),
                (Some(d), None) => emit2(q, d, gates),
                (None, Some(g)) => emit2(q, g, gates),
                (None, None) => {}
            }
        }
        self.fused = FuseMode::current() == FuseMode::On && plan.num_qubits <= MAX_PERM_QUBITS;
        self.schedule();
        Ok(())
    }

    /// Builds the pass schedule from the bound gate sequence.
    ///
    /// Without fusion: consecutive gates whose operands all fit one
    /// `2^tile_qubits` tile group into tile blocks; everything else
    /// (high-qubit gates, singleton runs) executes as a whole-array
    /// sweep — the classic schedule.
    ///
    /// With fusion, two extra rules, both arithmetic-free and therefore
    /// bit-exact:
    ///
    /// * **Pure permutations defer.** A gate that only moves amplitudes
    ///   ([`BoundGate::as_perm`]) is composed into one pending affine
    ///   index map instead of being scheduled — an entangler ring
    ///   becomes a single map.
    /// * **Disjoint arithmetic hops past.** An arithmetic gate whose
    ///   operands the pending map does not touch is scheduled *before*
    ///   the map: the map is the identity on the gate's qubits, so it
    ///   carries the gate's amplitude pairs to pairs with identical
    ///   values and roles — reordering changes no computed bit. A gate
    ///   that *does* overlap flushes the map as one [`Step::Permute`]
    ///   gather pass first.
    ///
    /// On ring ansätze this turns `N` rotations + `N` entanglers per
    /// layer from `2N` gate passes into `N` rotation visits + 1
    /// permutation pass. Maps that cancel to the identity (e.g.
    /// `Swap·Swap`) are dropped outright.
    fn schedule(&mut self) {
        let tile_qubits = self.plan.tile_qubits;
        let nq = self.plan.num_qubits;
        let fused = self.fused;
        let gates = &self.gates;
        let sched = &mut self.sched;
        let steps = &mut self.steps;
        let mut run_start: Option<u32> = None;
        let close_run = |start: &mut Option<u32>, end: u32, steps: &mut Vec<Step>| {
            if let Some(s) = start.take() {
                if (end - s) as usize >= MIN_TILE_GROUP {
                    steps.push(Step::Tile(s..end));
                } else {
                    for g in s..end {
                        steps.push(Step::Sweep(g));
                    }
                }
            }
        };
        let mut perm = AffinePerm::identity(nq);
        let mut touched: u32 = 0;
        for gate in gates {
            if fused {
                if let Some((support, gp)) = gate.as_perm(nq) {
                    perm = gp.after(&perm);
                    touched |= support;
                    continue;
                }
            }
            if touched != 0 && gate.support_mask() & touched != 0 {
                close_run(&mut run_start, sched.len() as u32, steps);
                if !perm.is_identity() {
                    steps.push(Step::Permute(perm.inverse_spec()));
                }
                perm = AffinePerm::identity(nq);
                touched = 0;
            }
            let idx = sched.len() as u32;
            sched.push(*gate);
            if gate.max_qubit() < tile_qubits {
                run_start.get_or_insert(idx);
            } else {
                close_run(&mut run_start, idx, steps);
                steps.push(Step::Sweep(idx));
            }
        }
        close_run(&mut run_start, sched.len() as u32, steps);
        if !perm.is_identity() {
            steps.push(Step::Permute(perm.inverse_spec()));
        }
    }
}

/// Resolves one 1q record's numeric matrix, reusing the compile-time
/// matrix when no angle resolution is needed.
fn resolve2(rec: &OpRecord, params: &[f64], shift: Option<f64>) -> Matrix2 {
    match (shift, rec.fixed) {
        (None, Some(FixedMat::One(m))) => m,
        _ => {
            let angle =
                rec.param.map(|p| p.resolve(params)).unwrap_or_default() + shift.unwrap_or(0.0);
            match rec.param {
                Some(_) => rec.gate.with_param(angle).matrix2(),
                None => rec.gate.matrix2(),
            }
        }
    }
}

/// Resolves one 2q record's numeric matrix (see [`resolve2`]).
fn resolve4(rec: &OpRecord, params: &[f64], shift: Option<f64>) -> Matrix4 {
    match (shift, rec.fixed) {
        (None, Some(FixedMat::Two(m))) => m,
        _ => {
            let angle =
                rec.param.map(|p| p.resolve(params)).unwrap_or_default() + shift.unwrap_or(0.0);
            match rec.param {
                Some(_) => rec.gate.with_param(angle).matrix4(),
                None => rec.gate.matrix4(),
            }
        }
    }
}

impl BoundPlan<'_> {
    /// Register width of the underlying plan.
    pub fn num_qubits(&self) -> usize {
        self.plan.num_qubits
    }

    /// Number of bound (post-fusion) gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of full passes over the state this plan will make — the
    /// figure tiling minimizes (one per tile block + one per sweep gate
    /// + one per fused permutation).
    pub fn num_passes(&self) -> usize {
        self.steps.len()
    }

    /// Whether this binding was scheduled with pass fusion.
    pub fn fused(&self) -> bool {
        self.fused
    }

    /// Per-gate pass count under the classic one-sweep-per-gate traffic
    /// model: one pass per scheduled arithmetic gate visit plus one per
    /// fused permutation pass. This is the counter pass fusion drives
    /// down — a rotation band + entangler ring layer costs `2N` here
    /// without fusion and `N + 1` with it — and the figure
    /// `bench_parallel` records as `passes_per_layer`.
    pub fn passes(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Tile(r) => (r.end - r.start) as usize,
                Step::Sweep(_) | Step::Permute(_) => 1,
            })
            .sum()
    }

    /// Deterministic model of the amplitude bytes one plan-mode
    /// execution moves on a `num_qubits()`-wide state: 32 bytes per
    /// amplitude a kernel reads *and* writes, with structure credits —
    /// diagonal kernels only touch the rows whose coefficient is not
    /// exactly 1, transpositions move half of each quad, a permutation
    /// pass reads and writes the whole array once. A counter, not a
    /// timer: it depends only on the schedule, so tests can pin it.
    pub fn amp_bytes_swept(&self) -> u64 {
        let amps = 1u64 << self.plan.num_qubits;
        self.steps
            .iter()
            .map(|s| match s {
                Step::Tile(r) => self.sched[r.start as usize..r.end as usize]
                    .iter()
                    .map(|g| gate_bytes(g, amps))
                    .sum(),
                Step::Sweep(g) => gate_bytes(&self.sched[*g as usize], amps),
                Step::Permute(_) => 32 * amps,
            })
            .sum()
    }

    /// Executes the bound plan on an existing state in place.
    ///
    /// Respects [`ExecMode`]: in `interp` mode every gate runs as a
    /// whole-array sweep (the pre-tiling behavior); in `plan` mode tile
    /// blocks run cache-blocked. Both produce bit-identical amplitudes.
    ///
    /// # Errors
    ///
    /// [`StateError::QubitOutOfRange`] (wrapped) when the state is
    /// narrower than an operand qubit — checked up front for every op,
    /// like the interpreter, so a failing run never half-evolves the
    /// state.
    pub fn run_on(&self, state: &mut StateVector) -> Result<(), CircuitError> {
        let width = state.num_qubits();
        for &q in &self.plan.op_qubits {
            if q >= width {
                return Err(CircuitError::State(StateError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: width,
                }));
            }
        }
        if ExecMode::current() == ExecMode::Interp {
            for gate in &self.gates {
                self.sweep(state, gate);
            }
            return Ok(());
        }
        // One mode load for the whole execution; `QOBS=off` pays nothing
        // per pass.
        if !qobs::enabled() {
            for step in &self.steps {
                match step {
                    Step::Sweep(g) => self.sweep(state, &self.sched[*g as usize]),
                    Step::Tile(r) => {
                        self.run_tiled(state, &self.sched[r.start as usize..r.end as usize])
                    }
                    Step::Permute(spec) => run_permute(state, spec),
                }
            }
            return Ok(());
        }
        for step in &self.steps {
            let start = std::time::Instant::now();
            match step {
                Step::Sweep(g) => {
                    self.sweep(state, &self.sched[*g as usize]);
                    OBS_SWEEP_PASSES.inc();
                    OBS_SWEEP_NS.record_duration(start.elapsed());
                }
                Step::Tile(r) => {
                    self.run_tiled(state, &self.sched[r.start as usize..r.end as usize]);
                    OBS_TILE_PASSES.inc();
                    OBS_TILE_NS.record_duration(start.elapsed());
                }
                Step::Permute(spec) => {
                    run_permute(state, spec);
                    OBS_PERMUTE_PASSES.inc();
                    OBS_PERMUTE_NS.record_duration(start.elapsed());
                }
            }
        }
        // The live counterpart of the deterministic traffic model the
        // benches stamp: bytes actually swept by this execution.
        OBS_AMP_BYTES.add(self.amp_bytes_swept());
        Ok(())
    }

    /// One whole-array pass through the classic threaded kernels, with
    /// the bind-time kernel descriptor (no per-call reclassification).
    fn sweep(&self, state: &mut StateVector, gate: &BoundGate) {
        match gate {
            BoundGate::One { q, kernel, m } => state.apply_matrix2_with(*kernel, m, *q),
            BoundGate::Two { qa, qb, kernel, m } => state.apply_matrix4_with(*kernel, m, *qa, *qb),
        }
    }

    /// One sweep over the state applying a whole tile block: every tile
    /// is loaded into cache once and receives all gates of the block.
    fn run_tiled(&self, state: &mut StateVector, gates: &[BoundGate]) {
        let amps = state.amplitudes_mut();
        let n = amps.len();
        let tile = (1usize << self.plan.tile_qubits).min(n);
        // SIMD level resolved here, on the calling thread, before any
        // fan-out — pool workers cannot see the caller's thread-local
        // override.
        let lvl = qsimd::active();
        let threads = if n < PARALLEL_MIN_AMPS {
            1
        } else {
            qpar::current_threads()
        };
        let n_tiles = n / tile;
        if threads <= 1 || n_tiles <= 1 {
            for region in amps.chunks_mut(tile) {
                run_block_region(gates, region, tile, lvl);
            }
            return;
        }
        // Whole tiles per worker stripe; per-tile arithmetic is
        // independent, so any stripe assignment is bit-exact.
        let stripe = n_tiles.div_ceil(threads).max(1) * tile;
        if n <= POOLED_TILE_MAX_AMPS && qpar::pool::active(threads) {
            // Pooled executor: ownership-passing — each worker receives
            // its stripe by value and returns it transformed (two copy
            // passes buy spawn-free fan-out; the scoped path below stays
            // zero-copy as the fallback).
            let block: Arc<Vec<BoundGate>> = Arc::new(gates.to_vec());
            let stripes: Vec<Vec<Complex64>> = amps.chunks(stripe).map(<[_]>::to_vec).collect();
            let parts = qpar::map_owned(threads, stripes, move |mut part| {
                run_block_region(&block, &mut part, tile, lvl);
                part
            });
            let mut offset = 0;
            for part in parts {
                amps[offset..offset + part.len()].copy_from_slice(&part);
                offset += part.len();
            }
        } else {
            let items: Vec<&mut [Complex64]> = amps.chunks_mut(stripe).collect();
            qpar::for_each_threads(threads, items, |chunk| {
                run_block_region(gates, chunk, tile, lvl);
            });
        }
    }
}

/// Amplitude bytes one whole-array visit of `gate` moves under the
/// [`BoundPlan::amp_bytes_swept`] model (32 bytes = one `Complex64`
/// read + write).
fn gate_bytes(gate: &BoundGate, amps: u64) -> u64 {
    let one = Complex64::ONE;
    match gate {
        BoundGate::One { kernel, m, .. } => match kernel {
            // Each non-unit diagonal entry scales half the array.
            Kernel2::Diag => {
                let moving = (m[0][0] != one) as u64 + (m[1][1] != one) as u64;
                moving * (amps / 2) * 32
            }
            _ => amps * 32,
        },
        BoundGate::Two { kernel, .. } => match kernel {
            // Each non-unit diagonal entry scales a quarter of the array.
            Kernel4::Diag(d) => d.iter().filter(|c| **c != one).count() as u64 * (amps / 4) * 32,
            // The swapped pair always moves (half the array); fixed rows
            // only when scaled.
            Kernel4::Transposition { fixed, .. } => {
                (amps / 2) * 32
                    + fixed.iter().filter(|c| **c != one).count() as u64 * (amps / 4) * 32
            }
            _ => amps * 32,
        },
    }
}

/// Applies all gates of a block to a contiguous region, tile by tile.
fn run_block_region(gates: &[BoundGate], region: &mut [Complex64], tile: usize, lvl: qsimd::Level) {
    for tile_region in region.chunks_mut(tile) {
        for gate in gates {
            gate.run_region(lvl, tile_region);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    const EPS: f64 = 1e-12;

    fn bits(s: &StateVector) -> Vec<(u64, u64)> {
        s.amplitudes()
            .iter()
            .map(|a| (a.re.to_bits(), a.im.to_bits()))
            .collect()
    }

    fn sample_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        let mut p = 0;
        for layer in 0..3 {
            for q in 0..n {
                c.push_sym(Gate::Ry(0.0), &[q], p);
                p += 1;
                c.push_sym(Gate::Rz(0.0), &[q], p);
                p += 1;
            }
            for q in 0..n - 1 {
                c.push_fixed(Gate::Cx, &[q, q + 1]);
            }
            if layer == 1 {
                c.push_fixed(Gate::Swap, &[0, n - 1]);
                c.push_sym_scaled(Gate::Rzz(0.0), &[1, n - 2], 0, 0.5);
            }
        }
        c
    }

    #[test]
    fn plan_matches_interpreter_exactly() {
        let c = sample_circuit(6);
        let params: Vec<f64> = (0..c.num_params()).map(|i| 0.17 * i as f64 - 1.0).collect();
        let interp = with_exec_mode(ExecMode::Interp, || c.run(&params).unwrap());
        let plan = c.compile().unwrap();
        let planned = plan.run(&params).unwrap();
        assert_eq!(bits(&interp), bits(&planned));
    }

    #[test]
    fn plan_reuse_across_parameter_vectors() {
        let c = sample_circuit(4);
        let plan = c.compile().unwrap();
        for seed in 0..4u64 {
            let mut rng = Xoshiro256::seed_from(seed);
            let params: Vec<f64> = (0..c.num_params())
                .map(|_| rng.next_f64() * 4.0 - 2.0)
                .collect();
            let interp = with_exec_mode(ExecMode::Interp, || c.run(&params).unwrap());
            assert_eq!(bits(&interp), bits(&plan.run(&params).unwrap()));
        }
    }

    #[test]
    fn shifted_bind_matches_interpreter_shift() {
        let c = sample_circuit(4);
        let plan = c.compile().unwrap();
        let params: Vec<f64> = (0..c.num_params()).map(|i| 0.3 + 0.05 * i as f64).collect();
        let delta = std::f64::consts::FRAC_PI_2;
        for (op, _) in c.sym_ops() {
            let interp =
                with_exec_mode(ExecMode::Interp, || c.run_with_op_shift(&params, op, delta))
                    .unwrap();
            let mut s = StateVector::zero_state(4);
            plan.run_on_with_op_shift(&mut s, &params, op, delta)
                .unwrap();
            assert_eq!(bits(&interp), bits(&s), "op {op}");
        }
    }

    #[test]
    fn tiling_kicks_in_for_low_qubit_runs() {
        // All operands below the tile exponent → one tile block, one pass
        // (classic schedule; fusion would lift the CXs into a permute).
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.push_fixed(Gate::H, &[q]);
        }
        c.push_fixed(Gate::Cx, &[0, 1]);
        c.push_fixed(Gate::Cx, &[2, 3]);
        let plan = c.compile().unwrap();
        let bound = with_fuse_mode(FuseMode::Off, || plan.bind(&[]).unwrap());
        assert!(!bound.fused());
        assert_eq!(bound.num_passes(), 1, "all-low circuit must fully tile");
        assert!(bound.num_gates() >= 2);
        // Fused: the H band tiles, both CXs become one permutation pass.
        let fused = with_fuse_mode(FuseMode::On, || plan.bind(&[]).unwrap());
        assert!(fused.fused());
        assert_eq!(fused.num_passes(), 2, "H tile + one permute");
        assert_eq!(fused.passes(), 5, "4 H visits + 1 permute");
        let a = with_fuse_mode(FuseMode::Off, || plan.run(&[]).unwrap());
        let b = with_fuse_mode(FuseMode::On, || plan.run(&[]).unwrap());
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn high_qubit_gates_are_sweep_boundaries() {
        // A 15-qubit circuit with the default tile exponent of 13: gates
        // on qubits 13/14 must split the tile runs.
        let mut c = Circuit::new(15);
        c.push_fixed(Gate::H, &[0]);
        c.push_fixed(Gate::Cx, &[0, 1]);
        c.push_fixed(Gate::Cx, &[13, 14]); // sweep boundary
        c.push_fixed(Gate::H, &[2]);
        c.push_fixed(Gate::Cx, &[2, 3]);
        let plan = c.compile().unwrap();
        let bound = with_fuse_mode(FuseMode::Off, || plan.bind(&[]).unwrap());
        assert_eq!(bound.num_passes(), 3, "tile, sweep, tile");
        let s = with_fuse_mode(FuseMode::Off, || plan.run(&[]).unwrap());
        let interp = with_exec_mode(ExecMode::Interp, || c.run(&[]).unwrap());
        assert_eq!(bits(&interp), bits(&s));
        // Fused: every CX joins one permutation — even the high-qubit
        // one, since deferred maps never touch memory until the flush.
        let fused = with_fuse_mode(FuseMode::On, || plan.bind(&[]).unwrap());
        assert_eq!(fused.num_passes(), 2, "H tile + one permute");
        assert_eq!(fused.passes(), 3, "2 H visits + 1 permute");
        let sf = with_fuse_mode(FuseMode::On, || plan.run(&[]).unwrap());
        assert_eq!(bits(&interp), bits(&sf));
    }

    #[test]
    fn ring_layer_fuses_to_n_plus_one_passes() {
        // One hardware-efficient layer: a rotation band then a CX ring.
        // Fused pass count must hit exactly N + 1 (N rotation visits +
        // one permutation); unfused it is 2N.
        let n = 6;
        let mut c = Circuit::new(n);
        let mut p = 0;
        for q in 0..n {
            c.push_sym(Gate::Ry(0.0), &[q], p);
            c.push_sym(Gate::Rz(0.0), &[q], p + 1);
            p += 2;
        }
        for q in 0..n {
            c.push_fixed(Gate::Cx, &[q, (q + 1) % n]);
        }
        let params: Vec<f64> = (0..p).map(|i| 0.2 + 0.1 * i as f64).collect();
        let plan = c.compile().unwrap();
        let fused = with_fuse_mode(FuseMode::On, || plan.bind(&params).unwrap());
        assert_eq!(fused.passes(), n + 1, "N rotation visits + 1 permute");
        let unfused = with_fuse_mode(FuseMode::Off, || plan.bind(&params).unwrap());
        assert_eq!(unfused.passes(), 2 * n, "per-gate model: 2N");
        assert!(fused.amp_bytes_swept() < unfused.amp_bytes_swept());
        let interp = with_exec_mode(ExecMode::Interp, || c.run(&params).unwrap());
        let got = with_fuse_mode(FuseMode::On, || plan.run(&params).unwrap());
        assert_eq!(bits(&interp), bits(&got));
    }

    #[test]
    fn arithmetic_rings_do_not_fuse() {
        // CZ and Rzz rings scale amplitudes (diagonal kernels, not pure
        // permutations): fusion must leave them alone — a scalar multiply
        // does not commute bit-wise with the rotation band.
        let n = 4;
        for ring in ["cz", "rzz"] {
            let mut c = Circuit::new(n);
            for q in 0..n {
                c.push_fixed(Gate::Ry(0.3), &[q]);
            }
            for q in 0..n {
                match ring {
                    "cz" => c.push_fixed(Gate::Cz, &[q, (q + 1) % n]),
                    _ => c.push_fixed(Gate::Rzz(0.7), &[q, (q + 1) % n]),
                };
            }
            let plan = c.compile().unwrap();
            let fused = with_fuse_mode(FuseMode::On, || plan.bind(&[]).unwrap());
            let unfused = with_fuse_mode(FuseMode::Off, || plan.bind(&[]).unwrap());
            assert_eq!(
                fused.passes(),
                unfused.passes(),
                "{ring} ring must not fuse"
            );
            assert!(fused.steps.iter().all(|s| !matches!(s, Step::Permute(_))));
        }
    }

    #[test]
    fn overlapping_rotation_flushes_the_pending_permutation() {
        // Ry(0) · CX(0,1) · Ry(0): the second rotation touches a qubit
        // the deferred map moved, so the map must flush between them.
        let mut c = Circuit::new(2);
        c.push_sym(Gate::Ry(0.0), &[0], 0);
        c.push_fixed(Gate::Cx, &[0, 1]);
        c.push_sym(Gate::Ry(0.0), &[0], 1);
        let plan = c.compile().unwrap();
        let bound = with_fuse_mode(FuseMode::On, || plan.bind(&[0.4, 0.9]).unwrap());
        assert_eq!(bound.passes(), 3, "rotation, permute, rotation");
        assert_eq!(bound.num_passes(), 3);
        let interp = with_exec_mode(ExecMode::Interp, || c.run(&[0.4, 0.9]).unwrap());
        let got = with_fuse_mode(FuseMode::On, || plan.run(&[0.4, 0.9]).unwrap());
        assert_eq!(bits(&interp), bits(&got));
    }

    #[test]
    fn cancelling_permutations_cost_nothing() {
        // Swap·Swap composes to the identity: the scheduler must drop the
        // permutation pass entirely.
        let mut c = Circuit::new(2);
        c.push_fixed(Gate::H, &[0]);
        c.push_fixed(Gate::Swap, &[0, 1]);
        c.push_fixed(Gate::Swap, &[0, 1]);
        let plan = c.compile().unwrap();
        let bound = with_fuse_mode(FuseMode::On, || plan.bind(&[]).unwrap());
        assert_eq!(bound.passes(), 1, "just the H");
        let interp = with_exec_mode(ExecMode::Interp, || c.run(&[]).unwrap());
        let got = with_fuse_mode(FuseMode::On, || plan.run(&[]).unwrap());
        assert_eq!(bits(&interp), bits(&got));
    }

    #[test]
    fn x_bands_and_swaps_fuse_with_cx() {
        // A mixed pure-permutation tail (X gates, Swap, CX chain) becomes
        // one gather pass and stays bit-exact against the interpreter.
        let mut c = Circuit::new(5);
        for q in 0..5 {
            c.push_fixed(Gate::H, &[q]);
        }
        c.push_fixed(Gate::Cx, &[0, 1]);
        c.push_fixed(Gate::Swap, &[1, 3]);
        c.push_fixed(Gate::Cx, &[3, 4]);
        c.push_fixed(Gate::X, &[2]);
        c.push_fixed(Gate::Cx, &[4, 0]);
        let plan = c.compile().unwrap();
        let bound = with_fuse_mode(FuseMode::On, || plan.bind(&[]).unwrap());
        assert_eq!(bound.passes(), 6, "5 H visits + 1 permute");
        let interp = with_exec_mode(ExecMode::Interp, || c.run(&[]).unwrap());
        let got = with_fuse_mode(FuseMode::On, || plan.run(&[]).unwrap());
        assert_eq!(bits(&interp), bits(&got));
    }

    #[test]
    fn rebind_reuses_buffers_and_matches_fresh_binds() {
        let c = sample_circuit(5);
        let plan = c.compile().unwrap();
        let mut bound = plan.bind(&vec![0.0; c.num_params()]).unwrap();
        for seed in 0..4u64 {
            let mut rng = Xoshiro256::seed_from(seed);
            let params: Vec<f64> = (0..c.num_params())
                .map(|_| rng.next_f64() * 4.0 - 2.0)
                .collect();
            bound.rebind(&params).unwrap();
            let mut s = StateVector::zero_state(5);
            bound.run_on(&mut s).unwrap();
            let fresh = plan.run(&params).unwrap();
            assert_eq!(bits(&fresh), bits(&s), "seed {seed}");
            // Shifted rebind too (the gradient-loop pattern).
            let (op, _) = c.sym_ops()[seed as usize % c.sym_ops().len()];
            bound.rebind_shifted(&params, op, 0.7).unwrap();
            let mut s = StateVector::zero_state(5);
            bound.run_on(&mut s).unwrap();
            let mut fresh = StateVector::zero_state(5);
            plan.run_on_with_op_shift(&mut fresh, &params, op, 0.7)
                .unwrap();
            assert_eq!(bits(&fresh), bits(&s), "shifted seed {seed}");
        }
    }

    #[test]
    fn failed_rebind_leaves_scratch_clean() {
        // A rebind that errors (missing params) must not poison the
        // pending-1q buffers for the next rebind.
        let mut c = Circuit::new(2);
        c.push_sym(Gate::Ry(0.0), &[0], 0);
        c.push_sym(Gate::Rz(0.0), &[1], 1);
        let plan = c.compile().unwrap();
        let mut bound = plan.bind(&[0.3, 0.4]).unwrap();
        assert!(bound.rebind(&[0.1]).is_err());
        bound.rebind(&[0.5, 0.6]).unwrap();
        let mut s = StateVector::zero_state(2);
        bound.run_on(&mut s).unwrap();
        assert_eq!(bits(&plan.run(&[0.5, 0.6]).unwrap()), bits(&s));
    }

    #[test]
    fn fuse_mode_override_nests_and_restores() {
        let ambient = FuseMode::current();
        with_fuse_mode(FuseMode::Off, || {
            assert_eq!(FuseMode::current(), FuseMode::Off);
            with_fuse_mode(FuseMode::On, || {
                assert_eq!(FuseMode::current(), FuseMode::On);
            });
            assert_eq!(FuseMode::current(), FuseMode::Off);
        });
        assert_eq!(FuseMode::current(), ambient);
    }

    #[test]
    fn plan_errors_match_interpreter_errors() {
        // Missing parameters.
        let mut c = Circuit::new(1);
        c.push_sym(Gate::Rx(0.0), &[0], 2);
        let plan = c.compile().unwrap();
        assert!(matches!(
            plan.run(&[0.1]).unwrap_err(),
            CircuitError::ParamOutOfRange { param_index: 2, .. }
        ));
        // Narrow state: same error, and the state stays untouched.
        let mut c2 = Circuit::new(3);
        c2.push_fixed(Gate::H, &[0]);
        c2.push_fixed(Gate::Rz(0.4), &[2]);
        let plan2 = c2.compile().unwrap();
        let mut narrow = StateVector::zero_state(1);
        match plan2.run_on(&mut narrow, &[]) {
            Err(CircuitError::State(StateError::QubitOutOfRange {
                qubit: 2,
                num_qubits: 1,
            })) => {}
            other => panic!("expected QubitOutOfRange, got {other:?}"),
        }
        assert!((narrow.probability(0) - 1.0).abs() < EPS, "no half-run");
        // Structural problems surface at compile time.
        let mut c3 = Circuit::new(1);
        c3.push_fixed(Gate::X, &[1]);
        assert!(matches!(
            c3.compile(),
            Err(CircuitError::QubitOutOfRange { qubit: 1, .. })
        ));
    }

    #[test]
    fn empty_plan_runs() {
        let c = Circuit::new(3);
        let plan = c.compile().unwrap();
        assert!(plan.is_empty());
        let s = plan.run(&[]).unwrap();
        assert!((s.probability(0) - 1.0).abs() < EPS);
    }

    #[test]
    fn wider_state_than_plan_works() {
        let mut c = Circuit::new(2);
        c.push_fixed(Gate::X, &[1]);
        let plan = c.compile().unwrap();
        let mut wide = StateVector::zero_state(4);
        plan.run_on(&mut wide, &[]).unwrap();
        assert!((wide.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn exec_mode_override_nests_and_restores() {
        let ambient = ExecMode::current();
        with_exec_mode(ExecMode::Interp, || {
            assert_eq!(ExecMode::current(), ExecMode::Interp);
            with_exec_mode(ExecMode::Plan, || {
                assert_eq!(ExecMode::current(), ExecMode::Plan);
            });
            assert_eq!(ExecMode::current(), ExecMode::Interp);
        });
        assert_eq!(ExecMode::current(), ambient);
    }
}
