//! # qsim — deterministic state-vector quantum simulator
//!
//! The quantum substrate for the `qnn-checkpoint` project: a small,
//! dependency-light simulator whose every stochastic draw flows through a
//! serializable RNG ([`rng::Xoshiro256`]). That design choice is what makes
//! *exact resume* of hybrid quantum-classical training — the contribution of
//! the reproduced paper — a testable property instead of a hope.
//!
//! ## What's here
//!
//! * [`complex`] — minimal complex arithmetic ([`complex::Complex64`]).
//! * [`rng`] — xoshiro256\*\* with byte-exact state capture.
//! * [`state`] — the `2^n`-amplitude [`state::StateVector`] and gate kernels.
//! * [`gate`] — the serializable gate set and its matrices.
//! * [`circuit`] — parametrized circuits ([`circuit::Circuit`]) as data.
//! * [`plan`] — compiled execution plans ([`plan::ExecPlan`]): compile a
//!   circuit once, bind parameter vectors many times, execute through a
//!   cache-blocked tile schedule with pass-fusion (pure-permutation
//!   gates like CX rings execute as one deferred gather pass;
//!   `QSIM_FUSE=off` forces the per-gate schedule). The default executor
//!   behind [`circuit::Circuit::run_on`] (`QSIM_EXEC` selects; see
//!   `crates/qsim/README.md`).
//! * [`pauli`] — Pauli-string observables ([`pauli::PauliSum`]).
//! * [`measure`] — shot-based estimation ([`measure::EvalMode`]).
//! * [`noise`] — stochastic trajectory noise ([`noise::NoiseModel`]).
//! * [`density`] — exact density-matrix cross-checker for small registers.
//!
//! ## Threading model
//!
//! Gate kernels, expectation values and state reductions run multi-threaded
//! through the shared [`qpar`] layer. The thread count resolves, in order:
//! a [`qpar::with_threads`] scope override, the [`qpar::set_global_threads`]
//! builder value, the `QCHECK_THREADS` environment variable, and finally the
//! hardware parallelism. Three guarantees hold at every thread count:
//!
//! 1. **Bit-exactness** — parallel results are bit-identical to the serial
//!    path. Gate kernels partition the amplitude array into disjoint
//!    pair/quad regions (each update independent); reductions sum over a
//!    *fixed* stripe partition combined in index order, never in thread
//!    completion order (see [`state::SUM_STRIPES`]).
//! 2. **Serial thresholds** — registers below [`state::PARALLEL_MIN_AMPS`]
//!    amplitudes (gates) / [`state::STRIPED_SUM_MIN_AMPS`] (reductions)
//!    always take the serial path, so small circuits never pay scoped-thread
//!    overhead.
//! 3. **Shot streams stay serial** — [`measure`] in [`measure::EvalMode::Shots`]
//!    mode draws from a single sequential RNG stream and is never fanned
//!    out; only exact (RNG-free) evaluation parallelizes.
//!
//! ## Quickstart
//!
//! ```
//! use qsim::circuit::Circuit;
//! use qsim::gate::Gate;
//! use qsim::measure::{evaluate_observable, EvalMode};
//! use qsim::pauli::PauliSum;
//! use qsim::rng::Xoshiro256;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A parametrized two-qubit circuit …
//! let mut circuit = Circuit::new(2);
//! circuit.push_fixed(Gate::H, &[0]);
//! circuit.push_sym(Gate::Ry(0.0), &[1], 0);
//! circuit.push_fixed(Gate::Cx, &[0, 1]);
//!
//! // … evaluated against a transverse-field Ising Hamiltonian with shots.
//! let h = PauliSum::transverse_ising(2, 1.0, 0.5);
//! let state = circuit.run(&[0.3])?;
//! let mut rng = Xoshiro256::seed_from(7);
//! let (energy, shots_used) =
//!     evaluate_observable(&state, &h, EvalMode::Shots(1024), &mut rng)?;
//! assert!(shots_used > 0);
//! assert!(energy.is_finite());
//! # Ok(())
//! # }
//! ```

// Deny rather than forbid: `complex::Complex64::{flatten, flatten_mut}`
// carry the crate's single `#[allow(unsafe_code)]` — a layout-asserted
// reinterpret of `&[Complex64]` as `&[f64]` for the `qsimd` kernels. All
// actual intrinsics live in the `qsimd` shim crate.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod complex;
pub mod density;
pub mod gate;
pub mod measure;
pub mod noise;
pub mod pauli;
pub mod plan;
pub mod rng;
pub mod state;
#[cfg(feature = "testing")]
pub mod testing;
pub mod text;

pub use circuit::{Circuit, CircuitError, Op, ParamRef};
pub use complex::Complex64;
pub use gate::Gate;
pub use measure::{evaluate_observable, EvalMode};
pub use noise::NoiseModel;
pub use pauli::{Pauli, PauliString, PauliSum};
pub use plan::{BoundPlan, ExecMode, ExecPlan};
pub use rng::{RngState, Xoshiro256};
pub use state::{StateError, StateVector};
