//! Property suite: compiled-plan execution is bit-identical to the
//! op-by-op interpreter.
//!
//! Random circuits (fixed and symbolic gates) × random parameter
//! vectors × 1/2/4/8 threads × both qpar executors (persistent pool and
//! scoped threads): `Circuit::compile()` + plan execution must
//! reproduce the interpreter's amplitudes bit for bit, including
//! parameter-shifted runs. The reference bits always come from the
//! serial interpreter (`ExecMode::Interp`, one thread).

use proptest::prelude::*;

use qsim::circuit::Circuit;
use qsim::plan::{with_exec_mode, ExecMode};
use qsim::testing::arb_op;
use qsim::StateVector;

const N: usize = 6;

/// Random op sequence where parametrized gates may read a symbolic
/// parameter: `(ops, sym_choices)` zip into a circuit builder.
fn arb_plan_circuit() -> impl Strategy<Value = (Circuit, Vec<f64>)> {
    let ops = prop::collection::vec((arb_op(N), any::<bool>()), 1..24);
    let params = prop::collection::vec(-3.0..3.0f64, 4);
    (ops, params).prop_map(|(ops, params)| {
        let mut c = Circuit::new(N);
        let mut sym = 0usize;
        for ((gate, qubits), make_sym) in ops {
            if make_sym && gate.is_parametrized() {
                c.push_sym(gate, &qubits, sym % params.len());
                sym += 1;
            } else {
                c.push_fixed(gate, &qubits);
            }
        }
        (c, params)
    })
}

fn bits(s: &StateVector) -> Vec<(u64, u64)> {
    s.amplitudes()
        .iter()
        .map(|a| (a.re.to_bits(), a.im.to_bits()))
        .collect()
}

/// Serial-interpreter reference bits for a (possibly shifted) run.
fn reference(c: &Circuit, params: &[f64], shift: Option<(usize, f64)>) -> Vec<(u64, u64)> {
    with_exec_mode(ExecMode::Interp, || {
        qpar::with_threads(1, || {
            let mut s = StateVector::zero_state(c.num_qubits());
            match shift {
                Some((op, delta)) => c.run_on_with_op_shift(&mut s, params, op, delta).unwrap(),
                None => c.run_on(&mut s, params).unwrap(),
            }
            bits(&s)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Plan execution reproduces the interpreter bit for bit at every
    /// thread count, on both the pooled and the scoped-thread executor.
    #[test]
    fn plan_matches_interpreter_across_threads_and_executors(
        (c, params) in arb_plan_circuit(),
    ) {
        let want = reference(&c, &params, None);
        let plan = c.compile().unwrap();
        for threads in [1usize, 2, 4, 8] {
            for pooled in [true, false] {
                let got = qpar::with_threads(threads, || {
                    qpar::with_pool(pooled, || bits(&plan.run(&params).unwrap()))
                });
                prop_assert_eq!(
                    &got, &want,
                    "threads={} pooled={}", threads, pooled
                );
            }
        }
        // The `Circuit::run_on` wrapper (plan-mode dispatch) agrees too.
        let via_wrapper = with_exec_mode(ExecMode::Plan, || {
            qpar::with_threads(2, || bits(&c.run(&params).unwrap()))
        });
        prop_assert_eq!(&via_wrapper, &want);
    }

    /// Shifted runs (the parameter-shift primitive) agree bit for bit:
    /// shift sites patch resolved angles at bind time.
    #[test]
    fn shifted_plan_matches_interpreter(
        (c, params) in arb_plan_circuit(),
        delta in -2.0..2.0f64,
        site_pick in any::<prop::sample::Index>(),
    ) {
        let sites = c.sym_ops();
        if sites.is_empty() {
            // Nothing to shift in this sample; trivially true.
            return Ok(());
        }
        let (op_index, _) = sites[site_pick.index(sites.len())];
        let want = reference(&c, &params, Some((op_index, delta)));
        let plan = c.compile().unwrap();
        for threads in [1usize, 4] {
            for pooled in [true, false] {
                let got = qpar::with_threads(threads, || {
                    qpar::with_pool(pooled, || {
                        let mut s = StateVector::zero_state(c.num_qubits());
                        plan.run_on_with_op_shift(&mut s, &params, op_index, delta).unwrap();
                        bits(&s)
                    })
                });
                prop_assert_eq!(
                    &got, &want,
                    "threads={} pooled={} op={}", threads, pooled, op_index
                );
            }
        }
        // `run_shifted` (whole-parameter shift) dispatches through the
        // plan by default; cross-check against the interpreter.
        let (_, param_index) = sites[site_pick.index(sites.len())];
        let shifted_interp = with_exec_mode(ExecMode::Interp, || {
            qpar::with_threads(1, || bits(&c.run_shifted(&params, param_index, delta).unwrap()))
        });
        let shifted_plan = with_exec_mode(ExecMode::Plan, || {
            qpar::with_threads(1, || bits(&c.run_shifted(&params, param_index, delta).unwrap()))
        });
        prop_assert_eq!(&shifted_plan, &shifted_interp);
    }

    /// Binding one plan repeatedly with different parameter vectors is
    /// equivalent to interpreting each vector from scratch (plan reuse —
    /// the training-loop usage pattern).
    #[test]
    fn plan_reuse_across_bindings(
        (c, params_a) in arb_plan_circuit(),
        params_b in prop::collection::vec(-3.0..3.0f64, 4),
    ) {
        let plan = c.compile().unwrap();
        for p in [&params_a, &params_b] {
            let want = reference(&c, p, None);
            prop_assert_eq!(bits(&plan.run(p).unwrap()), want);
        }
    }

    /// Every `QSIM_SIMD` level produces bit-identical amplitudes *and*
    /// bit-identical reductions: the vector kernels in `qsimd` are
    /// drop-in replacements for the scalar arms, not approximations.
    /// Forcing `Level::Scalar` via `with_level` must match the detected
    /// level on both executors and under the pooled fan-out (the level
    /// is resolved on the calling thread before workers spawn).
    #[test]
    fn plan_matches_across_simd_levels((c, params) in arb_plan_circuit()) {
        let detected = qsimd::detected();
        let run_at = |level: qsimd::Level| {
            qsimd::with_level(level, || {
                for mode in [ExecMode::Interp, ExecMode::Plan] {
                    let got = with_exec_mode(mode, || {
                        qpar::with_threads(1, || {
                            let mut s = StateVector::zero_state(c.num_qubits());
                            c.run_on(&mut s, &params).unwrap();
                            (bits(&s), s.norm().to_bits(), s.prob_one(0).unwrap().to_bits())
                        })
                    });
                    let pooled = with_exec_mode(mode, || {
                        qpar::with_threads(4, || {
                            qpar::with_pool(true, || {
                                let mut s = StateVector::zero_state(c.num_qubits());
                                c.run_on(&mut s, &params).unwrap();
                                (bits(&s), s.norm().to_bits(), s.prob_one(0).unwrap().to_bits())
                            })
                        })
                    });
                    assert_eq!(got, pooled, "level={} mode={:?}", level.name(), mode);
                }
                with_exec_mode(ExecMode::Plan, || {
                    qpar::with_threads(2, || {
                        let mut s = StateVector::zero_state(c.num_qubits());
                        c.run_on(&mut s, &params).unwrap();
                        (bits(&s), s.norm().to_bits(), s.prob_one(0).unwrap().to_bits())
                    })
                })
            })
        };
        let scalar = run_at(qsimd::Level::Scalar);
        let native = run_at(detected);
        prop_assert_eq!(&scalar, &native, "scalar vs {}", detected.name());
    }

    /// A 16-qubit-wide case crosses the parallel kernel thresholds so
    /// the pooled tile executor really fans out.
    #[test]
    fn wide_plan_matches_interpreter(seed_ops in prop::collection::vec(arb_op(16), 1..10)) {
        let mut c = Circuit::new(16);
        for (g, qs) in seed_ops {
            c.push_fixed(g, &qs);
        }
        let want = reference(&c, &[], None);
        let plan = c.compile().unwrap();
        for pooled in [true, false] {
            let got = qpar::with_threads(4, || {
                qpar::with_pool(pooled, || bits(&plan.run(&[]).unwrap()))
            });
            prop_assert_eq!(&got, &want, "pooled={}", pooled);
        }
    }
}
