//! Property suite: pass-fusion scheduling is bit-identical to the
//! per-gate schedule and to the op-by-op interpreter.
//!
//! Random band/ring circuits (the shapes `qnn::ansatz` emits, plus
//! adversarial near-misses that must *not* fuse) × random parameters ×
//! `QSIM_FUSE={on,off}` × `QSIM_SIMD={scalar,native}` × 1/2/4/8
//! threads: every combination must reproduce the serial interpreter's
//! amplitudes bit for bit. Pure permutations move bytes without
//! arithmetic, so fusion is exactness-safe by construction — this suite
//! is what keeps that claim honest.
//!
//! Alongside the property tests, unit tests pin the pass-count model on
//! hand-built `hardware_efficient` / `strongly_entangling` layer shapes:
//! a rotation-band + entangler-ring layer costs `2N` gate-visit passes
//! unfused and `N + 1` fused.

use proptest::prelude::*;

use qsim::circuit::Circuit;
use qsim::gate::Gate;
use qsim::plan::{with_exec_mode, with_fuse_mode, ExecMode, FuseMode};
use qsim::testing::arb_op;
use qsim::StateVector;

const N: usize = 6;

/// One building block of a generated circuit: a symbolic rotation band,
/// an entangler ring, or an arbitrary op thrown in to break patterns.
#[derive(Clone, Debug)]
enum Segment {
    /// Rotation band on every qubit: 0 = Ry, 1 = Rz, 2 = Rx+Ry.
    Band(u8),
    /// Entangler ring `(q, (q+stride) mod N)`: 0 = Cx (fuses),
    /// 1 = Swap (fuses), 2 = Cz (arithmetic — must not fuse),
    /// 3 = Rzz (arithmetic — must not fuse), 4 = X band (fuses).
    Ring(u8, usize),
    /// A random op, possibly symbolic — lands mid-band or mid-ring and
    /// forces flushes the layered ansätze never trigger.
    Op((Gate, Vec<usize>), bool),
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    prop_oneof![
        (0u8..3).prop_map(Segment::Band),
        ((0u8..5), 1..N).prop_map(|(k, s)| Segment::Ring(k, s)),
        (arb_op(N), any::<bool>()).prop_map(|(op, sym)| Segment::Op(op, sym)),
    ]
}

/// Band/ring-shaped circuit with random interruptions, plus a parameter
/// vector for its symbolic gates.
fn arb_band_circuit() -> impl Strategy<Value = (Circuit, Vec<f64>)> {
    let segments = prop::collection::vec(arb_segment(), 1..8);
    let params = prop::collection::vec(-3.0..3.0f64, 4);
    (segments, params).prop_map(|(segments, params)| {
        let mut c = Circuit::new(N);
        let mut p = 0usize;
        let mut sym = |c: &mut Circuit, g: Gate, qs: &[usize]| {
            c.push_sym(g, qs, p % params.len());
            p += 1;
        };
        for seg in segments {
            match seg {
                Segment::Band(kind) => {
                    for q in 0..N {
                        match kind {
                            0 => sym(&mut c, Gate::Ry(0.0), &[q]),
                            1 => sym(&mut c, Gate::Rz(0.0), &[q]),
                            _ => {
                                sym(&mut c, Gate::Rx(0.0), &[q]);
                                sym(&mut c, Gate::Ry(0.0), &[q]);
                            }
                        }
                    }
                }
                Segment::Ring(kind, stride) => {
                    for q in 0..N {
                        let pair = [q, (q + stride) % N];
                        match kind {
                            0 => {
                                c.push_fixed(Gate::Cx, &pair);
                            }
                            1 => {
                                c.push_fixed(Gate::Swap, &pair);
                            }
                            2 => {
                                c.push_fixed(Gate::Cz, &pair);
                            }
                            3 => sym(&mut c, Gate::Rzz(0.0), &pair),
                            _ => {
                                c.push_fixed(Gate::X, &[q]);
                            }
                        }
                    }
                }
                Segment::Op((gate, qubits), make_sym) => {
                    if make_sym && gate.is_parametrized() {
                        sym(&mut c, gate, &qubits);
                    } else {
                        c.push_fixed(gate, &qubits);
                    }
                }
            }
        }
        (c, params)
    })
}

fn bits(s: &StateVector) -> Vec<(u64, u64)> {
    s.amplitudes()
        .iter()
        .map(|a| (a.re.to_bits(), a.im.to_bits()))
        .collect()
}

/// Serial-interpreter reference bits.
fn reference(c: &Circuit, params: &[f64]) -> Vec<(u64, u64)> {
    with_exec_mode(ExecMode::Interp, || {
        qpar::with_threads(1, || {
            let mut s = StateVector::zero_state(c.num_qubits());
            c.run_on(&mut s, params).unwrap();
            bits(&s)
        })
    })
}

/// Hand-built mirror of `qnn::ansatz::hardware_efficient` (qsim cannot
/// depend on qnn): per layer `RY`+`RZ` per qubit and a stride-1 CX ring,
/// plus a trailing `RY` band.
fn hardware_efficient(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    let mut p = 0usize;
    for _ in 0..layers {
        for q in 0..n {
            c.push_sym(Gate::Ry(0.0), &[q], p);
            p += 1;
            c.push_sym(Gate::Rz(0.0), &[q], p);
            p += 1;
        }
        for q in 0..n {
            c.push_fixed(Gate::Cx, &[q, (q + 1) % n]);
        }
    }
    for q in 0..n {
        c.push_sym(Gate::Ry(0.0), &[q], p);
        p += 1;
    }
    c
}

/// Hand-built mirror of `qnn::ansatz::strongly_entangling`: per layer
/// `RX`/`RY`/`RZ` per qubit and a CX ring whose stride grows with the
/// layer index.
fn strongly_entangling(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    let mut p = 0usize;
    for layer in 0..layers {
        for q in 0..n {
            for g in [Gate::Rx(0.0), Gate::Ry(0.0), Gate::Rz(0.0)] {
                c.push_sym(g, &[q], p);
                p += 1;
            }
        }
        let stride = 1 + layer % (n - 1).max(1);
        for q in 0..n {
            c.push_fixed(Gate::Cx, &[q, (q + stride) % n]);
        }
    }
    c
}

fn ramp(c: &Circuit) -> Vec<f64> {
    (0..c.num_params()).map(|i| 0.1 * i as f64 - 1.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fused and unfused schedules reproduce the serial interpreter bit
    /// for bit at every SIMD level and thread count.
    #[test]
    fn fusion_matches_interpreter_across_simd_and_threads(
        (c, params) in arb_band_circuit(),
    ) {
        let want = reference(&c, &params);
        let plan = c.compile().unwrap();
        let detected = qsimd::detected();
        for fuse in [FuseMode::On, FuseMode::Off] {
            let bound = with_fuse_mode(fuse, || plan.bind(&params)).unwrap();
            for level in [qsimd::Level::Scalar, detected] {
                for threads in [1usize, 2, 4, 8] {
                    let got = qsimd::with_level(level, || {
                        qpar::with_threads(threads, || {
                            let mut s = StateVector::zero_state(N);
                            bound.run_on(&mut s).unwrap();
                            bits(&s)
                        })
                    });
                    prop_assert_eq!(
                        &got, &want,
                        "fuse={:?} level={} threads={}", fuse, level.name(), threads
                    );
                }
            }
        }
    }

    /// Near-miss rings (CZ / RZZ) carry phases, so they must schedule
    /// identically with fusion on and off — no permutation pass may
    /// absorb an arithmetic gate.
    #[test]
    fn arithmetic_rings_schedule_identically(
        stride in 1..N,
        arithmetic_rzz in any::<bool>(),
        params in prop::collection::vec(-3.0..3.0f64, 4),
    ) {
        let mut c = Circuit::new(N);
        for q in 0..N {
            c.push_sym(Gate::Ry(0.0), &[q], q % params.len());
        }
        for q in 0..N {
            let pair = [q, (q + stride) % N];
            if arithmetic_rzz {
                c.push_sym(Gate::Rzz(0.0), &pair, q % params.len());
            } else {
                c.push_fixed(Gate::Cz, &pair);
            }
        }
        let plan = c.compile().unwrap();
        let fused = with_fuse_mode(FuseMode::On, || plan.bind(&params)).unwrap();
        let unfused = with_fuse_mode(FuseMode::Off, || plan.bind(&params)).unwrap();
        prop_assert_eq!(fused.passes(), unfused.passes(), "arithmetic ring must not fuse");
        prop_assert_eq!(fused.amp_bytes_swept(), unfused.amp_bytes_swept());
        let want = reference(&c, &params);
        let mut s = StateVector::zero_state(N);
        fused.run_on(&mut s).unwrap();
        prop_assert_eq!(bits(&s), want);
    }
}

/// The headline counter: one `strongly_entangling` layer costs `2N`
/// gate-visit passes unfused (N merged rotations + N CNOTs) and `N + 1`
/// fused (N rotations + one permutation pass).
#[test]
fn strongly_entangling_layer_costs_n_plus_one_passes() {
    let (n, layers) = (N, 3);
    let c = strongly_entangling(n, layers);
    let params = ramp(&c);
    let plan = c.compile().unwrap();
    let fused = with_fuse_mode(FuseMode::On, || plan.bind(&params)).unwrap();
    let unfused = with_fuse_mode(FuseMode::Off, || plan.bind(&params)).unwrap();
    assert!(fused.fused());
    assert!(!unfused.fused());
    assert_eq!(
        unfused.passes(),
        layers * 2 * n,
        "per-gate model: 2N per layer"
    );
    assert_eq!(
        fused.passes(),
        layers * (n + 1),
        "fused model: N+1 per layer"
    );
    assert!(fused.amp_bytes_swept() < unfused.amp_bytes_swept());

    let want = reference(&c, &params);
    let mut s = StateVector::zero_state(n);
    fused.run_on(&mut s).unwrap();
    assert_eq!(
        bits(&s),
        want,
        "fused strongly-entangling diverged from interp"
    );
}

/// Same model for `hardware_efficient`: `layers·(N+1)` plus the trailing
/// rotation band, against `layers·2N + N` unfused.
#[test]
fn hardware_efficient_pass_model() {
    let (n, layers) = (N, 4);
    let c = hardware_efficient(n, layers);
    let params = ramp(&c);
    let plan = c.compile().unwrap();
    let fused = with_fuse_mode(FuseMode::On, || plan.bind(&params)).unwrap();
    let unfused = with_fuse_mode(FuseMode::Off, || plan.bind(&params)).unwrap();
    assert_eq!(unfused.passes(), layers * 2 * n + n);
    assert_eq!(fused.passes(), layers * (n + 1) + n);

    let want = reference(&c, &params);
    for threads in [1usize, 4] {
        let got = qpar::with_threads(threads, || {
            let mut s = StateVector::zero_state(n);
            fused.run_on(&mut s).unwrap();
            bits(&s)
        });
        assert_eq!(got, want, "threads={threads}");
    }
}

/// A rotation landing on a ring qubit mid-band is the pattern that must
/// *not* hop past the pending permutation: the permutation flushes, and
/// the result still matches the interpreter.
#[test]
fn mid_band_rotation_flushes_pending_permutation() {
    let mut c = Circuit::new(4);
    for q in 0..4 {
        c.push_sym(Gate::Ry(0.0), &[q], q);
    }
    for q in 0..4 {
        c.push_fixed(Gate::Cx, &[q, (q + 1) % 4]);
    }
    // Overlaps the ring's support: forces the Permute step early.
    c.push_sym(Gate::Ry(0.0), &[0], 0);
    let params = [0.3, -0.7, 1.1, 0.5];
    let plan = c.compile().unwrap();
    let fused = with_fuse_mode(FuseMode::On, || plan.bind(&params)).unwrap();
    let want = reference(&c, &params);
    let mut s = StateVector::zero_state(4);
    fused.run_on(&mut s).unwrap();
    assert_eq!(bits(&s), want);
}
