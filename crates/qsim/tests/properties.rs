//! Property-based tests for the simulator core.

use proptest::prelude::*;

use qsim::circuit::Circuit;
use qsim::pauli::{Pauli, PauliString};
use qsim::rng::{RngState, Xoshiro256};
use qsim::state::StateVector;
use qsim::testing::arb_op;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of gates preserves the norm of the state.
    #[test]
    fn random_circuits_preserve_norm(
        ops in prop::collection::vec(arb_op(4), 0..40),
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut state = StateVector::random(4, &mut rng);
        for (g, qs) in ops {
            state.apply_gate(g, &qs).unwrap();
            prop_assert!((state.norm() - 1.0).abs() < 1e-9);
        }
    }

    /// Running a circuit forward then its inverse restores the input state.
    #[test]
    fn circuit_inverse_is_identity(
        ops in prop::collection::vec(arb_op(3), 1..25),
        seed in any::<u64>(),
    ) {
        let mut c = Circuit::new(3);
        for (g, qs) in &ops {
            c.push_fixed(*g, qs);
        }
        let mut rng = Xoshiro256::seed_from(seed);
        let original = StateVector::random(3, &mut rng);
        let mut state = original.clone();
        c.run_on(&mut state, &[]).unwrap();
        c.inverse().run_on(&mut state, &[]).unwrap();
        prop_assert!((state.fidelity(&original).unwrap() - 1.0).abs() < 1e-8);
    }

    /// Fidelity is symmetric and bounded in [0, 1].
    #[test]
    fn fidelity_is_symmetric_and_bounded(sa in any::<u64>(), sb in any::<u64>()) {
        let mut ra = Xoshiro256::seed_from(sa);
        let mut rb = Xoshiro256::seed_from(sb);
        let a = StateVector::random(3, &mut ra);
        let b = StateVector::random(3, &mut rb);
        let fab = a.fidelity(&b).unwrap();
        let fba = b.fidelity(&a).unwrap();
        prop_assert!((fab - fba).abs() < 1e-12);
        prop_assert!((-1e-12..=1.0 + 1e-9).contains(&fab));
    }

    /// The probability distribution of any state sums to one.
    #[test]
    fn probabilities_sum_to_one(
        ops in prop::collection::vec(arb_op(4), 0..30),
    ) {
        let mut state = StateVector::zero_state(4);
        for (g, qs) in ops {
            state.apply_gate(g, &qs).unwrap();
        }
        let total: f64 = state.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// RNG state round-trips through bytes and resumes the identical stream.
    #[test]
    fn rng_state_round_trip(seed in any::<u64>(), skip in 0usize..500) {
        let mut rng = Xoshiro256::seed_from(seed);
        for _ in 0..skip {
            rng.next_u64();
        }
        let st = rng.state();
        let bytes = st.to_bytes();
        let restored = RngState::from_bytes(&bytes).unwrap();
        let mut rng2 = Xoshiro256::from_state(restored);
        for _ in 0..64 {
            prop_assert_eq!(rng.next_u64(), rng2.next_u64());
        }
    }

    /// Pauli expectation values always lie in [-1, 1].
    #[test]
    fn pauli_expectations_bounded(
        ops in prop::collection::vec(arb_op(3), 0..20),
        px in 0usize..4, py in 0usize..4, pz in 0usize..4,
    ) {
        let mut state = StateVector::zero_state(3);
        for (g, qs) in ops {
            state.apply_gate(g, &qs).unwrap();
        }
        let to_pauli = |k: usize| match k {
            0 => Pauli::I,
            1 => Pauli::X,
            2 => Pauli::Y,
            _ => Pauli::Z,
        };
        let ps = PauliString::new(vec![to_pauli(px), to_pauli(py), to_pauli(pz)]);
        let e = ps.expectation(&state).unwrap();
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e));
    }

    /// Measurement sampling frequencies track Born probabilities.
    #[test]
    fn sampling_tracks_probabilities(seed in any::<u64>()) {
        let mut rng = Xoshiro256::seed_from(seed);
        let state = StateVector::random(2, &mut rng);
        let shots = 20_000usize;
        let counts = state.sample_counts(shots, &mut rng);
        for (idx, c) in counts {
            let f = c as f64 / shots as f64;
            let p = state.probability(idx);
            prop_assert!((f - p).abs() < 0.05, "idx {}: {} vs {}", idx, f, p);
        }
    }

    /// `basis_rotation` + eigenvalue parity reproduces the exact expectation
    /// for arbitrary Pauli strings.
    #[test]
    fn basis_rotation_is_consistent(
        paulis in prop::collection::vec(0usize..4, 3..4),
        seed in any::<u64>(),
    ) {
        let to_pauli = |k: usize| match k {
            0 => Pauli::I,
            1 => Pauli::X,
            2 => Pauli::Y,
            _ => Pauli::Z,
        };
        let ps = PauliString::new(paulis.into_iter().map(to_pauli).collect());
        let mut rng = Xoshiro256::seed_from(seed);
        let state = StateVector::random(ps.num_qubits(), &mut rng);
        let exact = ps.expectation(&state).unwrap();
        let mut rotated = state.clone();
        ps.basis_rotation().run_on(&mut rotated, &[]).unwrap();
        let mut est = 0.0;
        for (idx, amp) in rotated.amplitudes().iter().enumerate() {
            est += amp.norm_sqr() * ps.eigenvalue(idx);
        }
        prop_assert!((exact - est).abs() < 1e-8);
    }
}
