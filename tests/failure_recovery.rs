//! Cross-crate failure injection: no combination of crash point, commit
//! protocol or post-commit fault may ever make recovery return wrong data.

use qnn_checkpoint::qcheck::failure::{CrashPoint, StorageFault};
use qnn_checkpoint::qcheck::repo::{CheckpointRepo, CommitMode, SaveOptions};
use qnn_checkpoint::qcheck::snapshot::{Checkpointable, TrainingSnapshot};
use qnn_checkpoint::qcheck::store::ObjectStore;
use qnn_checkpoint::qnn::ansatz::{hardware_efficient, init_params};
use qnn_checkpoint::qnn::optimizer::Adam;
use qnn_checkpoint::qnn::trainer::{Task, Trainer, TrainerConfig};
use qnn_checkpoint::qsim::pauli::PauliSum;
use qnn_checkpoint::qsim::rng::Xoshiro256;

fn scratch(tag: &str) -> std::path::PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let p = std::env::temp_dir().join(format!(
        "qnn-fail-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// A tiny real trainer that yields a stream of distinguishable snapshots.
fn snapshots(n: usize) -> Vec<TrainingSnapshot> {
    let (circuit, info) = hardware_efficient(3, 1);
    let mut rng = Xoshiro256::seed_from(7);
    let params = init_params(info.num_params, &mut rng);
    let mut trainer = Trainer::new(
        circuit,
        Task::Vqe {
            hamiltonian: PauliSum::transverse_ising(3, 1.0, 0.7),
        },
        Box::new(Adam::new(0.05)),
        params,
        TrainerConfig::default(),
    )
    .unwrap();
    (0..n)
        .map(|_| {
            trainer.train_step().unwrap();
            trainer.capture()
        })
        .collect()
}

/// Recovery must return a snapshot identical to one we actually committed
/// ("no silent corruption"), or fail *cleanly* with an integrity error.
/// A clean failure is legitimate even with checkpoints on disk: corrupting
/// a delta-chain base invalidates every dependent checkpoint.
fn assert_recovers_known_state(repo: &CheckpointRepo, committed: &[TrainingSnapshot]) {
    match repo.recover() {
        Ok((snapshot, _)) => {
            let matches = committed.iter().any(|s| {
                let mut a = s.clone();
                let mut b = snapshot.clone();
                a.wall_time_ms = 0;
                b.wall_time_ms = 0;
                a == b
            });
            assert!(matches, "recovered a snapshot that was never committed");
        }
        Err(e) => {
            assert!(
                matches!(e, qnn_checkpoint::qcheck::Error::NoValidCheckpoint { .. }),
                "recovery failed uncleanly: {e}"
            );
        }
    }
}

#[test]
fn atomic_commit_survives_every_crash_point() {
    let snaps = snapshots(2);
    for crash in CrashPoint::all() {
        let dir = scratch("crash-atomic");
        let repo = CheckpointRepo::open(&dir).unwrap();
        repo.save(&snaps[0], &SaveOptions::default()).unwrap();
        let opts = SaveOptions {
            crash: Some(crash),
            ..SaveOptions::default()
        };
        let err = repo.save(&snaps[1], &opts).unwrap_err();
        assert!(
            matches!(err, qnn_checkpoint::qcheck::Error::SimulatedCrash { .. }),
            "{crash}: unexpected error {err}"
        );
        // Under the atomic protocol recovery must *succeed* (checkpoint 1
        // is intact), not merely fail cleanly.
        let (recovered, _) = repo.recover().expect("atomic protocol must recover");
        assert!(recovered.step >= snaps[0].step);
        assert_recovers_known_state(&repo, &snaps);
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn inplace_commit_crashes_are_detected_not_silent() {
    let snaps = snapshots(2);
    for crash in CrashPoint::all() {
        let dir = scratch("crash-inplace");
        let repo = CheckpointRepo::open(&dir).unwrap();
        repo.save(&snaps[0], &SaveOptions::default()).unwrap();
        let opts = SaveOptions {
            commit: CommitMode::InPlaceUnsafe,
            crash: Some(crash),
            ..SaveOptions::default()
        };
        let _ = repo.save(&snaps[1], &opts);
        // Recovery may fall back to snapshot 0 or reach snapshot 1, but it
        // must never hand back a franken-snapshot.
        assert_recovers_known_state(&repo, &snaps);
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn every_manifest_fault_falls_back() {
    let snaps = snapshots(3);
    for fault in [
        StorageFault::BitFlip { offset: 11 },
        StorageFault::BitFlip { offset: 311 },
        StorageFault::Truncate { keep_pct: 10 },
        StorageFault::Truncate { keep_pct: 90 },
        StorageFault::Delete,
    ] {
        let dir = scratch("fault");
        let repo = CheckpointRepo::open(&dir).unwrap();
        for s in &snaps {
            repo.save(s, &SaveOptions::default()).unwrap();
        }
        let newest = repo.list_ids().unwrap().pop().unwrap();
        repo.corrupt_manifest(&newest, fault).unwrap();
        let (snapshot, report) = repo.recover().unwrap();
        assert!(snapshot.step >= snaps[0].step);
        assert_recovers_known_state(&repo, &snaps);
        // Deleting the newest manifest silently hides it; other faults are
        // detected and reported.
        if !matches!(fault, StorageFault::Delete) {
            assert!(!report.skipped.is_empty(), "{fault}: no skip recorded");
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn chunk_corruption_in_delta_chain_is_caught() {
    let snaps = snapshots(5);
    let dir = scratch("chain-rot");
    let repo = CheckpointRepo::open(&dir).unwrap();
    let opts = SaveOptions::incremental(16);
    for s in &snaps {
        repo.save(s, &opts).unwrap();
    }
    // Corrupt a chunk of the *base* (first) checkpoint: every delta in the
    // chain depends on it, so the whole chain must be rejected — recovery
    // then fails (nothing valid remains) rather than returning garbage.
    let base_id = repo.list_ids().unwrap()[0].clone();
    let manifest = repo.load_manifest(&base_id).unwrap();
    let params_entry = manifest
        .sections
        .iter()
        .find(|s| s.name == "params")
        .unwrap();
    repo.store()
        .corrupt_object(&params_entry.chunks[0].hash, 5)
        .unwrap();
    match repo.recover() {
        Ok((snapshot, _)) => {
            // Only acceptable if some checkpoint did not depend on the
            // corrupted chunk (dedup could make chains share chunks).
            let mut a = snapshot;
            a.wall_time_ms = 0;
            let ok = snaps.iter().any(|s| {
                let mut b = s.clone();
                b.wall_time_ms = 0;
                a == b
            });
            assert!(ok, "recovered unknown state from corrupt chain");
        }
        Err(e) => assert!(
            e.is_integrity_failure()
                || matches!(e, qnn_checkpoint::qcheck::Error::NoValidCheckpoint { .. })
        ),
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn random_byte_fuzzing_never_yields_unknown_state() {
    let snaps = snapshots(3);
    let dir = scratch("fuzz");
    let repo = CheckpointRepo::open(&dir).unwrap();
    for s in &snaps {
        repo.save(s, &SaveOptions::incremental(8)).unwrap();
    }
    // Flip one byte in every file in the repository, one file at a time,
    // restoring the original afterwards.
    let mut files = Vec::new();
    fn walk(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
        for entry in std::fs::read_dir(dir).unwrap().flatten() {
            let p = entry.path();
            if p.is_dir() {
                walk(&p, out);
            } else {
                out.push(p);
            }
        }
    }
    walk(&dir, &mut files);
    assert!(files.len() > 5, "repo unexpectedly small");
    for (i, file) in files.iter().enumerate() {
        let original = std::fs::read(file).unwrap();
        if original.is_empty() {
            continue;
        }
        let mut damaged = original.clone();
        let pos = (i * 7919) % damaged.len();
        damaged[pos] ^= 0xA5;
        std::fs::write(file, &damaged).unwrap();
        assert_recovers_known_state(&repo, &snaps);
        std::fs::write(file, &original).unwrap();
    }
    let _ = std::fs::remove_dir_all(dir);
}
