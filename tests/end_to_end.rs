//! Cross-crate integration: the full training → checkpoint → crash →
//! recover → continue pipeline, through the real on-disk repository.

use qnn_checkpoint::qcheck::repo::{CheckpointRepo, Retention, SaveOptions};
use qnn_checkpoint::qcheck::snapshot::Checkpointable;
use qnn_checkpoint::qcheck::{Checkpointer, YoungDaly};
use qnn_checkpoint::qnn::ansatz::{hardware_efficient, init_params};
use qnn_checkpoint::qnn::optimizer::{Adam, Momentum};
use qnn_checkpoint::qnn::trainer::{Task, Trainer, TrainerConfig};
use qnn_checkpoint::qnn::{FeatureMap, GradientMethod};
use qnn_checkpoint::qsim::measure::EvalMode;
use qnn_checkpoint::qsim::pauli::PauliSum;
use qnn_checkpoint::qsim::rng::Xoshiro256;

fn scratch(tag: &str) -> std::path::PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let p = std::env::temp_dir().join(format!(
        "qnn-e2e-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn shot_trainer(seed: u64) -> Trainer {
    let (circuit, info) = hardware_efficient(4, 2);
    let mut rng = Xoshiro256::seed_from(seed);
    let params = init_params(info.num_params, &mut rng);
    Trainer::new(
        circuit,
        Task::Vqe {
            hamiltonian: PauliSum::transverse_ising(4, 1.0, 0.6),
        },
        Box::new(Adam::new(0.04)),
        params,
        TrainerConfig {
            label: "e2e".into(),
            eval_mode: EvalMode::Shots(48),
            gradient: GradientMethod::ParameterShift,
            seed,
            metrics_capacity: 64,
        },
    )
    .unwrap()
}

#[test]
fn disk_round_trip_resume_is_bitwise_exact() {
    let dir = scratch("exact");
    let repo = CheckpointRepo::open(&dir).unwrap();

    // Uninterrupted reference.
    let mut reference = shot_trainer(101);
    let mut ref_losses = Vec::new();
    for _ in 0..12 {
        ref_losses.push(reference.train_step().unwrap().loss);
    }

    // Crash at step 6, resume from disk in a "new process".
    let mut victim = shot_trainer(101);
    for _ in 0..6 {
        victim.train_step().unwrap();
    }
    repo.save(&victim.capture(), &SaveOptions::default())
        .unwrap();
    drop(victim);

    let mut resumed = shot_trainer(101);
    let (snapshot, _) = repo.recover().unwrap();
    resumed.restore(&snapshot).unwrap();
    for (i, expected) in ref_losses.iter().enumerate().skip(6) {
        let loss = resumed.train_step().unwrap().loss;
        assert_eq!(
            loss.to_bits(),
            expected.to_bits(),
            "divergence at step {}",
            i + 1
        );
    }
    for (a, b) in reference.params().iter().zip(resumed.params()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn delta_chain_through_disk_is_exact() {
    let dir = scratch("delta");
    let repo = CheckpointRepo::open(&dir).unwrap();
    let opts = SaveOptions::incremental(32);

    let mut reference = shot_trainer(202);
    for step in 1..=10u64 {
        reference.train_step().unwrap();
        let report = repo.save(&reference.capture(), &opts).unwrap();
        if step > 1 {
            assert!(report.is_delta, "step {step} should be a delta");
        }
    }
    let tail: Vec<u64> = reference
        .train_steps(4)
        .unwrap()
        .iter()
        .map(|r| r.loss.to_bits())
        .collect();

    let mut resumed = shot_trainer(202);
    let (snapshot, _) = repo.recover().unwrap();
    assert_eq!(snapshot.step, 10);
    resumed.restore(&snapshot).unwrap();
    let replay: Vec<u64> = resumed
        .train_steps(4)
        .unwrap()
        .iter()
        .map(|r| r.loss.to_bits())
        .collect();
    assert_eq!(tail, replay);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn checkpointer_with_young_daly_policy_drives_training() {
    let dir = scratch("yd");
    let repo = CheckpointRepo::open(&dir).unwrap();
    // MTBF of 200 ms with ~instant writes → very frequent checkpoints.
    let mut ckptr = Checkpointer::new(
        repo,
        Box::new(YoungDaly::new(200.0, 1.0)),
        SaveOptions::incremental(8),
    );
    let mut trainer = shot_trainer(303);
    let mut taken = 0;
    for _ in 0..8 {
        let report = trainer.train_step().unwrap();
        if ckptr.on_step(report.step, &trainer).unwrap().is_some() {
            taken += 1;
        }
    }
    assert!(taken >= 1, "Young–Daly policy never fired");
    let mut fresh = shot_trainer(303);
    ckptr.restore_latest(&mut fresh).unwrap();
    assert!(fresh.step_count() >= 1);
    let _ = std::fs::remove_dir_all(ckptr.repo().root());
}

#[test]
fn retention_preserves_recoverability_mid_training() {
    let dir = scratch("retention");
    let repo = CheckpointRepo::open(&dir).unwrap();
    let opts = SaveOptions::incremental(4);
    let mut trainer = shot_trainer(404);
    for _ in 0..12 {
        trainer.train_step().unwrap();
        repo.save(&trainer.capture(), &opts).unwrap();
        repo.apply_retention(Retention::KeepLast(3)).unwrap();
        // Recovery must always succeed after retention.
        let (snap, _) = repo.recover().unwrap();
        assert_eq!(snap.step, trainer.step_count());
    }
    // The store stays bounded: no more than a dozen manifests ever survive.
    assert!(repo.list_ids().unwrap().len() <= 8);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn classification_task_round_trips_dataset_cursor() {
    let dir = scratch("cursor");
    let repo = CheckpointRepo::open(&dir).unwrap();
    let mut rng = Xoshiro256::seed_from(77);
    let data = qnn_checkpoint::qnn::dataset::blobs(2, 12, 2.0, &mut rng);
    let build = || {
        let (circuit, info) = hardware_efficient(2, 1);
        let mut prng = Xoshiro256::seed_from(9);
        Trainer::new(
            circuit,
            Task::Classification {
                data: data.clone(),
                feature_map: FeatureMap::Angle,
                observable: PauliSum::mean_z(2),
                batch_size: 5,
            },
            Box::new(Momentum::new(0.05, 0.9)),
            init_params(info.num_params, &mut prng),
            TrainerConfig {
                eval_mode: EvalMode::Shots(32),
                gradient: GradientMethod::Spsa { c: 0.1 },
                seed: 9,
                ..TrainerConfig::default()
            },
        )
        .unwrap()
    };

    let mut reference = build();
    for _ in 0..7 {
        reference.train_step().unwrap();
    }
    repo.save(&reference.capture(), &SaveOptions::default())
        .unwrap();
    let ref_tail: Vec<u64> = reference
        .train_steps(6)
        .unwrap()
        .iter()
        .map(|r| r.loss.to_bits())
        .collect();

    let mut resumed = build();
    let (snap, _) = repo.recover().unwrap();
    resumed.restore(&snap).unwrap();
    // Mini-batch order and SPSA directions must replay identically.
    let replay: Vec<u64> = resumed
        .train_steps(6)
        .unwrap()
        .iter()
        .map(|r| r.loss.to_bits())
        .collect();
    assert_eq!(ref_tail, replay, "batch order / SPSA stream diverged");
    assert_eq!(reference.epoch_count(), resumed.epoch_count());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn writer_lock_excludes_second_writer() {
    let dir = scratch("lock");
    let repo = CheckpointRepo::open(&dir).unwrap();
    let guard = repo.try_lock().unwrap();
    let repo2 = CheckpointRepo::open(&dir).unwrap();
    assert!(repo2.try_lock().is_err());
    drop(guard);
    assert!(repo2.try_lock().is_ok());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn ledger_accounting_survives_resume() {
    let dir = scratch("ledger");
    let repo = CheckpointRepo::open(&dir).unwrap();
    let mut trainer = shot_trainer(505);
    for _ in 0..4 {
        trainer.train_step().unwrap();
    }
    let shots_before = trainer.ledger().total_shots();
    assert!(shots_before > 0);
    repo.save(&trainer.capture(), &SaveOptions::default())
        .unwrap();

    let mut resumed = shot_trainer(505);
    let (snap, _) = repo.recover().unwrap();
    resumed.restore(&snap).unwrap();
    assert_eq!(resumed.ledger().total_shots(), shots_before);
    assert_eq!(resumed.ledger().len(), 4);
    resumed.train_step().unwrap();
    assert!(resumed.ledger().total_shots() > shots_before);
    assert_eq!(resumed.ledger().len(), 5);
    let _ = std::fs::remove_dir_all(dir);
}
