//! Determinism contract of the parallel hot paths: every kernel, gradient
//! and checkpoint-encode result must be **bit-identical** for 1/2/4/8
//! worker threads, and resume through the background checkpointer with a
//! parallel encoder must stay exact.

use qnn_checkpoint::qcheck::background::BackgroundCheckpointer;
use qnn_checkpoint::qcheck::chunk::chunk_bytes_threads;
use qnn_checkpoint::qcheck::compress::{compress_sections, Compression};
use qnn_checkpoint::qcheck::hash::Sha256;
use qnn_checkpoint::qcheck::repo::{CheckpointRepo, SaveOptions};
use qnn_checkpoint::qcheck::snapshot::{Checkpointable, StateBlob, TrainingSnapshot};
use qnn_checkpoint::qnn::ansatz::{hardware_efficient, init_params};
use qnn_checkpoint::qnn::optimizer::Adam;
use qnn_checkpoint::qnn::trainer::{Task, Trainer, TrainerConfig};
use qnn_checkpoint::qnn::GradientMethod;
use qnn_checkpoint::qsim::measure::EvalMode;
use qnn_checkpoint::qsim::pauli::PauliSum;
use qnn_checkpoint::qsim::rng::Xoshiro256;
use qnn_checkpoint::qsim::state::StateVector;
use qnn_checkpoint::qsim::Gate;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn scratch(tag: &str) -> std::path::PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let p = std::env::temp_dir().join(format!(
        "qnn-par-eq-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn amp_bits(state: &StateVector) -> Vec<(u64, u64)> {
    state
        .amplitudes()
        .iter()
        .map(|a| (a.re.to_bits(), a.im.to_bits()))
        .collect()
}

#[test]
fn state_vector_kernels_bit_identical_across_threads() {
    // 15 qubits crosses the gate-kernel fan-out threshold; the circuit
    // covers dense, real-dense, diagonal, transposition and dense-4x4
    // kernels on low, middle and high qubits.
    let n = 15;
    let (circuit, info) = hardware_efficient(n, 3);
    let params: Vec<f64> = (0..info.num_params)
        .map(|i| 0.21 * i as f64 - 1.0)
        .collect();
    let run_at = |threads: usize| {
        qpar::with_threads(threads, || {
            let mut state = circuit.run(&params).unwrap();
            state.apply_gate(Gate::Rxx(0.37), &[0, n - 1]).unwrap();
            state.apply_gate(Gate::Swap, &[1, n - 2]).unwrap();
            let h = PauliSum::heisenberg_xxz(n, 0.4);
            let e = h.expectation(&state).unwrap();
            (amp_bits(&state), e.to_bits(), state.norm().to_bits())
        })
    };
    let reference = run_at(1);
    for threads in &THREAD_SWEEP[1..] {
        assert_eq!(run_at(*threads), reference, "threads={threads}");
    }
}

#[test]
fn trainer_trajectory_bit_identical_across_threads() {
    let run_at = |threads: usize| {
        qpar::with_threads(threads, || {
            let (circuit, info) = hardware_efficient(5, 2);
            let mut rng = Xoshiro256::seed_from(42);
            let params = init_params(info.num_params, &mut rng);
            let mut t = Trainer::new(
                circuit,
                Task::Vqe {
                    hamiltonian: PauliSum::transverse_ising(5, 1.0, 0.7),
                },
                Box::new(Adam::new(0.05)),
                params,
                TrainerConfig {
                    label: "par-eq".into(),
                    eval_mode: EvalMode::Exact,
                    gradient: GradientMethod::ParameterShift,
                    seed: 7,
                    metrics_capacity: 64,
                },
            )
            .unwrap();
            for _ in 0..6 {
                t.train_step().unwrap();
            }
            t.params().iter().map(|p| p.to_bits()).collect::<Vec<u64>>()
        })
    };
    let reference = run_at(1);
    for threads in &THREAD_SWEEP[1..] {
        assert_eq!(run_at(*threads), reference, "threads={threads}");
    }
}

#[test]
fn chunk_refs_bit_identical_across_threads() {
    let data: Vec<u8> = (0..300_000u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
        .collect();
    let (reference, _) = chunk_bytes_threads(&data, 4096, 1);
    for threads in &THREAD_SWEEP[1..] {
        let (refs, slices) = chunk_bytes_threads(&data, 4096, *threads);
        assert_eq!(refs, reference, "threads={threads}");
        assert_eq!(slices.len(), refs.len());
    }
    // And the parallel digest primitive agrees with serial one-shot digests.
    let buffers: Vec<&[u8]> = data.chunks(1000).collect();
    let serial: Vec<_> = buffers.iter().map(|b| Sha256::digest(b)).collect();
    for threads in THREAD_SWEEP {
        assert_eq!(Sha256::digest_many(buffers.clone(), threads), serial);
    }
}

#[test]
fn section_compression_bit_identical_across_threads() {
    let payloads: Vec<Vec<u8>> = (0..6)
        .map(|k| {
            (0..40_000u32)
                .map(|i| ((i * (k + 3)) % 251) as u8)
                .collect()
        })
        .collect();
    let jobs = |_: usize| -> Vec<(Compression, &[u8])> {
        payloads
            .iter()
            .enumerate()
            .map(|(k, p)| (Compression::all()[k % 4], p.as_slice()))
            .collect()
    };
    let reference = compress_sections(jobs(0), 1);
    for threads in &THREAD_SWEEP[1..] {
        assert_eq!(
            compress_sections(jobs(0), *threads),
            reference,
            "threads={threads}"
        );
    }
}

fn snapshot_at(step: u64) -> TrainingSnapshot {
    let mut s = TrainingSnapshot::new("par-eq");
    s.step = step;
    s.params = (0..20_000)
        .map(|i| 0.6 + 1e-9 * ((i as u64 * 7 + step) as f64))
        .collect();
    s.optimizer = StateBlob::new("adam-v1", vec![(step % 251) as u8; 4096]);
    s.total_shots = step * 100;
    s
}

#[test]
fn checkpoint_manifests_bit_identical_across_threads() {
    // Same snapshot stream saved at every thread count → byte-identical
    // manifests (fixed timestamp pins the only nondeterministic field).
    let manifest_bytes_at = |threads: usize| {
        let dir = scratch(&format!("manifest-{threads}"));
        let repo = CheckpointRepo::open(&dir).unwrap();
        let mut opts = SaveOptions::incremental(8);
        opts.created_unix_ms = Some(1_700_000_000_000);
        opts.threads = Some(threads);
        let mut out = Vec::new();
        for step in 0..6u64 {
            let report = repo.save(&snapshot_at(step), &opts).unwrap();
            let encoded = repo.load_manifest(&report.id).unwrap().encode();
            out.push((report.id.as_str().to_string(), encoded));
        }
        // The whole manifest log (ids, records, framing) must also be
        // bit-identical, not just each manifest payload.
        out.push((
            "log".to_string(),
            std::fs::read(repo.manifest_log_path().unwrap()).unwrap(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        out
    };
    let reference = manifest_bytes_at(1);
    for threads in &THREAD_SWEEP[1..] {
        assert_eq!(manifest_bytes_at(*threads), reference, "threads={threads}");
    }
}

#[test]
fn delta_base_cache_matches_disk_resolution() {
    // Two repos over the same snapshot stream: one handle keeps its encode
    // cache warm, the other is reopened before every save (cold cache →
    // full disk resolution). The bytes on disk must not differ.
    let warm_dir = scratch("cache-warm");
    let cold_dir = scratch("cache-cold");
    let mut opts = SaveOptions::incremental(16);
    opts.created_unix_ms = Some(1_700_000_000_000);
    let warm = CheckpointRepo::open(&warm_dir).unwrap();
    for step in 0..5u64 {
        warm.save(&snapshot_at(step), &opts).unwrap();
        let cold = CheckpointRepo::open(&cold_dir).unwrap();
        cold.save(&snapshot_at(step), &opts).unwrap();
    }
    let warm_ids = warm.list_ids().unwrap();
    let cold = CheckpointRepo::open(&cold_dir).unwrap();
    assert_eq!(warm_ids, cold.list_ids().unwrap());
    for id in &warm_ids {
        assert_eq!(
            warm.load_manifest(id).unwrap().encode(),
            cold.load_manifest(id).unwrap().encode(),
            "manifest {id} differs between cached and disk-resolved base"
        );
    }
    let _ = std::fs::remove_dir_all(&warm_dir);
    let _ = std::fs::remove_dir_all(&cold_dir);
}

#[test]
fn background_checkpointer_parallel_encode_resume_is_exact() {
    // Train, checkpoint asynchronously with a parallel encoder, crash,
    // recover, continue — the resumed trajectory must be bitwise identical
    // to one that never stopped.
    let make_trainer = || {
        let (circuit, info) = hardware_efficient(4, 2);
        let mut rng = Xoshiro256::seed_from(99);
        let params = init_params(info.num_params, &mut rng);
        Trainer::new(
            circuit,
            Task::Vqe {
                hamiltonian: PauliSum::transverse_ising(4, 1.0, 0.5),
            },
            Box::new(Adam::new(0.03)),
            params,
            TrainerConfig {
                label: "bg-resume".into(),
                eval_mode: EvalMode::Shots(32),
                gradient: GradientMethod::ParameterShift,
                seed: 5,
                metrics_capacity: 64,
            },
        )
        .unwrap()
    };

    // Uninterrupted reference run.
    let mut reference = make_trainer();
    for _ in 0..12 {
        reference.train_step().unwrap();
    }
    let reference_bits: Vec<u64> = reference.params().iter().map(|p| p.to_bits()).collect();

    // Interrupted run: 8 steps with async parallel-encode checkpoints.
    let dir = scratch("bg-resume");
    let mut opts = SaveOptions::incremental(8);
    opts.threads = Some(4);
    let mut bg = BackgroundCheckpointer::spawn(CheckpointRepo::open(&dir).unwrap(), opts);
    let mut interrupted = make_trainer();
    for _ in 0..8 {
        interrupted.train_step().unwrap();
        bg.submit(interrupted.capture()).unwrap();
    }
    bg.drain().unwrap();
    drop(bg); // crash: the trainer state is lost, only the repo survives
    drop(interrupted);

    let (snapshot, _) = CheckpointRepo::open(&dir).unwrap().recover().unwrap();
    assert_eq!(snapshot.step, 8, "freshest checkpoint recovered");
    let mut resumed = make_trainer();
    resumed.restore(&snapshot).unwrap();
    for _ in 0..4 {
        resumed.train_step().unwrap();
    }
    let resumed_bits: Vec<u64> = resumed.params().iter().map(|p| p.to_bits()).collect();
    assert_eq!(
        resumed_bits, reference_bits,
        "resume drifted from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
