//! Cloud-execution timeline: replay the same training job through the
//! simulated NISQ cloud with and without checkpointing and compare
//! time-to-solution across failure regimes.
//!
//! ```bash
//! cargo run --example cloud_timeline
//! ```

use qnn_checkpoint::qcheck::policy::math;
use qnn_checkpoint::qhw::client::{mean_outcome, CheckpointStrategy, Environment, JobSpec};
use qnn_checkpoint::qhw::event::{HOUR, MINUTE, SECOND};
use qnn_checkpoint::qhw::queue::WaitModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A week-scale job: 5000 steps × 20 s ≈ 28 h of pure compute, run on a
    // shared device with 5-minute median queue waits.
    let spec = JobSpec {
        total_steps: 5000,
        step_cost: 20 * SECOND,
    };
    let queue = WaitModel::LogNormal {
        median_s: 300.0,
        sigma: 1.2,
    };
    let write_cost = 2 * SECOND;
    let restore_cost = 10 * SECOND;
    let trials = 25;

    println!(
        "job: {} steps × {} s (ideal {:.1} h), lognormal queue median 5 min",
        spec.total_steps,
        spec.step_cost / SECOND,
        (spec.total_steps * spec.step_cost) as f64 / HOUR as f64
    );
    println!("\nmtbf     no-ckpt           young-daly          yd-interval");
    let mut rng = StdRng::seed_from_u64(11);
    for mtbf_h in [1.0f64, 2.0, 4.0, 8.0, 24.0] {
        let mtbf = (mtbf_h * HOUR as f64) as u64;
        let env = Environment {
            queue,
            mtbf: Some(mtbf),
            session_ttl: Some(4 * HOUR), // sessions also expire
            device: None,
        };
        let tau = math::young_daly_interval(write_cost as f64, mtbf as f64);
        let interval = ((tau / spec.step_cost as f64).round() as u64).max(1);
        let strategy = CheckpointStrategy::periodic(interval, write_cost, restore_cost);

        let (none_mk, _none_eff, none_aborts) =
            mean_outcome(&spec, &CheckpointStrategy::None, &env, trials, &mut rng);
        let (yd_mk, yd_eff, _) = mean_outcome(&spec, &strategy, &env, trials, &mut rng);

        let fmt_h = |us: f64| format!("{:>7.1} h", us / HOUR as f64);
        // A 4 h session TTL makes a 28 h job impossible without
        // checkpointing: every trial hits the interruption cap.
        let none_cell = if none_aborts == trials {
            "never finishes ".to_string()
        } else {
            format!("{} ", fmt_h(none_mk))
        };
        println!(
            "{:>4.0} h   {:<16}  {} ({:>4.1}%)   {} steps ({:.0} min)",
            mtbf_h,
            none_cell,
            fmt_h(yd_mk),
            yd_eff * 100.0,
            interval,
            interval as f64 * spec.step_cost as f64 / MINUTE as f64,
        );
    }
    println!("\nSession TTL of 4 h means even a failure-free device interrupts the job:");
    println!("without checkpointing the job only finishes if a single session covers it.");
}
