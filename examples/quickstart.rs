//! Quickstart: checkpoint a VQE training run and recover it.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use qnn_checkpoint::qcheck::repo::{CheckpointRepo, SaveOptions};
use qnn_checkpoint::qcheck::snapshot::Checkpointable;
use qnn_checkpoint::qcheck::{Checkpointer, EveryKSteps};
use qnn_checkpoint::qnn::ansatz::{hardware_efficient, init_params};
use qnn_checkpoint::qnn::optimizer::Adam;
use qnn_checkpoint::qnn::trainer::{Task, Trainer, TrainerConfig};
use qnn_checkpoint::qsim::pauli::PauliSum;
use qnn_checkpoint::qsim::rng::Xoshiro256;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A variational model: hardware-efficient ansatz on 4 qubits,
    //    minimizing the energy of a transverse-field Ising chain.
    let (circuit, info) = hardware_efficient(4, 2);
    let mut rng = Xoshiro256::seed_from(42);
    let params = init_params(info.num_params, &mut rng);
    let mut trainer = Trainer::new(
        circuit,
        Task::Vqe {
            hamiltonian: PauliSum::transverse_ising(4, 1.0, 0.8),
        },
        Box::new(Adam::new(0.05)),
        params,
        TrainerConfig {
            label: "quickstart-vqe".into(),
            ..TrainerConfig::default()
        },
    )?;

    // 2. A checkpoint repository plus a policy-driven checkpointer:
    //    checkpoint every 5 optimizer steps.
    let dir = std::env::temp_dir().join(format!("qnn-ckpt-quickstart-{}", std::process::id()));
    let repo = CheckpointRepo::open(&dir)?;
    let mut checkpointer =
        Checkpointer::new(repo, Box::new(EveryKSteps::new(5)), SaveOptions::default());

    // 3. Train; the checkpointer captures the complete hybrid state
    //    (parameters, Adam moments, RNG streams, shot ledger) when due.
    println!("step   loss       checkpoint");
    for _ in 0..20 {
        let report = trainer.train_step()?;
        let saved = checkpointer.on_step(report.step, &trainer)?;
        println!(
            "{:>4}   {:>8.4}   {}",
            report.step,
            report.loss,
            saved
                .map(|s| format!("{} ({} B)", s.id, s.bytes_written()))
                .unwrap_or_else(|| "-".into())
        );
    }

    // Always persist the final state before shutting down.
    checkpointer.force_checkpoint(trainer.step_count(), &trainer)?;

    // 4. Simulate a crash: build a fresh process-equivalent trainer and
    //    restore the newest valid checkpoint from disk.
    let (circuit, info) = hardware_efficient(4, 2);
    let mut fresh = Trainer::new(
        circuit,
        Task::Vqe {
            hamiltonian: PauliSum::transverse_ising(4, 1.0, 0.8),
        },
        Box::new(Adam::new(0.05)),
        vec![0.0; info.num_params],
        TrainerConfig {
            label: "quickstart-vqe".into(),
            ..TrainerConfig::default()
        },
    )?;
    let recovered_from = checkpointer.restore_latest(&mut fresh)?;
    println!(
        "\nrecovered {} at step {} — loss {:.4}",
        recovered_from,
        fresh.step_count(),
        fresh.exact_loss()?
    );
    assert_eq!(fresh.step_count(), 20);
    assert_eq!(fresh.params(), trainer.params());
    // Full state equality modulo the wall clock.
    let mut a = fresh.capture();
    let mut b = trainer.capture();
    a.wall_time_ms = 0;
    b.wall_time_ms = 0;
    assert_eq!(a, b, "resumed state differs from the live trainer");

    std::fs::remove_dir_all(&dir)?;
    println!("ok: resumed state is identical to the live trainer");
    Ok(())
}
