//! Failure drill: corrupt a checkpoint repository in every way the
//! evaluation models and watch recovery detect the damage and fall back.
//!
//! ```bash
//! cargo run --example failure_drill
//! ```

use qnn_checkpoint::qcheck::failure::{CrashPoint, StorageFault};
use qnn_checkpoint::qcheck::repo::{CheckpointRepo, CommitMode, SaveOptions};
use qnn_checkpoint::qcheck::snapshot::Checkpointable;
use qnn_checkpoint::qcheck::store::ObjectStore;
use qnn_checkpoint::qnn::ansatz::{hardware_efficient, init_params};
use qnn_checkpoint::qnn::optimizer::Sgd;
use qnn_checkpoint::qnn::trainer::{Task, Trainer, TrainerConfig};
use qnn_checkpoint::qsim::pauli::PauliSum;
use qnn_checkpoint::qsim::rng::Xoshiro256;

fn trainer() -> Trainer {
    let (circuit, info) = hardware_efficient(3, 1);
    let mut rng = Xoshiro256::seed_from(5);
    let params = init_params(info.num_params, &mut rng);
    Trainer::new(
        circuit,
        Task::Vqe {
            hamiltonian: PauliSum::transverse_ising(3, 1.0, 0.9),
        },
        Box::new(Sgd::new(0.05)),
        params,
        TrainerConfig::default(),
    )
    .expect("trainer")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("qnn-ckpt-drill-{}", std::process::id()));
    let repo = CheckpointRepo::open(&dir)?;
    let mut t = trainer();

    // Two good checkpoints.
    t.train_step()?;
    repo.save(&t.capture(), &SaveOptions::default())?;
    t.train_step()?;
    let second = repo.save(&t.capture(), &SaveOptions::default())?;
    println!("baseline: two good checkpoints (steps 1 and 2)\n");

    // Drill 1: crash at every commit stage while writing a third checkpoint.
    println!("-- crash-point drill (atomic commit protocol) --");
    t.train_step()?;
    let snap3 = t.capture();
    for crash in CrashPoint::all() {
        let opts = SaveOptions {
            crash: Some(crash),
            ..SaveOptions::default()
        };
        let err = repo.save(&snap3, &opts).unwrap_err();
        let (recovered, report) = repo.recover()?;
        println!(
            "crash {:<28} → save error '{}'; recovered step {} (skipped {})",
            crash.to_string(),
            err,
            recovered.step,
            report.skipped.len()
        );
        assert!(recovered.step >= 2);
    }

    // Drill 2: the same crash points under the naive in-place protocol.
    println!("\n-- crash-point drill (naive in-place baseline) --");
    for crash in CrashPoint::all() {
        let opts = SaveOptions {
            commit: CommitMode::InPlaceUnsafe,
            crash: Some(crash),
            ..SaveOptions::default()
        };
        let _ = repo.save(&snap3, &opts);
        match repo.recover() {
            Ok((recovered, report)) => println!(
                "crash {:<28} → recovered step {} (skipped {} torn manifests)",
                crash.to_string(),
                recovered.step,
                report.skipped.len()
            ),
            Err(e) => println!("crash {:<28} → unrecoverable: {e}", crash.to_string()),
        }
    }

    // Drill 3: post-commit bit rot on the newest good manifest.
    println!("\n-- storage-fault drill --");
    for fault in [
        StorageFault::BitFlip { offset: 17 },
        StorageFault::Truncate { keep_pct: 60 },
        StorageFault::Delete,
    ] {
        // Re-write checkpoint 2 cleanly, then damage it.
        let fresh = repo.save(&snap3, &SaveOptions::default())?;
        repo.corrupt_manifest(&fresh.id, fault)?;
        let (recovered, report) = repo.recover()?;
        println!(
            "fault {:<18} on {} → fell back to step {} ({} rejected)",
            fault.to_string(),
            fresh.id,
            recovered.step,
            report.skipped.len()
        );
        assert!(recovered.step >= 2, "must recover at least checkpoint 2");
    }

    // Chunk-level bit rot is detected too.
    let manifest = repo.load_manifest(&second.id)?;
    let victim = manifest.chunk_refs().next().expect("chunk").hash;
    repo.store().corrupt_object(&victim, 3)?;
    let (recovered, report) = repo.recover()?;
    println!(
        "\nchunk bit-rot in {} → recovered step {} ({} rejected); corruption was detected, never returned",
        second.id,
        recovered.step,
        report.skipped.len()
    );

    std::fs::remove_dir_all(&dir)?;
    println!("\nok: every fault was either survived or cleanly detected");
    Ok(())
}
