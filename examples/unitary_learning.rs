//! Learning an unknown unitary from state pairs — the QNN-characterization
//! workload — with incremental checkpoints and a retention policy.
//!
//! ```bash
//! cargo run --example unitary_learning
//! ```

use qnn_checkpoint::qcheck::repo::{CheckpointRepo, Retention, SaveOptions};
use qnn_checkpoint::qcheck::snapshot::Checkpointable;
use qnn_checkpoint::qnn::ansatz::{hardware_efficient, init_params};
use qnn_checkpoint::qnn::dataset;
use qnn_checkpoint::qnn::optimizer::Adam;
use qnn_checkpoint::qnn::trainer::{Task, Trainer, TrainerConfig};
use qnn_checkpoint::qsim::rng::Xoshiro256;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An unknown 2-qubit "device" produces training pairs (|φ⟩, Y|φ⟩).
    let mut rng = Xoshiro256::seed_from(7);
    let (pairs, _hidden) = dataset::unitary_learning(2, 8, 2, &mut rng);
    let (train, validation) = pairs.split(6);

    let (circuit, info) = hardware_efficient(2, 3);
    let params = init_params(info.num_params, &mut rng);
    let mut trainer = Trainer::new(
        circuit.clone(),
        Task::StateLearning { data: train },
        Box::new(Adam::new(0.08)),
        params,
        TrainerConfig {
            label: "unitary-learning".into(),
            ..TrainerConfig::default()
        },
    )?;

    let dir = std::env::temp_dir().join(format!("qnn-ckpt-unitary-{}", std::process::id()));
    let repo = CheckpointRepo::open(&dir)?;
    // Incremental checkpoints, chains capped at 8 deltas.
    let options = SaveOptions::incremental(8);

    println!("step   train-loss   ckpt-kind   bytes-written");
    for step in 1..=40u64 {
        let report = trainer.train_step()?;
        if step % 2 == 0 {
            let save = repo.save(&trainer.capture(), &options)?;
            println!(
                "{:>4}   {:>10.6}   {:>9}   {:>8}",
                step,
                report.loss,
                if save.is_delta { "delta" } else { "full" },
                save.bytes_written()
            );
        }
    }

    // Keep only the latest 3 checkpoints (plus the delta bases they need).
    let retention = repo.apply_retention(Retention::KeepLast(3))?;
    println!(
        "\nretention: deleted {} manifests, reclaimed {} chunk bytes",
        retention.manifests_deleted, retention.gc.reclaimed_bytes
    );

    // Validate generalization on held-out pairs.
    let mut miss = 0.0;
    for (input, target) in validation.inputs.iter().zip(&validation.targets) {
        let mut out = input.clone();
        circuit.run_on(&mut out, trainer.params())?;
        miss += 1.0 - out.fidelity(target)?;
    }
    println!(
        "validation infidelity (2 held-out pairs): {:.6}",
        miss / validation.len() as f64
    );
    println!("final training loss: {:.6}", trainer.exact_loss()?);

    // The run can still be recovered after retention.
    let (snapshot, _) = repo.recover()?;
    assert_eq!(snapshot.step, 40);
    std::fs::remove_dir_all(&dir)?;
    println!("ok");
    Ok(())
}
