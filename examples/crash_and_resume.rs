//! The headline scenario: a shot-based training run crashes mid-flight and
//! resumes **bitwise exactly** from its on-disk checkpoint — the loss
//! trajectory after resume is identical, shot noise included, to a run that
//! never crashed.
//!
//! ```bash
//! cargo run --example crash_and_resume
//! ```

use qnn_checkpoint::qcheck::repo::{CheckpointRepo, SaveOptions};
use qnn_checkpoint::qcheck::snapshot::Checkpointable;
use qnn_checkpoint::qnn::ansatz::{hardware_efficient, init_params};
use qnn_checkpoint::qnn::optimizer::Adam;
use qnn_checkpoint::qnn::trainer::{Task, Trainer, TrainerConfig};
use qnn_checkpoint::qsim::measure::EvalMode;
use qnn_checkpoint::qsim::pauli::PauliSum;
use qnn_checkpoint::qsim::rng::Xoshiro256;

fn build_trainer() -> Trainer {
    let (circuit, info) = hardware_efficient(4, 2);
    let mut rng = Xoshiro256::seed_from(2024);
    let params = init_params(info.num_params, &mut rng);
    Trainer::new(
        circuit,
        Task::Vqe {
            hamiltonian: PauliSum::transverse_ising(4, 1.0, 0.7),
        },
        Box::new(Adam::new(0.05)),
        params,
        TrainerConfig {
            label: "crash-demo".into(),
            // Shot-based evaluation: every loss and gradient is noisy, and
            // the noise stream is part of the checkpointed state.
            eval_mode: EvalMode::Shots(128),
            seed: 2024,
            ..TrainerConfig::default()
        },
    )
    .expect("trainer")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("qnn-ckpt-crash-{}", std::process::id()));
    let repo = CheckpointRepo::open(&dir)?;

    // Reference: an uninterrupted 16-step run.
    let mut reference = build_trainer();
    let mut reference_losses = Vec::new();
    for _ in 0..16 {
        reference_losses.push(reference.train_step()?.loss);
    }

    // Victim: same run, checkpointed at step 8, then "killed".
    let mut victim = build_trainer();
    for _ in 0..8 {
        victim.train_step()?;
    }
    repo.save(&victim.capture(), &SaveOptions::default())?;
    println!("checkpoint written at step 8; simulating a crash (dropping the trainer)");
    drop(victim);

    // Resume in a "new process": recover from disk into a fresh trainer.
    let mut resumed = build_trainer();
    let (snapshot, report) = repo.recover()?;
    resumed
        .restore(&snapshot)
        .map_err(|e| format!("restore failed: {e}"))?;
    println!(
        "recovered {} (skipped {} manifests)",
        report.recovered.expect("id"),
        report.skipped.len()
    );

    println!("\nstep   reference-loss       resumed-loss        bit-identical");
    let mut all_equal = true;
    for (step, &reference_loss) in reference_losses.iter().enumerate().take(16).skip(8) {
        let resumed_loss = resumed.train_step()?.loss;
        let same = reference_loss.to_bits() == resumed_loss.to_bits();
        all_equal &= same;
        println!(
            "{:>4}   {:>18.12}   {:>18.12}   {}",
            step + 1,
            reference_loss,
            resumed_loss,
            if same { "yes" } else { "NO" }
        );
    }
    assert!(all_equal, "resume was not exact");
    assert_eq!(
        reference.ledger().total_shots(),
        resumed.ledger().total_shots(),
        "shot accounting diverged"
    );
    println!(
        "\nok: 8 post-crash steps bitwise-identical; total shots accounted: {}",
        resumed.ledger().total_shots()
    );
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
