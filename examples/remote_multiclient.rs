//! Multi-client remote checkpointing: several training runs share one
//! `qckptd` daemon, one run is "killed" and resumed from a **fresh
//! working directory** — the scenario the daemon exists for (cloud jobs
//! are preempted; their local disks do not come back).
//!
//! ```bash
//! cargo run --example remote_multiclient
//! ```
//!
//! The example spawns the daemon in-process for convenience; a real
//! deployment runs `qckptd serve <root>` as its own process and clients
//! select it with `QCHECK_STORE=remote QCHECK_REMOTE_ADDR=host:port`.

use qnn_checkpoint::qcheck::policy::EveryKSteps;
use qnn_checkpoint::qcheck::remote::{spawn_daemon, RemoteStore};
use qnn_checkpoint::qcheck::repo::{CheckpointRepo, SaveOptions};
use qnn_checkpoint::qcheck::store::{ObjectStore, StoreBackend, StoreKind};
use qnn_checkpoint::qnn::ansatz::{hardware_efficient, init_params};
use qnn_checkpoint::qnn::optimizer::Adam;
use qnn_checkpoint::qnn::resume::{ResumableRun, RunStart};
use qnn_checkpoint::qnn::trainer::{Task, Trainer, TrainerConfig};
use qnn_checkpoint::qsim::measure::EvalMode;
use qnn_checkpoint::qsim::pauli::PauliSum;
use qnn_checkpoint::qsim::rng::Xoshiro256;

fn build_trainer(seed: u64) -> Trainer {
    let (circuit, info) = hardware_efficient(3, 2);
    let mut rng = Xoshiro256::seed_from(seed);
    let params = init_params(info.num_params, &mut rng);
    Trainer::new(
        circuit,
        Task::Vqe {
            hamiltonian: PauliSum::transverse_ising(3, 1.0, 0.7),
        },
        Box::new(Adam::new(0.05)),
        params,
        TrainerConfig {
            label: format!("remote-demo-{seed}"),
            eval_mode: EvalMode::Shots(64),
            seed,
            ..TrainerConfig::default()
        },
    )
    .expect("trainer")
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("qnn-remote-demo-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&p).expect("scratch dir");
    p
}

fn open_repo(addr: &str, ns: &str, dir: &std::path::Path) -> CheckpointRepo {
    let store = RemoteStore::connect(addr, ns).expect("connect to daemon");
    CheckpointRepo::with_store(dir, StoreBackend::Remote(store)).expect("open repo")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One daemon, pack layout: every save commits server-side with a
    // single rename.
    let daemon_root = scratch("daemon");
    let daemon = spawn_daemon(&daemon_root, StoreKind::Pack)?;
    let addr = daemon.addr();
    println!("qckptd serving at {addr}");

    // --- two tenants train concurrently against the same daemon ---
    let handles: Vec<_> = [("tenant-a", 11u64), ("tenant-b", 22u64)]
        .into_iter()
        .map(|(ns, seed)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let dir = scratch(ns);
                let repo = open_repo(&addr, ns, &dir);
                let mut run = ResumableRun::start(
                    build_trainer(seed),
                    repo,
                    Box::new(EveryKSteps::new(2)),
                    SaveOptions::default(),
                )
                .expect("start run");
                run.run_to_step(6).expect("train");
                // tenant-a "dies" here (no finish()); tenant-b completes.
                if ns == "tenant-b" {
                    run.finish().expect("final checkpoint");
                }
                dir
            })
        })
        .collect();
    let dirs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    println!("tenant-a trained to step 6 and died; tenant-b finished at step 6");

    // --- the preempted tenant's machine is gone ---
    for dir in &dirs {
        std::fs::remove_dir_all(dir)?;
    }

    // --- resume tenant-a from a brand-new directory ---
    let fresh = scratch("tenant-a-resumed");
    let repo = open_repo(&addr, "tenant-a", &fresh);
    let mut run = ResumableRun::start(
        build_trainer(11),
        repo,
        Box::new(EveryKSteps::new(2)),
        SaveOptions::default(),
    )?;
    match run.start_info() {
        RunStart::Resumed { id, step } => {
            println!("tenant-a resumed from {id} at step {step} in a fresh directory")
        }
        RunStart::Fresh => panic!("expected to resume from the daemon"),
    }
    run.run_to_step(10)?;
    let (trainer, _) = run.finish()?;
    println!("tenant-a completed at step {}", trainer.step_count());

    // --- inspect the shared store ---
    let inspect = RemoteStore::connect(&addr, "tenant-a")?;
    let stats = inspect.stats()?;
    println!(
        "tenant-a namespace: {} objects, {} payload bytes, {} protocol round trips this session",
        stats.object_count,
        stats.total_bytes,
        inspect.round_trips()
    );

    daemon.shutdown();
    std::fs::remove_dir_all(fresh)?;
    std::fs::remove_dir_all(daemon_root)?;
    println!("daemon shut down cleanly");
    Ok(())
}
