//! Off-the-critical-path checkpointing plus the auto-recovering
//! `ResumableRun` driver.
//!
//! Part 1 measures what the background writer buys: the training thread's
//! stall per checkpoint drops from the full commit latency to a snapshot
//! clone + channel send.
//!
//! Part 2 shows the intended production shape: a script that is *always*
//! started the same way and transparently resumes whatever a previous
//! process left behind.
//!
//! ```bash
//! cargo run --example background_checkpointing
//! ```

use std::time::Instant;

use qnn_checkpoint::qcheck::background::BackgroundCheckpointer;
use qnn_checkpoint::qcheck::repo::{CheckpointRepo, SaveOptions};
use qnn_checkpoint::qcheck::snapshot::Checkpointable;
use qnn_checkpoint::qcheck::EveryKSteps;
use qnn_checkpoint::qnn::ansatz::{hardware_efficient, init_params};
use qnn_checkpoint::qnn::optimizer::Adam;
use qnn_checkpoint::qnn::resume::{ResumableRun, RunStart};
use qnn_checkpoint::qnn::trainer::{Task, Trainer, TrainerConfig};
use qnn_checkpoint::qsim::pauli::PauliSum;
use qnn_checkpoint::qsim::rng::Xoshiro256;

fn build_trainer() -> Trainer {
    let (circuit, info) = hardware_efficient(5, 3);
    let mut rng = Xoshiro256::seed_from(77);
    let params = init_params(info.num_params, &mut rng);
    Trainer::new(
        circuit,
        Task::Vqe {
            hamiltonian: PauliSum::transverse_ising(5, 1.0, 0.8),
        },
        Box::new(Adam::new(0.05)),
        params,
        TrainerConfig {
            label: "bg-demo".into(),
            seed: 77,
            ..TrainerConfig::default()
        },
    )
    .expect("trainer")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("qnn-ckpt-bg-{}", std::process::id()));

    // ---- Part 1: synchronous vs background stall ----------------------
    let steps = 20;
    let mut trainer = build_trainer();

    // Synchronous: the loop waits for every commit.
    let sync_repo = CheckpointRepo::open(dir.join("sync"))?;
    let mut sync_stall = 0.0;
    for _ in 0..steps {
        trainer.train_step()?;
        let t0 = Instant::now();
        sync_repo.save(&trainer.capture(), &SaveOptions::default())?;
        sync_stall += t0.elapsed().as_secs_f64() * 1000.0;
    }

    // Background: the loop only pays capture + submit.
    let mut trainer2 = build_trainer();
    let mut bg = BackgroundCheckpointer::spawn(
        CheckpointRepo::open(dir.join("bg"))?,
        SaveOptions::default(),
    );
    let mut bg_stall = 0.0;
    for _ in 0..steps {
        trainer2.train_step()?;
        let t0 = Instant::now();
        bg.submit(trainer2.capture())?;
        bg_stall += t0.elapsed().as_secs_f64() * 1000.0;
    }
    bg.drain()?;
    println!(
        "training-thread stall over {steps} checkpoints:\n  synchronous: {sync_stall:.2} ms\n  background:  {bg_stall:.2} ms ({} commits, {} superseded)",
        bg.completed().len(),
        bg.superseded()
    );
    drop(bg);

    // ---- Part 2: ResumableRun — one entry point, always correct -------
    let run_dir = dir.join("resumable");
    println!("\nresumable run, 'process 1' trains to step 12 then dies:");
    {
        let run = ResumableRun::start(
            build_trainer(),
            CheckpointRepo::open(&run_dir)?,
            Box::new(EveryKSteps::new(4)),
            SaveOptions::incremental(8),
        )?;
        assert_eq!(*run.start_info(), RunStart::Fresh);
        let mut run = run;
        run.run_to_step(12)?;
        println!(
            "  started {:?}, reached step {}",
            RunStart::Fresh,
            run.trainer().step_count()
        );
        // Dropped without finish(): last checkpoint is at step 12.
    }
    println!("'process 2' starts identically and resumes:");
    {
        let mut run = ResumableRun::start(
            build_trainer(),
            CheckpointRepo::open(&run_dir)?,
            Box::new(EveryKSteps::new(4)),
            SaveOptions::incremental(8),
        )?;
        match run.start_info() {
            RunStart::Resumed { id, step } => println!("  resumed {id} at step {step}"),
            RunStart::Fresh => unreachable!("checkpoints exist"),
        }
        run.run_to_step(20)?;
        let (trainer, final_save) = run.finish()?;
        println!(
            "  finished at step {} — final checkpoint {} ({} B), energy {:.4}",
            trainer.step_count(),
            final_save.id,
            final_save.bytes_written(),
            trainer.exact_loss()?
        );
    }

    std::fs::remove_dir_all(&dir)?;
    println!("\nok");
    Ok(())
}
