//! # qnn-checkpoint — facade crate
//!
//! Re-exports the four workspace libraries so downstream users (and the
//! `examples/` and `tests/` in this repository) need a single dependency:
//!
//! * [`qcheck`] — the checkpointing storage engine (the paper's contribution)
//! * [`qsim`] — the deterministic quantum circuit simulator
//! * [`qnn`] — the hybrid quantum-classical training framework
//! * [`qhw`] — the simulated NISQ cloud execution environment
//!
//! See the repository README for the quickstart and DESIGN.md for the
//! system inventory and reconstructed-evaluation index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qcheck;
pub use qhw;
pub use qnn;
pub use qsim;
